/**
 * @file
 * The "boom-like" target: a parameterized superscalar out-of-order RV32IM
 * core (paper Table II: fetch/issue width 1 or 2, issue window, ROB,
 * physical register file) with
 *   - explicit register renaming (rename table + free list + busy table),
 *   - a unified issue window with oldest-first select,
 *   - one full-capability issue port (ALU/mem/mul/div/branch) plus an
 *     ALU-only second port at width 2,
 *   - a store queue drained at commit; loads issue out of order but are
 *     conservatively blocked by any older in-flight store,
 *   - one outstanding branch/jalr with a rename-table checkpoint and
 *     execute-time recovery; the fetch stage predecodes jal and applies
 *     a static BTFN prediction (the paper BOOM's "simple branch
 *     predictor"), re-checked at execute,
 *   - the shared retime-annotated multiplier and iterative divider, and
 *   - the same L1 caches (16 KiB, optionally 2-way) and SoC interface
 *     as the in-order core, plus hpmcounter3/4 cache-miss CSRs.
 */

#include "cores/cache.h"
#include "cores/decoder.h"
#include "cores/exec_units.h"
#include "cores/rtl_util.h"
#include "cores/soc.h"
#include "cores/soc_internal.h"
#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace cores {

namespace {

/** Modular pointer math for circular structures. Pointers live in
 *  [0, 2*depth) so occupancy/age are unambiguous (wrap-bit style). */
struct CircMath
{
    Builder &b;
    uint64_t depth;
    unsigned ptrW;
    unsigned idxW;

    CircMath(Builder &builder, uint64_t d)
        : b(builder), depth(d), ptrW(clog2(2 * d)),
          idxW(std::max(1u, clog2(d)))
    {
    }

    Signal
    add(Signal p, uint64_t k) const
    {
        Signal wide = b.pad(p, ptrW + 2) + b.lit(k, ptrW + 2);
        Signal m = b.lit(2 * depth, ptrW + 2);
        Signal wrapped = b.mux(geu(wide, m), wide - m, wide);
        return wrapped.bits(ptrW - 1, 0);
    }

    /** Variable advance by 0..3. */
    Signal
    addVar(Signal p, Signal k) const
    {
        Signal wide = b.pad(p, ptrW + 2) + b.pad(k, ptrW + 2);
        Signal m = b.lit(2 * depth, ptrW + 2);
        Signal wrapped = b.mux(geu(wide, m), wide - m, wide);
        return wrapped.bits(ptrW - 1, 0);
    }

    /** (a - c) mod 2*depth — occupancy or age. */
    Signal
    sub(Signal a, Signal c) const
    {
        Signal aw = b.pad(a, ptrW + 2);
        Signal cw = b.pad(c, ptrW + 2);
        Signal m = b.lit(2 * depth, ptrW + 2);
        Signal diff = b.mux(geu(aw, cw), aw - cw, aw + m - cw);
        return diff.bits(ptrW - 1, 0);
    }

    /** Slot index (p mod depth). */
    Signal
    idx(Signal p) const
    {
        Signal d = b.lit(depth, ptrW);
        Signal r = b.mux(geu(p, d), p - d, p);
        return b.resize(r, idxW);
    }
};

/** Oldest-first select over eligible entries. */
struct SelectResult
{
    Signal found;
    Signal index;
};

SelectResult
selectOldest(Builder &b, const std::vector<Signal> &eligible,
             const std::vector<Signal> &age, unsigned idxW)
{
    struct Cand
    {
        Signal elig, age, idx;
    };
    std::vector<Cand> cands;
    for (size_t i = 0; i < eligible.size(); ++i)
        cands.push_back({eligible[i], age[i], b.lit(i, idxW)});
    while (cands.size() > 1) {
        std::vector<Cand> next;
        for (size_t i = 0; i + 1 < cands.size(); i += 2) {
            const Cand &x = cands[i];
            const Cand &y = cands[i + 1];
            Signal pickX = x.elig & ((!y.elig) | ltu(x.age, y.age));
            next.push_back({x.elig | y.elig, b.mux(pickX, x.age, y.age),
                            b.mux(pickX, x.idx, y.idx)});
        }
        if (cands.size() % 2)
            next.push_back(cands.back());
        cands = std::move(next);
    }
    return {cands[0].elig, cands[0].idx};
}

// pCtrl payload bit positions.
enum CtrlBits : unsigned {
    kCtlAluFnLo = 0,  // [3:0]
    kCtlUseImm = 4,
    kCtlUsePc = 5,
    kCtlF3Lo = 6,     // [8:6]
    kCtlMulModeLo = 9, // [10:9]
    kCtlDivS = 11,
    kCtlDivR = 12,
    kCtlCsrSelLo = 13, // [15:13]
    kCtlIsJal = 16,
    kCtlIsJalr = 17,
    kCtlIsBranch = 18,
    kCtlIsCsr = 19,
    kCtlWritesRd = 20,
    kCtlPredTaken = 21, //!< BTFN static prediction made at dispatch
    kCtlWidth = 22,
};

// robFlags bit positions.
enum RobFlagBits : unsigned {
    kRfWritesRd = 0,
    kRfIsStore = 1,
    kRfIsEcall = 2,
    kRfIsCsr = 3,
};

} // namespace

rtl::Design
buildBoomSoc(const SocConfig &config)
{
    const unsigned W = config.issueWidth;
    if (W < 1 || W > 2 || config.fetchWidth != W)
        fatal("boom-like core supports matched fetch/issue width 1 or 2");
    const unsigned Q = config.issueSlots;
    const unsigned R = config.robSize;
    const unsigned P = config.physRegs;
    const unsigned SQ = config.storeQueue;
    const unsigned pregW = clog2(P);
    const unsigned iqIdxW = std::max(1u, clog2(Q));
    if (P < 34)
        fatal("need at least 34 physical registers");

    Builder b(config.name);
    MemWires mem = makeMemWires(b);
    CircMath rob(b, R), fl(b, P), stq(b, SQ), fb(b, 8);
    const unsigned tagW = rob.ptrW;

    Signal zero32 = b.lit(0, 32);
    Signal zero1 = b.lit(0, 1);
    Signal one1 = b.lit(1, 1);

    // =====================================================================
    // State.
    // =====================================================================
    b.pushScope("core");

    b.pushScope("fetch");
    Signal pc = b.reg("pc", 32, 0);
    rtl::MemHandle fbMem = b.mem("buffer", 64, 8, false);
    Signal fbHead = b.reg("head", fb.ptrW, 0);
    Signal fbTail = b.reg("tail", fb.ptrW, 0);
    b.popScope();

    b.pushScope("rename");
    std::vector<Signal> renameTable(32), ckptTable(32);
    for (unsigned i = 0; i < 32; ++i) {
        renameTable[i] = b.reg("map" + std::to_string(i), pregW, i);
        ckptTable[i] = b.reg("ckpt" + std::to_string(i), pregW, 0);
    }
    rtl::MemHandle flMem = b.mem("freelist", pregW, P, false);
    {
        // Pregs 0..31 back the initial architectural mappings; the free
        // list starts holding pregs 32..P-1.
        std::vector<uint64_t> freePregs;
        for (unsigned i = 32; i < P; ++i)
            freePregs.push_back(i);
        b.memInit(flMem, std::move(freePregs));
    }
    Signal flHead = b.reg("fl_head", fl.ptrW, 0);
    Signal flTail = b.reg("fl_tail", fl.ptrW, P - 32);
    Signal ckptFlHead = b.reg("ckpt_fl_head", fl.ptrW, 0);
    Signal ckptStqTail = b.reg("ckpt_stq_tail", stq.ptrW, 0);
    Signal branchOut = b.reg("branch_outstanding", 1, 0);
    Signal branchTag = b.reg("branch_tag", tagW, 0);
    std::vector<Signal> busy(P);
    for (unsigned i = 0; i < P; ++i)
        busy[i] = b.reg("busy" + std::to_string(i), 1, 0);
    b.popScope();

    b.pushScope("rob");
    rtl::MemHandle robPcM = b.mem("pc", 32, R, false);
    rtl::MemHandle robInstM = b.mem("inst", 32, R, false);
    rtl::MemHandle robArchRdM = b.mem("arch_rd", 5, R, false);
    rtl::MemHandle robPregM = b.mem("preg", pregW, R, false);
    rtl::MemHandle robOldPregM = b.mem("old_preg", pregW, R, false);
    rtl::MemHandle robFlagsM = b.mem("flags", 4, R, false);
    Signal robHead = b.reg("head", tagW, 0);
    Signal robTail = b.reg("tail", tagW, 0);
    std::vector<Signal> robDone(R);
    for (unsigned i = 0; i < R; ++i)
        robDone[i] = b.reg("done" + std::to_string(i), 1, 0);
    b.popScope();

    b.pushScope("issue");
    rtl::MemHandle pImmM = b.mem("imm", 32, R, false);
    rtl::MemHandle pPcM = b.mem("pc", 32, R, false);
    rtl::MemHandle pCtrlM = b.mem("ctrl", kCtlWidth, R, false);
    struct IqEntry
    {
        Signal valid, robTag, dst, src1, src2, rdy1, rdy2, fu, isLoad,
            isBrLike, wrRd, stqPtr;
    };
    std::vector<IqEntry> iq(Q);
    for (unsigned i = 0; i < Q; ++i) {
        std::string n = "e" + std::to_string(i) + "_";
        iq[i].valid = b.reg(n + "valid", 1, 0);
        iq[i].robTag = b.reg(n + "rob", tagW, 0);
        iq[i].dst = b.reg(n + "dst", pregW, 0);
        iq[i].src1 = b.reg(n + "src1", pregW, 0);
        iq[i].src2 = b.reg(n + "src2", pregW, 0);
        iq[i].rdy1 = b.reg(n + "rdy1", 1, 0);
        iq[i].rdy2 = b.reg(n + "rdy2", 1, 0);
        iq[i].fu = b.reg(n + "fu", 2, 0);
        iq[i].isLoad = b.reg(n + "is_load", 1, 0);
        iq[i].isBrLike = b.reg(n + "is_br", 1, 0);
        iq[i].wrRd = b.reg(n + "wr_rd", 1, 0);
        iq[i].stqPtr = b.reg(n + "stq", stq.ptrW, 0);
    }
    b.popScope();

    b.pushScope("regfile");
    rtl::MemHandle prf = b.mem("prf", 32, P, false);
    b.popScope();

    b.pushScope("lsu");
    Signal lsuValid = b.reg("valid", 1, 0);
    Signal lsuTag = b.reg("rob", tagW, 0);
    Signal lsuDst = b.reg("dst", pregW, 0);
    Signal lsuWr = b.reg("wr_rd", 1, 0);
    Signal lsuF3 = b.reg("f3", 3, 0);
    Signal lsuAddr = b.reg("addr", 32, 0);
    struct StqEntry
    {
        Signal valid, robTag, addr, data, strb, isMmio;
    };
    std::vector<StqEntry> stqE(SQ);
    for (unsigned i = 0; i < SQ; ++i) {
        std::string n = "q" + std::to_string(i) + "_";
        stqE[i].valid = b.reg(n + "valid", 1, 0);
        stqE[i].robTag = b.reg(n + "rob", tagW, 0);
        stqE[i].addr = b.reg(n + "addr", 32, 0);
        stqE[i].data = b.reg(n + "data", 32, 0);
        stqE[i].strb = b.reg(n + "strb", 4, 0);
        stqE[i].isMmio = b.reg(n + "mmio", 1, 0);
    }
    Signal stqHead = b.reg("head", stq.ptrW, 0);
    Signal stqTail = b.reg("tail", stq.ptrW, 0);
    b.popScope();

    b.pushScope("mulpipe");
    std::vector<Signal> mulV(3), mulTag(3), mulDst(3);
    for (unsigned i = 0; i < 3; ++i) {
        std::string n = "s" + std::to_string(i) + "_";
        mulV[i] = b.reg(n + "v", 1, 0);
        mulTag[i] = b.reg(n + "rob", tagW, 0);
        mulDst[i] = b.reg(n + "dst", pregW, 0);
    }
    b.popScope();

    b.pushScope("divunit");
    Signal divV = b.reg("v", 1, 0);
    Signal divTag = b.reg("rob", tagW, 0);
    Signal divDst = b.reg("dst", pregW, 0);
    b.popScope();

    b.pushScope("csr");
    Signal cycleCtr = b.reg("cycle", 64, 0);
    Signal instretCtr = b.reg("instret", 64, 0);
    Signal imissCtr = b.reg("imiss", 32, 0);
    Signal dmissCtr = b.reg("dmiss", 32, 0);
    Signal halted = b.reg("halted", 1, 0);
    b.next(cycleCtr, cycleCtr + b.lit(1, 64));
    b.popScope();

    b.popScope(); // core

    // Forward wires.
    Signal mispredict = b.wire("mispredict", 1);
    Signal mispredictTarget = b.wire("mispredict_target", 32);
    Signal haltFire = b.wire("halt_fire", 1);
    Signal storeDrainReq = b.wire("store_drain_req", 1);
    Signal storeDrainOk = b.wire("store_drain_ok", 1);
    std::vector<Signal> wbTagValid(5), wbTagSig(5);
    for (unsigned i = 0; i < 5; ++i) {
        wbTagValid[i] = b.wire("wb_tag_v" + std::to_string(i), 1);
        wbTagSig[i] = b.wire("wb_tag" + std::to_string(i), pregW);
    }

    auto wakeupHit = [&](Signal src) {
        Signal hit = zero1;
        for (unsigned i = 0; i < 5; ++i)
            hit = hit | (wbTagValid[i] & eq(wbTagSig[i], src));
        return hit;
    };
    auto ageOf = [&](Signal tag) { return rob.sub(tag, robHead); };
    auto youngerThanBranch = [&](Signal tag) {
        return ltu(ageOf(branchTag), ageOf(tag));
    };

    // =====================================================================
    // Frontend.
    // =====================================================================
    Signal fbCount = fb.sub(fbTail, fbHead);
    CacheInputs icIn;
    icIn.reqValid = !halted;
    icIn.reqAddr = pc;
    icIn.reqWrite = zero1;
    icIn.reqWdata = zero32;
    icIn.reqWstrb = b.lit(0, 4);
    icIn.memReqReady = mem.iReqReady;
    icIn.memRespValid = mem.iRespValid;
    icIn.memRespData = mem.respData;
    CacheIO icache = buildCache(b, "icache", config.icacheBytes, icIn, config.cacheWays);

    b.pushScope("core");
    b.pushScope("fetch");
    Signal lineLo = icache.respLine.bits(31, 0);
    Signal lineHi = icache.respLine.bits(63, 32);
    Signal inst0 = b.mux(pc.bit(2), lineHi, lineLo);
    Signal redirect = mispredict | haltFire;

    // Fetch-stage predecode: jal and BTFN backward branches steer the PC
    // here (the "simple branch predictor"); only correct-path slots are
    // enqueued. Conditional-branch predictions are re-checked at execute.
    auto predecode = [&](Signal inst, Signal instPc, Signal &target) {
        Signal isJalI = eqImm(inst.bits(6, 0), 0x6f);
        Signal isBrI = eqImm(inst.bits(6, 0), 0x63);
        Signal back = inst.bit(31);
        Signal immJ = b.sext(
            b.catAll({inst.bit(31), inst.bits(19, 12), inst.bit(20),
                      inst.bits(30, 21), b.lit(0, 1)}),
            32);
        Signal immB = b.sext(
            b.catAll({inst.bit(31), inst.bit(7), inst.bits(30, 25),
                      inst.bits(11, 8), b.lit(0, 1)}),
            32);
        target = instPc + b.mux(isJalI, immJ, immB);
        return isJalI | (isBrI & back);
    };
    Signal pcPlus4 = pc + b.lit(4, 32);
    Signal target0, target1;
    Signal taken0 = predecode(inst0, pc, target0);
    Signal taken1 = W == 2 ? predecode(lineHi, pcPlus4, target1) : zero1;

    Signal canFetch1 =
        icache.respValid & ltu(fbCount, b.lit(8, fb.ptrW)) & !halted;
    Signal canFetch2 = W == 2
                           ? (icache.respValid & !pc.bit(2) &
                              ltu(fbCount, b.lit(7, fb.ptrW)) & !halted &
                              !taken0)
                           : zero1;
    Signal doF1 = canFetch1 & !redirect;
    Signal doF2 = canFetch2 & !redirect;
    b.memWrite(fbMem, fb.idx(fbTail), b.cat(pc, inst0), doF1);
    b.memWrite(fbMem, fb.idx(fb.add(fbTail, 1)), b.cat(pcPlus4, lineHi),
               doF2);
    Signal fetchedN = b.pad(b.cat(doF2 & doF1, doF1 & !doF2), 2);
    // fetchedN: 2 when both, 1 when only first.
    Signal fbTailNext =
        b.mux(redirect, b.lit(0, fb.ptrW), fb.addVar(fbTail, fetchedN));
    b.next(fbTail, fbTailNext);
    std::vector<std::pair<Signal, Signal>> pcCases;
    pcCases.push_back({redirect, mispredictTarget});
    pcCases.push_back({doF1 & taken0, target0});
    if (W == 2) {
        pcCases.push_back({doF2 & taken1, target1});
        pcCases.push_back({doF2, pc + b.lit(8, 32)});
    }
    pcCases.push_back({doF1, pcPlus4});
    b.next(pc, muxChain(b, pc, pcCases));
    b.popScope(); // fetch

    // =====================================================================
    // Dispatch.
    // =====================================================================
    b.pushScope("dispatch");
    Signal flCount = fl.sub(flTail, flHead);
    Signal robCount = rob.sub(robTail, robHead);

    auto busyAt = [&](Signal src) { return b.select(src, busy); };

    // IQ free-slot search (two-deep priority encode).
    Signal free0Found = zero1, free0Idx = b.lit(0, iqIdxW);
    Signal free1Found = zero1, free1Idx = b.lit(0, iqIdxW);
    for (unsigned i = Q; i-- > 0;) {
        Signal here = !iq[i].valid;
        // Shift: current first-free becomes second-free.
        free1Found = b.mux(here, free0Found, free1Found);
        free1Idx = b.mux(here, free0Idx, free1Idx);
        free0Found = b.mux(here, one1, free0Found);
        free0Idx = b.mux(here, b.lit(i, iqIdxW), free0Idx);
    }

    struct DispSlot
    {
        Signal avail, pc, inst;
        DecodedCtrl dec;
        Signal isBr;      //!< branch or jalr (checkpointed)
        Signal fu;
        Signal robTag;
        Signal newPreg, oldPreg, ps1, ps2, rdy1, rdy2;
        Signal stqPtr;
        Signal dispatch;
    };
    std::vector<DispSlot> sl(W);

    for (unsigned k = 0; k < W; ++k) {
        DispSlot &s = sl[k];
        s.avail = ltu(b.lit(k, fb.ptrW), fbCount);
        Signal entry = b.memRead(fbMem, fb.idx(fb.add(fbHead, k)));
        s.pc = entry.bits(63, 32);
        s.inst = entry.bits(31, 0);
        s.dec = buildDecoder(b, "dec" + std::to_string(k), s.inst);
        s.isBr = s.dec.isBranch | s.dec.isJalr;
        s.fu = muxChain(b, b.lit(0, 2),
                        {{s.dec.isMem, b.lit(1, 2)},
                         {s.dec.isMul, b.lit(2, 2)},
                         {s.dec.isDiv, b.lit(3, 2)}});
        s.robTag = rob.add(robTail, k);
        if (k == 0)
            s.stqPtr = stqTail; // slot 1's pointer is set after slot 0's
    }                           // dispatch decision exists

    // Slot 0 resources and decision.
    Signal stqFull0 = b.select(stq.idx(stqTail), [&] {
        std::vector<Signal> v;
        for (unsigned i = 0; i < SQ; ++i)
            v.push_back(stqE[i].valid);
        return v;
    }());
    Signal blocked = mispredict | haltFire | halted;
    {
        DispSlot &s = sl[0];
        Signal needP = s.dec.writesRd;
        Signal okFl = (!needP) | geu(flCount, b.lit(1, fl.ptrW));
        Signal okRob = ltu(robCount, b.lit(R, tagW));
        Signal okIq = s.dec.isEcall | free0Found;
        Signal okStq = (!s.dec.isStore) | (!stqFull0);
        Signal okBr = (!s.isBr) | (!branchOut);
        s.dispatch =
            s.avail & !blocked & okFl & okRob & okIq & okStq & okBr;
        auto tap = [&](const char *n, Signal v) {
            Signal w = b.wire(n, 1);
            b.assign(w, v);
        };
        tap("dbg_avail0", s.avail);
        tap("dbg_okfl0", okFl);
        tap("dbg_okrob0", okRob);
        tap("dbg_okiq0", okIq);
        tap("dbg_okstq0", okStq);
        tap("dbg_okbr0", okBr);
        s.newPreg = b.memRead(flMem, fl.idx(flHead));
        s.oldPreg = b.select(s.dec.rd, renameTable);
        s.ps1 = b.select(s.dec.rs1, renameTable);
        s.ps2 = b.select(s.dec.rs2, renameTable);
        s.rdy1 = (!s.dec.usesRs1) | (!busyAt(s.ps1)) | wakeupHit(s.ps1);
        s.rdy2 = (!s.dec.usesRs2) | (!busyAt(s.ps2)) | wakeupHit(s.ps2);
    }

    if (W == 2) {
        DispSlot &s = sl[1];
        DispSlot &p = sl[0];
        s.stqPtr =
            stq.addVar(stqTail, b.pad(p.dec.isStore & p.dispatch, 2));
        Signal needP = s.dec.writesRd;
        Signal pNeedP = p.dec.writesRd;
        Signal flNeed = b.pad(needP, 2) + b.pad(pNeedP, 2);
        Signal okFl = geu(b.resize(flCount, 8), b.pad(flNeed, 8));
        Signal okRob = ltu(robCount, b.lit(R - 1, tagW));
        Signal okIq = s.dec.isEcall |
                      b.mux(p.dec.isEcall, free0Found, free1Found);
        Signal stqFull1 = b.select(stq.idx(s.stqPtr), [&] {
            std::vector<Signal> v;
            for (unsigned i = 0; i < SQ; ++i)
                v.push_back(stqE[i].valid);
            return v;
        }());
        Signal okStq = (!s.dec.isStore) | (!stqFull1);
        Signal okBr = (!s.isBr) | ((!branchOut) & (!p.isBr));
        // Stop slot 1 only after ecall; control flow is already steered
        // at fetch, so the buffer holds correct-path instructions after
        // jals and predicted-taken branches.
        Signal pStops = p.dec.isEcall;
        s.dispatch = p.dispatch & !pStops & s.avail & okFl & okRob &
                     okIq & okStq & okBr;
        s.newPreg = b.memRead(
            flMem, fl.idx(fl.addVar(flHead, b.pad(pNeedP, 2))));
        // Intra-group rename bypass from slot 0.
        Signal pWr = p.dispatch & pNeedP;
        auto renamed = [&](Signal rs) {
            Signal base = b.select(rs, renameTable);
            return b.mux(pWr & eq(p.dec.rd, rs), p.newPreg, base);
        };
        s.ps1 = renamed(s.dec.rs1);
        s.ps2 = renamed(s.dec.rs2);
        s.oldPreg = renamed(s.dec.rd);
        // Sources produced by slot 0 are not ready yet by definition.
        Signal dep1 = pWr & eq(p.dec.rd, s.dec.rs1);
        Signal dep2 = pWr & eq(p.dec.rd, s.dec.rs2);
        s.rdy1 = (!s.dec.usesRs1) |
                 ((!dep1) & ((!busyAt(s.ps1)) | wakeupHit(s.ps1)));
        s.rdy2 = (!s.dec.usesRs2) |
                 ((!dep2) & ((!busyAt(s.ps2)) | wakeupHit(s.ps2)));
    }

    // Dispatch side effects.
    Signal disp0 = sl[0].dispatch;
    Signal disp1 = W == 2 ? sl[1].dispatch : zero1;
    Signal nDisp = b.pad(disp0, 2) + b.pad(disp1, 2);

    // Debug/statistics taps (also used by the bench harnesses).
    {
        Signal dbgD0 = b.wire("dbg_disp0", 1);
        b.assign(dbgD0, disp0);
        Signal dbgD1 = b.wire("dbg_disp1", 1);
        b.assign(dbgD1, disp1);
    }

    for (unsigned k = 0; k < W; ++k) {
        DispSlot &s = sl[k];
        Signal en = s.dispatch;
        Signal robIdx = rob.idx(s.robTag);
        b.memWrite(robPcM, robIdx, s.pc, en);
        b.memWrite(robInstM, robIdx, s.inst, en);
        b.memWrite(robArchRdM, robIdx, s.dec.rd, en);
        b.memWrite(robPregM, robIdx, s.newPreg, en);
        b.memWrite(robOldPregM, robIdx, s.oldPreg, en);
        Signal flags = b.catAll({s.dec.isCsr, s.dec.isEcall,
                                 s.dec.isStore, s.dec.writesRd});
        b.memWrite(robFlagsM, robIdx, flags, en);

        // Payload: jal's ALU op computes the link, so force imm=4,
        // usePc, add. jalr keeps its original imm (target adder) and the
        // link is selected at exec.
        Signal imm = b.mux(s.dec.isJal, b.lit(4, 32), s.dec.imm);
        b.memWrite(pImmM, robIdx, imm, en);
        b.memWrite(pPcM, robIdx, s.pc, en);
        // BTFN: predict backward conditional branches taken at dispatch.
        Signal predTaken = s.dec.isBranch & s.dec.imm.bit(31);
        Signal ctrl = b.catAll(
            {predTaken, s.dec.writesRd, s.dec.isCsr, s.dec.isBranch,
             s.dec.isJalr, s.dec.isJal, s.dec.csrSel, s.dec.divRem,
             s.dec.divSigned, s.dec.mulMode, s.dec.funct3,
             s.dec.aluUsePc | s.dec.isJal,
             s.dec.aluUseImm | s.dec.isJal, s.dec.aluFn});
        b.memWrite(pCtrlM, robIdx, ctrl, en);

        // (STQ allocation happens in the update section below.)
    }

    b.popScope(); // dispatch
    b.popScope(); // core

    // =====================================================================
    // Issue select.
    // =====================================================================
    b.pushScope("core");
    b.pushScope("issue");

    // Older-store blocking per entry.
    std::vector<Signal> entryAge(Q), elig0(Q);
    Signal dcacheFreeForLoad = (!lsuValid) & (!storeDrainReq);
    for (unsigned i = 0; i < Q; ++i) {
        const IqEntry &e = iq[i];
        entryAge[i] = ageOf(e.robTag);
        Signal olderStore = zero1;
        for (unsigned sI = 0; sI < SQ; ++sI) {
            olderStore =
                olderStore | (stqE[sI].valid &
                              ltu(ageOf(stqE[sI].robTag), entryAge[i]));
        }
        Signal fuOk = muxChain(
            b, one1,
            {{eqImm(e.fu, 1) & e.isLoad,
              dcacheFreeForLoad & !olderStore},
             {eqImm(e.fu, 3), !divV}});
        elig0[i] = e.valid & e.rdy1 & e.rdy2 & fuOk;
    }
    SelectResult sel0 = selectOldest(b, elig0, entryAge, iqIdxW);

    auto iqField = [&](Signal index, auto getter) {
        std::vector<Signal> v;
        for (unsigned i = 0; i < Q; ++i)
            v.push_back(getter(iq[i]));
        return b.select(index, v);
    };

    Signal issued0 = sel0.found;
    Signal e0Tag = iqField(sel0.index, [](const IqEntry &e) {
        return e.robTag;
    });
    Signal e0Dst = iqField(sel0.index, [](const IqEntry &e) {
        return e.dst;
    });
    Signal e0Src1 = iqField(sel0.index, [](const IqEntry &e) {
        return e.src1;
    });
    Signal e0Src2 = iqField(sel0.index, [](const IqEntry &e) {
        return e.src2;
    });
    Signal e0Fu = iqField(sel0.index, [](const IqEntry &e) {
        return e.fu;
    });
    Signal e0IsLoad = iqField(sel0.index, [](const IqEntry &e) {
        return e.isLoad;
    });
    Signal e0IsBr = iqField(sel0.index, [](const IqEntry &e) {
        return e.isBrLike;
    });
    Signal e0WrRd = iqField(sel0.index, [](const IqEntry &e) {
        return e.wrRd;
    });
    Signal e0Stq = iqField(sel0.index, [](const IqEntry &e) {
        return e.stqPtr;
    });

    Signal issued1 = zero1, e1Tag, e1Dst, e1Src1, e1Src2, e1WrRd;
    SelectResult sel1{zero1, b.lit(0, iqIdxW)};
    if (W == 2) {
        std::vector<Signal> elig1(Q);
        for (unsigned i = 0; i < Q; ++i) {
            const IqEntry &e = iq[i];
            Signal takenBy0 =
                issued0 & eq(sel0.index, b.lit(i, iqIdxW));
            elig1[i] = e.valid & e.rdy1 & e.rdy2 & eqImm(e.fu, 0) &
                       !e.isBrLike & !takenBy0;
        }
        sel1 = selectOldest(b, elig1, entryAge, iqIdxW);
        issued1 = sel1.found;
        e1Tag = iqField(sel1.index, [](const IqEntry &e) {
            return e.robTag;
        });
        e1Dst = iqField(sel1.index, [](const IqEntry &e) {
            return e.dst;
        });
        e1Src1 = iqField(sel1.index, [](const IqEntry &e) {
            return e.src1;
        });
        e1Src2 = iqField(sel1.index, [](const IqEntry &e) {
            return e.src2;
        });
        e1WrRd = iqField(sel1.index, [](const IqEntry &e) {
            return e.wrRd;
        });
    }
    {
        Signal dbgI0 = b.wire("dbg_issued0", 1);
        b.assign(dbgI0, issued0);
        Signal dbgI1 = b.wire("dbg_issued1", 1);
        b.assign(dbgI1, issued1);
    }
    b.popScope(); // issue
    b.popScope(); // core

    // =====================================================================
    // Execute.
    // =====================================================================
    b.pushScope("core");
    b.pushScope("execute");

    auto ctrlOf = [&](Signal robIdx) { return b.memRead(pCtrlM, robIdx); };

    // ---- Port 0 (full capability) --------------------------------------
    Signal e0Idx = rob.idx(e0Tag);
    Signal c0 = ctrlOf(e0Idx);
    Signal imm0 = b.memRead(pImmM, e0Idx);
    Signal ppc0 = b.memRead(pPcM, e0Idx);
    Signal aluFn0 = c0.bits(kCtlAluFnLo + 3, kCtlAluFnLo);
    Signal useImm0 = c0.bit(kCtlUseImm);
    Signal usePc0 = c0.bit(kCtlUsePc);
    Signal f3_0 = c0.bits(kCtlF3Lo + 2, kCtlF3Lo);
    Signal mulMode0 = c0.bits(kCtlMulModeLo + 1, kCtlMulModeLo);
    Signal divS0 = c0.bit(kCtlDivS);
    Signal divR0 = c0.bit(kCtlDivR);
    Signal csrSel0 = c0.bits(kCtlCsrSelLo + 2, kCtlCsrSelLo);
    Signal isJal0 = c0.bit(kCtlIsJal);
    Signal isJalr0 = c0.bit(kCtlIsJalr);
    Signal isBranch0 = c0.bit(kCtlIsBranch);
    Signal isCsr0 = c0.bit(kCtlIsCsr);

    Signal rs1v0 = b.memRead(prf, e0Src1);
    Signal rs2v0 = b.memRead(prf, e0Src2);

    Signal aluOp1 = b.mux(usePc0, ppc0, rs1v0);
    Signal aluOp2 = b.mux(useImm0, imm0, rs2v0);
    Signal aluRes0 = buildAlu(b, "alu0", aluFn0, aluOp1, aluOp2);
    Signal link0 = ppc0 + b.lit(4, 32);
    Signal brTaken = buildBranchUnit(b, "branch", f3_0, rs1v0, rs2v0);
    Signal brTarget = ppc0 + imm0;
    Signal jalrTarget = (rs1v0 + imm0) & b.lit(0xfffffffe, 32);
    Signal csrVal = b.select(csrSel0,
                             {cycleCtr.bits(31, 0), instretCtr.bits(31, 0),
                              cycleCtr.bits(63, 32),
                              instretCtr.bits(63, 32), imissCtr,
                              dmissCtr});
    Signal res0 = muxChain(b, aluRes0,
                           {{isJal0 | isJalr0, link0}, {isCsr0, csrVal}});

    // Branch resolution against the BTFN prediction made at dispatch.
    Signal predTaken0 = c0.bit(kCtlPredTaken);
    Signal resolve = issued0 & e0IsBr;
    Signal misp =
        resolve & (isJalr0 | (isBranch0 & (brTaken ^ predTaken0)));
    b.assign(mispredict, misp);
    Signal actualNext = b.mux(brTaken, brTarget, link0);
    b.assign(mispredictTarget, b.mux(isJalr0, jalrTarget, actualNext));

    // Memory address generation (loads and stores share the adder).
    Signal memAddr = rs1v0 + imm0;
    Signal byteOff = memAddr.bits(1, 0);
    Signal shiftAmt = b.pad(b.cat(byteOff, b.lit(0, 3)), 32);
    Signal storeData = shl(rs2v0, shiftAmt);
    Signal strbByte = shl(b.lit(1, 4), b.pad(byteOff, 4));
    Signal strbHalf = shl(b.lit(3, 4), b.pad(byteOff, 4));
    Signal storeStrb = b.select(f3_0.bits(1, 0),
                                {strbByte, strbHalf, b.lit(0xf, 4),
                                 b.lit(0xf, 4)});
    Signal isMmioAddr = eqImm(memAddr.bits(31, 28), 0x4);

    Signal isStoreOp = issued0 & eqImm(e0Fu, 1) & !e0IsLoad;
    Signal isLoadOp = issued0 & eqImm(e0Fu, 1) & e0IsLoad;
    Signal isMulOp = issued0 & eqImm(e0Fu, 2);
    Signal isDivOp = issued0 & eqImm(e0Fu, 3);
    Signal isAluOp = issued0 & eqImm(e0Fu, 0);

    // STQ fill at store execution.
    for (unsigned i = 0; i < SQ; ++i) {
        Signal hit = isStoreOp & eqImm(stq.idx(e0Stq), i);
        b.next(stqE[i].addr, memAddr, hit);
        b.next(stqE[i].data, storeData, hit);
        b.next(stqE[i].strb, storeStrb, hit);
        b.next(stqE[i].isMmio, isMmioAddr, hit);
    }

    // Multiplier pipeline (retimed datapath + side bookkeeping).
    MulPipe mulPipe =
        buildMulPipe(b, "mul", rs1v0, rs2v0, mulMode0, isMulOp);
    Signal killYoung = misp; // squash in-flight younger ops
    Signal mulKill0 = killYoung & youngerThanBranch(e0Tag);
    b.next(mulV[0], isMulOp & !mulKill0);
    b.next(mulTag[0], e0Tag, isMulOp);
    b.next(mulDst[0], e0Dst, isMulOp);
    for (unsigned i = 1; i < 3; ++i) {
        Signal kill = killYoung & youngerThanBranch(mulTag[i - 1]);
        b.next(mulV[i], mulV[i - 1] & !kill);
        b.next(mulTag[i], mulTag[i - 1]);
        b.next(mulDst[i], mulDst[i - 1]);
    }

    // Divider.
    DivUnit div = buildDivider(
        b, "div", isDivOp, rs1v0, rs2v0, divS0, divR0,
        killYoung & divV & youngerThanBranch(divTag));
    Signal divKill0 = killYoung & youngerThanBranch(e0Tag);
    b.next(divV, b.mux(isDivOp, !divKill0,
                       divV & !div.done &
                           !(killYoung & youngerThanBranch(divTag))));
    b.next(divTag, e0Tag, isDivOp);
    b.next(divDst, e0Dst, isDivOp);

    // ---- Port 1 (ALU only) ----------------------------------------------
    Signal res1, wb1Valid = zero1;
    if (W == 2) {
        Signal e1Idx = rob.idx(e1Tag);
        Signal c1 = ctrlOf(e1Idx);
        Signal imm1 = b.memRead(pImmM, e1Idx);
        Signal ppc1 = b.memRead(pPcM, e1Idx);
        Signal rs1v1 = b.memRead(prf, e1Src1);
        Signal rs2v1 = b.memRead(prf, e1Src2);
        Signal aluFn1 = c1.bits(kCtlAluFnLo + 3, kCtlAluFnLo);
        Signal op1a = b.mux(c1.bit(kCtlUsePc), ppc1, rs1v1);
        Signal op1b = b.mux(c1.bit(kCtlUseImm), imm1, rs2v1);
        Signal aluRes1 = buildAlu(b, "alu1", aluFn1, op1a, op1b);
        Signal link1 = ppc1 + b.lit(4, 32);
        Signal csrVal1 =
            b.select(c1.bits(kCtlCsrSelLo + 2, kCtlCsrSelLo),
                     {cycleCtr.bits(31, 0), instretCtr.bits(31, 0),
                      cycleCtr.bits(63, 32), instretCtr.bits(63, 32),
                      imissCtr, dmissCtr});
        res1 = muxChain(b, aluRes1,
                        {{c1.bit(kCtlIsJal), link1},
                         {c1.bit(kCtlIsCsr), csrVal1}});
        wb1Valid = issued1 & !(misp & youngerThanBranch(e1Tag));
    }
    b.popScope(); // execute
    b.popScope(); // core

    // =====================================================================
    // LSU and data cache.
    // =====================================================================
    // Drain request from the STQ head (committed store).
    Signal stqHeadIdx = stq.idx(stqHead);
    auto stqField = [&](auto getter) {
        std::vector<Signal> v;
        for (unsigned i = 0; i < SQ; ++i)
            v.push_back(getter(stqE[i]));
        return b.select(stqHeadIdx, v);
    };
    Signal drAddr = stqField([](const StqEntry &e) { return e.addr; });
    Signal drData = stqField([](const StqEntry &e) { return e.data; });
    Signal drStrb = stqField([](const StqEntry &e) { return e.strb; });
    Signal drMmio = stqField([](const StqEntry &e) { return e.isMmio; });

    Signal drainCacheReq = storeDrainReq & !drMmio;
    Signal newLoad = isLoadOp; // from port 0 this cycle
    Signal dReqValid = drainCacheReq | lsuValid | newLoad;
    Signal dAddr = muxChain(b, memAddr,
                            {{drainCacheReq, drAddr},
                             {lsuValid, lsuAddr}});
    CacheInputs dcIn;
    dcIn.reqValid = dReqValid;
    dcIn.reqAddr = b.cat(dAddr.bits(31, 2), b.lit(0, 2));
    dcIn.reqWrite = drainCacheReq;
    dcIn.reqWdata = drData;
    dcIn.reqWstrb = drStrb;
    dcIn.memReqReady = mem.dReqReady;
    dcIn.memRespValid = mem.dRespValid;
    dcIn.memRespData = mem.respData;
    CacheIO dcache = buildCache(b, "dcache", config.dcacheBytes, dcIn, config.cacheWays);

    b.pushScope("core");
    b.pushScope("lsu");
    Signal drainHit = drainCacheReq & dcache.respValid;
    b.assign(storeDrainOk, drainHit | (storeDrainReq & drMmio));

    Signal loadHitNow = newLoad & !drainCacheReq & dcache.respValid;
    Signal heldHit = lsuValid & !drainCacheReq & dcache.respValid;
    Signal loadF3 = b.mux(lsuValid, lsuF3, f3_0);
    Signal loadAddrSel = b.mux(lsuValid, lsuAddr, memAddr);
    Signal lByteOff = loadAddrSel.bits(1, 0);
    Signal lShift = b.pad(b.cat(lByteOff, b.lit(0, 3)), 32);
    Signal rawWord = shru(dcache.respData, lShift);
    Signal loadByte = b.mux(loadF3.bit(2), b.pad(rawWord.bits(7, 0), 32),
                            b.sext(rawWord.bits(7, 0), 32));
    Signal loadHalf = b.mux(loadF3.bit(2), b.pad(rawWord.bits(15, 0), 32),
                            b.sext(rawWord.bits(15, 0), 32));
    Signal loadRes = b.select(loadF3.bits(1, 0),
                              {loadByte, loadHalf, rawWord, rawWord});

    Signal lsuWbValid = loadHitNow | heldHit;
    Signal lsuWbTag = b.mux(heldHit | lsuValid, lsuTag, e0Tag);
    Signal lsuWbDst = b.mux(heldHit | lsuValid, lsuDst, e0Dst);
    Signal lsuWbWr = b.mux(heldHit | lsuValid, lsuWr, e0WrRd);
    Signal lsuWbKill = killYoung & youngerThanBranch(lsuWbTag);
    lsuWbValid = lsuWbValid & !lsuWbKill;

    Signal lsuHoldNew = newLoad & !loadHitNow & !drainCacheReq &
                        !(killYoung & youngerThanBranch(e0Tag));
    Signal lsuKeep = lsuValid & !heldHit &
                     !(killYoung & youngerThanBranch(lsuTag));
    b.next(lsuValid, lsuHoldNew | lsuKeep);
    b.next(lsuTag, e0Tag, lsuHoldNew);
    b.next(lsuDst, e0Dst, lsuHoldNew);
    b.next(lsuWr, e0WrRd, lsuHoldNew);
    b.next(lsuF3, f3_0, lsuHoldNew);
    b.next(lsuAddr, memAddr, lsuHoldNew);
    b.popScope(); // lsu
    b.popScope(); // core

    // =====================================================================
    // Writeback: PRF writes, busy clears, wakeup tags, done sets.
    // =====================================================================
    b.pushScope("core");
    b.pushScope("writeback");

    // Port 0 squash for the same-cycle mispredict only applies to ops
    // *younger* than the branch; port 0's op is the branch itself or
    // older, so it always completes.
    Signal wb0Valid = isAluOp | (resolve & issued0);
    // (stores set done below; loads/mul/div via their own ports)

    struct WbPort
    {
        Signal valid;    //!< completes an ROB entry this cycle
        Signal tag;      //!< robTag
        Signal wr;       //!< writes the PRF
        Signal dst;
        Signal data;
    };
    std::vector<WbPort> wb;
    wb.push_back({(isAluOp | resolve | isStoreOp) & issued0, e0Tag,
                  (isAluOp | resolve) & e0WrRd, e0Dst, res0});
    if (W == 2)
        wb.push_back({wb1Valid, e1Tag, wb1Valid & e1WrRd, e1Dst, res1});
    else
        wb.push_back({zero1, e0Tag, zero1, e0Dst, zero32});
    wb.push_back({lsuWbValid, lsuWbTag, lsuWbValid & lsuWbWr, lsuWbDst,
                  loadRes});
    wb.push_back({mulV[2], mulTag[2], mulV[2], mulDst[2],
                  mulPipe.result});
    wb.push_back({divV & div.done, divTag, divV & div.done, divDst,
                  div.result});

    for (unsigned i = 0; i < 5; ++i) {
        b.memWrite(prf, wb[i].dst, wb[i].data, wb[i].wr);
        b.assign(wbTagValid[i], wb[i].wr);
        b.assign(wbTagSig[i], wb[i].dst);
    }
    (void)wb0Valid;
    b.popScope(); // writeback
    b.popScope(); // core

    // =====================================================================
    // Commit.
    // =====================================================================
    b.pushScope("core");
    b.pushScope("commit");

    auto doneAt = [&](Signal robIdx) { return b.select(robIdx, robDone); };

    std::vector<CommitInfo> commits(W);
    std::vector<Signal> commitFire(W);
    Signal head0Idx = rob.idx(robHead);
    Signal flags0 = b.memRead(robFlagsM, head0Idx);
    Signal isStore0c = flags0.bit(kRfIsStore);
    Signal isEcall0c = flags0.bit(kRfIsEcall);
    Signal head0Valid = ltu(b.lit(0, tagW), robCount);
    Signal head0Done = head0Valid & doneAt(head0Idx);

    b.assign(storeDrainReq, head0Done & isStore0c);
    Signal commit0 = head0Done & ((!isStore0c) | storeDrainOk);
    commitFire[0] = commit0;
    Signal halt0 = commit0 & isEcall0c;
    b.assign(haltFire, halt0);
    b.next(halted, halted | halt0);

    commits[0].valid = commit0;
    commits[0].pc = b.memRead(robPcM, head0Idx);
    commits[0].inst = b.memRead(robInstM, head0Idx);
    commits[0].wen = commit0 & flags0.bit(kRfWritesRd);
    commits[0].rd = b.memRead(robArchRdM, head0Idx);
    Signal preg0c = b.memRead(robPregM, head0Idx);
    commits[0].wdata = b.memRead(prf, preg0c);
    commits[0].isCsr = flags0.bit(kRfIsCsr);
    Signal old0c = b.memRead(robOldPregM, head0Idx);

    Signal commit1 = zero1, old1c, wen1;
    if (W == 2) {
        Signal head1Idx = rob.idx(rob.add(robHead, 1));
        Signal flags1 = b.memRead(robFlagsM, head1Idx);
        Signal head1Valid = ltu(b.lit(1, tagW), robCount);
        commit1 = commit0 & !isEcall0c & head1Valid & doneAt(head1Idx) &
                  !flags1.bit(kRfIsStore) & !flags1.bit(kRfIsEcall);
        commitFire[1] = commit1;
        commits[1].valid = commit1;
        commits[1].pc = b.memRead(robPcM, head1Idx);
        commits[1].inst = b.memRead(robInstM, head1Idx);
        wen1 = commit1 & flags1.bit(kRfWritesRd);
        commits[1].wen = wen1;
        commits[1].rd = b.memRead(robArchRdM, head1Idx);
        Signal preg1c = b.memRead(robPregM, head1Idx);
        commits[1].wdata = b.memRead(prf, preg1c);
        commits[1].isCsr = flags1.bit(kRfIsCsr);
        old1c = b.memRead(robOldPregM, head1Idx);
    }

    Signal nCommit = b.pad(commit0, 2) +
                     (W == 2 ? b.pad(commit1, 2) : b.lit(0, 2));
    b.next(robHead, rob.addVar(robHead, nCommit));
    b.next(instretCtr, instretCtr + b.pad(nCommit, 64));
    b.next(imissCtr, imissCtr + b.lit(1, 32), icache.missEvent);
    b.next(dmissCtr, dmissCtr + b.lit(1, 32), dcache.missEvent);

    // Free-list pushes of overwritten mappings.
    Signal push0 = commit0 & flags0.bit(kRfWritesRd);
    Signal push1 = W == 2 ? wen1 : zero1;
    b.memWrite(flMem, fl.idx(flTail), old0c, push0);
    if (W == 2) {
        b.memWrite(flMem,
                   fl.idx(fl.addVar(flTail, b.pad(push0, 2))), old1c,
                   push1);
    }
    Signal nPush = b.pad(push0, 2) + b.pad(push1, 2);
    b.next(flTail, fl.addVar(flTail, nPush));

    // STQ drain bookkeeping.
    Signal drained = commit0 & isStore0c;
    b.next(stqHead, stq.addVar(stqHead, b.pad(drained, 2)));
    b.popScope(); // commit
    b.popScope(); // core

    // =====================================================================
    // Remaining sequential updates (rename, ROB pointers, IQ, busy, done).
    // =====================================================================
    b.pushScope("core");
    b.pushScope("update");

    Signal disp0e = disp0;
    Signal disp1e = disp1;
    Signal wr0 = disp0e & sl[0].dec.writesRd;
    Signal wr1 = W == 2 ? disp1e & sl[1].dec.writesRd : zero1;

    // Rename table + checkpoint.
    Signal ckptEn = (disp0e & sl[0].isBr) |
                    (W == 2 ? disp1e & sl[1].isBr : zero1);
    for (unsigned i = 0; i < 32; ++i) {
        Signal lit5 = b.lit(i, 5);
        Signal afterSlot0 =
            b.mux(wr0 & eq(sl[0].dec.rd, lit5), sl[0].newPreg,
                  renameTable[i]);
        Signal afterBoth =
            W == 2 ? b.mux(wr1 & eq(sl[1].dec.rd, lit5), sl[1].newPreg,
                           afterSlot0)
                   : afterSlot0;
        b.next(renameTable[i],
               b.mux(mispredict, ckptTable[i], afterBoth));
        // Snapshot state *after* the branch's own rename.
        Signal snapVal =
            W == 2 ? b.mux(sl[1].isBr & disp1e, afterBoth, afterSlot0)
                   : afterSlot0;
        b.next(ckptTable[i], snapVal, ckptEn);
    }
    Signal nPop = b.pad(wr0, 2) + b.pad(wr1, 2);
    b.next(flHead,
           b.mux(mispredict, ckptFlHead, fl.addVar(flHead, nPop)));
    // The checkpoint must cover pops of slots up to and INCLUDING the
    // branch, but not younger ones (their pregs return on restore).
    Signal ckptPops =
        W == 2 ? b.mux(sl[1].isBr & disp1e, nPop, b.pad(wr0, 2)) : nPop;
    b.next(ckptFlHead, fl.addVar(flHead, ckptPops), ckptEn);
    Signal nStq = b.pad(disp0e & sl[0].dec.isStore, 2) +
                  (W == 2 ? b.pad(disp1e & sl[1].dec.isStore, 2)
                          : b.lit(0, 2));
    Signal stqAfterDisp = stq.addVar(stqTail, nStq);
    b.next(ckptStqTail,
           W == 2 ? b.mux(sl[1].isBr & disp1e, stqAfterDisp,
                          stq.addVar(stqTail,
                                     b.pad(disp0e & sl[0].dec.isStore,
                                           2)))
                  : stqAfterDisp,
           ckptEn);
    b.next(stqTail, b.mux(mispredict, ckptStqTail, stqAfterDisp));
    b.next(branchOut, ckptEn | (branchOut & !resolve));
    Signal brDispTag = (W == 2 && true)
                           ? b.mux(sl[0].isBr, sl[0].robTag, sl[1].robTag)
                           : sl[0].robTag;
    b.next(branchTag, brDispTag, ckptEn);

    // ROB tail.
    b.next(robTail, b.mux(mispredict, rob.add(branchTag, 1),
                          rob.addVar(robTail, nDisp)));

    // Fetch-buffer head.
    b.next(fbHead, b.mux(redirect, b.lit(0, fb.ptrW),
                         fb.addVar(fbHead, nDisp)));

    // Busy table: dispatch sets win over writeback clears.
    for (unsigned i = 0; i < P; ++i) {
        Signal lit = b.lit(i, pregW);
        Signal setIt = (wr0 & eq(sl[0].newPreg, lit)) |
                       (W == 2 ? wr1 & eq(sl[1].newPreg, lit) : zero1);
        Signal clearIt = zero1;
        for (unsigned p = 0; p < 5; ++p)
            clearIt = clearIt | (wbTagValid[p] & eq(wbTagSig[p], lit));
        b.next(busy[i], muxChain(b, busy[i],
                                 {{setIt, one1}, {clearIt, zero1}}));
    }

    // Done bits: writeback/dispatch.
    std::vector<Signal> doneSetValid = {wb[0].valid, wb[1].valid,
                                        wb[2].valid, wb[3].valid,
                                        wb[4].valid};
    std::vector<Signal> doneSetTag = {wb[0].tag, wb[1].tag, wb[2].tag,
                                      wb[3].tag, wb[4].tag};
    for (unsigned i = 0; i < R; ++i) {
        Signal setIt = zero1;
        for (unsigned p = 0; p < 5; ++p) {
            setIt = setIt | (doneSetValid[p] &
                             eqImm(rob.idx(doneSetTag[p]), i));
        }
        Signal d0Here = disp0e & eqImm(rob.idx(sl[0].robTag), i);
        Signal d1Here =
            W == 2 ? disp1e & eqImm(rob.idx(sl[1].robTag), i) : zero1;
        Signal dispHere = d0Here | d1Here;
        Signal dispDoneVal =
            (d0Here & sl[0].dec.isEcall) |
            (W == 2 ? d1Here & sl[1].dec.isEcall : zero1);
        b.next(robDone[i], muxChain(b, robDone[i],
                                    {{dispHere, dispDoneVal},
                                     {setIt, one1}}));
    }

    // IQ entries: allocate, issue-clear, flush-younger.
    for (unsigned i = 0; i < Q; ++i) {
        IqEntry &e = iq[i];
        Signal alloc0 = disp0e & !sl[0].dec.isEcall & free0Found &
                        eq(free0Idx, b.lit(i, iqIdxW));
        Signal slot1Free = W == 2
                               ? b.mux(sl[0].dec.isEcall, free0Idx,
                                       free1Idx)
                               : free0Idx;
        Signal alloc1 = W == 2
                            ? disp1e & !sl[1].dec.isEcall &
                                  eq(slot1Free, b.lit(i, iqIdxW))
                            : zero1;
        Signal issuedHere =
            (issued0 & eq(sel0.index, b.lit(i, iqIdxW))) |
            (W == 2 ? issued1 & eq(sel1.index, b.lit(i, iqIdxW))
                    : zero1);
        Signal flushHere =
            mispredict & e.valid & youngerThanBranch(e.robTag);

        Signal validNext = muxChain(
            b, e.valid & !issuedHere & !flushHere,
            {{alloc1, one1}, {alloc0, one1}});
        // A same-cycle allocation to a flushed... cannot happen: dispatch
        // is blocked during mispredict.
        b.next(e.valid, validNext);

        auto allocField = [&](Signal cur, Signal v0, Signal v1) {
            Signal next = cur;
            if (W == 2)
                next = b.mux(alloc1, v1, next);
            next = b.mux(alloc0, v0, next);
            return next;
        };
        Signal anyAlloc = alloc0 | alloc1;
        b.next(e.robTag,
               allocField(e.robTag, sl[0].robTag,
                          W == 2 ? sl[1].robTag : sl[0].robTag),
               anyAlloc);
        b.next(e.dst,
               allocField(e.dst, sl[0].newPreg,
                          W == 2 ? sl[1].newPreg : sl[0].newPreg),
               anyAlloc);
        b.next(e.src1,
               allocField(e.src1, sl[0].ps1,
                          W == 2 ? sl[1].ps1 : sl[0].ps1),
               anyAlloc);
        b.next(e.src2,
               allocField(e.src2, sl[0].ps2,
                          W == 2 ? sl[1].ps2 : sl[0].ps2),
               anyAlloc);
        b.next(e.fu,
               allocField(e.fu, sl[0].fu, W == 2 ? sl[1].fu : sl[0].fu),
               anyAlloc);
        b.next(e.isLoad,
               allocField(e.isLoad, sl[0].dec.isLoad,
                          W == 2 ? sl[1].dec.isLoad : sl[0].dec.isLoad),
               anyAlloc);
        b.next(e.isBrLike,
               allocField(e.isBrLike, sl[0].isBr,
                          W == 2 ? sl[1].isBr : sl[0].isBr),
               anyAlloc);
        b.next(e.wrRd,
               allocField(e.wrRd, sl[0].dec.writesRd,
                          W == 2 ? sl[1].dec.writesRd
                                 : sl[0].dec.writesRd),
               anyAlloc);
        b.next(e.stqPtr,
               allocField(e.stqPtr, sl[0].stqPtr,
                          W == 2 ? sl[1].stqPtr : sl[0].stqPtr),
               anyAlloc);
        // Wakeup when not being allocated this cycle.
        Signal rdy1Next = e.rdy1 | wakeupHit(e.src1);
        Signal rdy2Next = e.rdy2 | wakeupHit(e.src2);
        b.next(e.rdy1,
               allocField(rdy1Next, sl[0].rdy1,
                          W == 2 ? sl[1].rdy1 : sl[0].rdy1));
        b.next(e.rdy2,
               allocField(rdy2Next, sl[0].rdy2,
                          W == 2 ? sl[1].rdy2 : sl[0].rdy2));
    }

    // STQ valid bits: alloc at dispatch, clear at drain or flush.
    for (unsigned i = 0; i < SQ; ++i) {
        StqEntry &e = stqE[i];
        Signal alloc0 = disp0e & sl[0].dec.isStore &
                        eqImm(stq.idx(sl[0].stqPtr), i);
        Signal alloc1 = W == 2 ? disp1e & sl[1].dec.isStore &
                                     eqImm(stq.idx(sl[1].stqPtr), i)
                               : zero1;
        Signal drainHere =
            commitFire[0] & isStore0c & eqImm(stqHeadIdx, i);
        Signal flushHere =
            mispredict & e.valid & youngerThanBranch(e.robTag);
        b.next(e.valid, muxChain(b, e.valid,
                                 {{alloc0 | alloc1, one1},
                                  {drainHere | flushHere, zero1}}));
        Signal allocTag = b.mux(alloc0, sl[0].robTag,
                                W == 2 ? sl[1].robTag : sl[0].robTag);
        b.next(e.robTag, allocTag, alloc0 | alloc1);
    }

    b.popScope(); // update
    b.popScope(); // core

    // =====================================================================
    // Uncore: arbiter, MMIO, commit trace.
    // =====================================================================
    buildMemArbiter(b, mem, icache, dcache);
    Signal mmioFire = commitFire[0] & isStore0c & drMmio;
    b.output("mmio_valid", mmioFire);
    b.output("mmio_addr", drAddr);
    b.output("mmio_wdata", drData);
    b.output("halted", halted);
    for (unsigned k = 0; k < W; ++k)
        emitCommitPort(b, k, commits[k]);

    return b.finish();
}

} // namespace cores
} // namespace strober
