/**
 * @file
 * Combinational RV32IM instruction decoder generator, shared by the
 * in-order and out-of-order core generators.
 */

#ifndef STROBER_CORES_DECODER_H
#define STROBER_CORES_DECODER_H

#include <string>

#include "rtl/builder.h"

namespace strober {
namespace cores {

using rtl::Builder;
using rtl::Signal;

/** Decoded control bundle (all combinational). */
struct DecodedCtrl
{
    Signal rd, rs1, rs2;  //!< 5-bit register specifiers
    Signal imm;           //!< 32-bit sign-extended immediate
    Signal funct3;        //!< 3 bits
    Signal aluFn;         //!< 4-bit AluFn select
    Signal aluUseImm;     //!< op2 = imm (else rs2)
    Signal aluUsePc;      //!< op1 = pc (auipc)
    Signal usesRs1, usesRs2, writesRd;
    Signal isBranch, isJal, isJalr;
    Signal isLoad, isStore;
    Signal isMul, isDiv;  //!< M extension split by unit
    Signal mulMode;       //!< 2-bit MulMode
    Signal divSigned, divRem;
    Signal isCsr;         //!< csrrs rd, csr, x0
    /** 3-bit CSR select: 0 cycle, 1 instret, 2 cycleh, 3 instreth,
     *  4 hpmcounter3 (I$ misses), 5 hpmcounter4 (D$ misses). */
    Signal csrSel;
    Signal isEcall;
    Signal isMem;         //!< load | store
};

/** Decode @p inst (32 bits). */
DecodedCtrl buildDecoder(Builder &b, const std::string &name, Signal inst);

} // namespace cores
} // namespace strober

#endif // STROBER_CORES_DECODER_H
