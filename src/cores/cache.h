/**
 * @file
 * Blocking, direct-mapped, write-back, write-allocate L1 cache generator
 * (the paper's Rocket-style 16 KiB I$/D$, simplified to single-cycle-hit
 * arrays; see DESIGN.md substitutions). Lines are 8 bytes; the memory
 * side speaks a line-wide valid/ready request channel with a one-shot
 * response, which the SoC maps onto the host DRAM model.
 */

#ifndef STROBER_CORES_CACHE_H
#define STROBER_CORES_CACHE_H

#include <string>

#include "rtl/builder.h"

namespace strober {
namespace cores {

using rtl::Builder;
using rtl::Signal;

/** Core- and memory-side inputs of one cache instance. */
struct CacheInputs
{
    Signal reqValid;   //!< core request valid (held until respValid)
    Signal reqAddr;    //!< 32-bit byte address (word aligned)
    Signal reqWrite;   //!< 1 = store
    Signal reqWdata;   //!< 32-bit store data
    Signal reqWstrb;   //!< 4-bit byte strobes within the word
    Signal memReqReady;  //!< memory accepts our request this cycle
    Signal memRespValid; //!< refill data valid this cycle
    Signal memRespData;  //!< 64-bit line data
};

/** Outputs of one cache instance. */
struct CacheIO
{
    Signal respValid;   //!< request completes this cycle (hit)
    Signal respData;    //!< 32-bit load data (valid with respValid)
    Signal respLine;    //!< full 64-bit line (2-wide fetch)
    Signal busy;        //!< miss handling in progress
    Signal missEvent;   //!< one-cycle pulse when a miss begins
    Signal memReqValid; //!< line request to memory
    Signal memReqAddr;  //!< line-aligned byte address
    Signal memReqWrite; //!< 1 = write-back
    Signal memReqWdata; //!< 64-bit write-back line
};

/**
 * Build a cache named @p name of @p sizeBytes (power of two).
 * @p ways selects the associativity (1 = direct-mapped, 2 = two-way
 * with LRU replacement).
 */
CacheIO buildCache(Builder &b, const std::string &name, uint32_t sizeBytes,
                   const CacheInputs &in, unsigned ways = 1);

} // namespace cores
} // namespace strober

#endif // STROBER_CORES_CACHE_H
