/**
 * @file
 * SoC generator: a RISC-V core (in-order "rocket-like" or out-of-order
 * "boom-like"), 16 KiB L1 instruction and data caches, a memory-port
 * arbiter and an MMIO port, assembled into one rtl::Design whose
 * top-level I/O is serviced by the host (SocDriver) — exactly the
 * paper's Rocket-Chip-on-Strober arrangement where main memory and I/O
 * devices live on the host side of the FAME1 boundary.
 *
 * Top-level ports (all SoCs):
 *   inputs:  mem_req_ready, mem_resp_valid, mem_resp_data(64)
 *   outputs: mem_req_valid, mem_req_addr(32), mem_req_write,
 *            mem_req_wdata(64), mmio_valid, mmio_addr(32),
 *            mmio_wdata(32), halted,
 *            commit<k>_valid/pc/inst/wen/rd/wdata/is_csr for each commit
 *            slot k in [0, issueWidth)
 */

#ifndef STROBER_CORES_SOC_H
#define STROBER_CORES_SOC_H

#include <string>

#include "rtl/ir.h"

namespace strober {
namespace cores {

/** Table-II style processor parameters. */
struct SocConfig
{
    enum class Kind { InOrder, OutOfOrder };
    Kind kind = Kind::InOrder;
    std::string name = "rocket";
    unsigned fetchWidth = 1;   //!< OoO only (1 or 2)
    unsigned issueWidth = 1;   //!< OoO only (1 or 2)
    unsigned issueSlots = 12;  //!< OoO issue-window entries
    unsigned robSize = 24;     //!< OoO reorder-buffer entries
    unsigned physRegs = 64;    //!< OoO physical registers
    unsigned storeQueue = 4;   //!< OoO store-queue entries
    uint32_t icacheBytes = 16 * 1024;
    uint32_t dcacheBytes = 16 * 1024;
    unsigned cacheWays = 1; //!< L1 associativity (1 or 2)

    /** The paper's three evaluated configurations (Table II). */
    static SocConfig rocket();
    static SocConfig boom1w();
    static SocConfig boom2w();
};

/** Number of commit-trace slots the SoC exposes. */
unsigned commitSlots(const SocConfig &config);

/** Build the complete SoC design. */
rtl::Design buildSoc(const SocConfig &config);

} // namespace cores
} // namespace strober

#endif // STROBER_CORES_SOC_H
