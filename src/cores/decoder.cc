#include "cores/decoder.h"

#include "cores/exec_units.h"
#include "cores/rtl_util.h"

namespace strober {
namespace cores {

DecodedCtrl
buildDecoder(Builder &b, const std::string &name, Signal inst)
{
    rtl::Scope scope(b, name);
    DecodedCtrl c;

    Signal opcode = inst.bits(6, 0);
    c.funct3 = inst.bits(14, 12);
    Signal funct7 = inst.bits(31, 25);
    c.rd = inst.bits(11, 7);
    c.rs1 = inst.bits(19, 15);
    c.rs2 = inst.bits(24, 20);

    Signal isLui = eqImm(opcode, 0x37);
    Signal isAuipc = eqImm(opcode, 0x17);
    c.isJal = eqImm(opcode, 0x6f);
    c.isJalr = eqImm(opcode, 0x67);
    c.isBranch = eqImm(opcode, 0x63);
    c.isLoad = eqImm(opcode, 0x03);
    c.isStore = eqImm(opcode, 0x23);
    Signal isOpImm = eqImm(opcode, 0x13);
    Signal isOp = eqImm(opcode, 0x33);
    Signal isSystem = eqImm(opcode, 0x73);
    c.isMem = c.isLoad | c.isStore;

    Signal isMulDiv = isOp & eqImm(funct7, 0x01);
    c.isMul = isMulDiv & !c.funct3.bit(2);
    c.isDiv = isMulDiv & c.funct3.bit(2);
    c.mulMode = c.funct3.bits(1, 0);
    c.divSigned = !c.funct3.bit(0);
    c.divRem = c.funct3.bit(1);

    c.isCsr = isSystem & eqImm(c.funct3, 2);
    // csrSel maps {cycle, instret, cycleh, instreth, hpm3, hpm4}.
    Signal csr = inst.bits(31, 20);
    Signal isInstret = eqImm(csr.bits(6, 0), 0x02);
    Signal isHigh = csr.bit(7);
    Signal base = b.pad(b.cat(isHigh, isInstret), 3);
    c.csrSel = muxChain(b, base,
                        {{eqImm(csr.bits(6, 0), 0x03), b.lit(4, 3)},
                         {eqImm(csr.bits(6, 0), 0x04), b.lit(5, 3)}});
    c.isEcall = isSystem & eqImm(c.funct3, 0) & eqImm(inst.bits(31, 20), 0);

    // --- Immediates -----------------------------------------------------
    Signal immI = b.sext(inst.bits(31, 20), 32);
    Signal immS =
        b.sext(b.cat(inst.bits(31, 25), inst.bits(11, 7)), 32);
    Signal immB = b.sext(
        b.catAll({inst.bit(31), inst.bit(7), inst.bits(30, 25),
                  inst.bits(11, 8), b.lit(0, 1)}),
        32);
    Signal immU = b.cat(inst.bits(31, 12), b.lit(0, 12));
    Signal immJ = b.sext(
        b.catAll({inst.bit(31), inst.bits(19, 12), inst.bit(20),
                  inst.bits(30, 21), b.lit(0, 1)}),
        32);
    c.imm = muxChain(b, immI,
                     {{c.isStore, immS},
                      {c.isBranch, immB},
                      {isLui | isAuipc, immU},
                      {c.isJal, immJ}});

    // --- ALU function -----------------------------------------------------
    // For OP/OP-IMM: funct3 selects; bit30 selects sub/sra where legal.
    Signal bit30 = inst.bit(30);
    Signal aluFromF3 = b.select(
        c.funct3,
        {b.mux(isOp & bit30, b.lit(kAluSub, 4), b.lit(kAluAdd, 4)), // 0
         b.lit(kAluSll, 4),                                         // 1
         b.lit(kAluSlt, 4),                                         // 2
         b.lit(kAluSltu, 4),                                        // 3
         b.lit(kAluXor, 4),                                         // 4
         b.mux(bit30, b.lit(kAluSra, 4), b.lit(kAluSrl, 4)),        // 5
         b.lit(kAluOr, 4),                                          // 6
         b.lit(kAluAnd, 4)});                                       // 7
    c.aluFn = muxChain(b, b.lit(kAluAdd, 4),
                       {{isLui, b.lit(kAluPassB, 4)},
                        {isOp | isOpImm, aluFromF3}});
    c.aluUseImm = (!isOp) & (!c.isBranch);
    c.aluUsePc = isAuipc;

    c.usesRs1 = (isOp | isOpImm | c.isMem | c.isBranch | c.isJalr) &
                !eqImm(c.rs1, 0);
    c.usesRs2 = (isOp | c.isStore | c.isBranch) & !eqImm(c.rs2, 0);
    c.writesRd = (isLui | isAuipc | c.isJal | c.isJalr | c.isLoad | isOp |
                  isOpImm | c.isCsr) &
                 !eqImm(c.rd, 0);
    return c;
}

} // namespace cores
} // namespace strober
