/**
 * @file
 * Host-side driver for the generated SoCs: services the memory channel
 * through the LPDDR2 timing/power model, implements the MMIO devices
 * (console, exit), and optionally checks the core's commit trace against
 * the golden ISS instruction by instruction. This is the "target I/O
 * devices are mapped to software on the host" half of the paper's FAME1
 * decoupling (Section V-B).
 */

#ifndef STROBER_CORES_SOC_DRIVER_H
#define STROBER_CORES_SOC_DRIVER_H

#include <memory>
#include <string>
#include <vector>

#include "core/harness.h"
#include "dram/dram_model.h"
#include "isa/assembler.h"
#include "isa/iss.h"
#include "rtl/ir.h"

namespace strober {
namespace cores {

/** Host driver for one SoC design + workload. */
class SocDriver : public core::HostDriver
{
  public:
    struct Config
    {
        uint32_t ramBytes = 1 << 20;
        dram::DramConfig dram;
        /** Verify the commit trace against the golden ISS (fatal on the
         *  first divergence). */
        bool checkCommits = false;
    };

    SocDriver(const rtl::Design &soc, const isa::Program &program,
              Config config);
    SocDriver(const rtl::Design &soc, const isa::Program &program);

    void drive(core::TargetHarness &harness) override;
    bool done() const override { return finished; }

    bool exited() const { return finished; }
    uint32_t exitCode() const { return exitValue; }
    const std::string &console() const { return consoleOut; }
    uint64_t commitsSeen() const { return commitCount; }
    const dram::DramModel &dramModel() const { return dramTiming; }
    dram::DramModel &dramModel() { return dramTiming; }

  private:
    Config cfg;
    std::vector<uint8_t> ram;
    dram::DramModel dramTiming;
    std::unique_ptr<isa::Iss> iss;

    bool finished = false;
    uint32_t exitValue = 0;
    std::string consoleOut;
    uint64_t commitCount = 0;

    // Memory-channel state.
    bool busy = false;
    bool pendingRead = false;
    uint64_t pendingData = 0;
    unsigned countdown = 0;
    bool readyPresented = false;

    // Output port indices (resolved by name at construction).
    int outReqValid, outReqAddr, outReqWrite, outReqWdata;
    int outMmioValid, outMmioAddr, outMmioWdata, outHalted;
    struct CommitPorts
    {
        int valid, pc, inst, wen, rd, wdata, isCsr;
    };
    std::vector<CommitPorts> commitPorts;
    int inReqReady, inRespValid, inRespData;

    uint64_t readLine(uint32_t addr) const;
    void writeLine(uint32_t addr, uint64_t data);
    void handleMmio(uint32_t addr, uint32_t data);
    void checkCommit(uint32_t pc, uint32_t inst, bool wen, unsigned rd,
                     uint32_t wdata, bool isCsr);
};

} // namespace cores
} // namespace strober

#endif // STROBER_CORES_SOC_DRIVER_H
