/**
 * @file
 * Execution units shared by the in-order and out-of-order cores: the
 * integer ALU, branch condition unit, a 3-stage pipelined multiplier
 * (annotated for register retiming, the paper's Section IV-C3 case), and
 * an iterative 32-cycle divider.
 */

#ifndef STROBER_CORES_EXEC_UNITS_H
#define STROBER_CORES_EXEC_UNITS_H

#include <string>

#include "rtl/builder.h"

namespace strober {
namespace cores {

using rtl::Builder;
using rtl::Signal;

/** ALU function select values (width 4). */
enum AluFn : uint64_t {
    kAluAdd = 0,
    kAluSub = 1,
    kAluSll = 2,
    kAluSlt = 3,
    kAluSltu = 4,
    kAluXor = 5,
    kAluSrl = 6,
    kAluSra = 7,
    kAluOr = 8,
    kAluAnd = 9,
    kAluPassB = 10, //!< lui
};

/** Combinational 32-bit ALU. */
Signal buildAlu(Builder &b, const std::string &name, Signal fn, Signal op1,
                Signal op2);

/** Branch-taken condition for funct3 (beq/bne/blt/bge/bltu/bgeu). */
Signal buildBranchUnit(Builder &b, const std::string &name, Signal funct3,
                       Signal rs1, Signal rs2);

/** Multiplier mode select (width 2). */
enum MulMode : uint64_t {
    kMulLow = 0,   //!< mul
    kMulHigh = 1,  //!< mulh
    kMulHighSU = 2, //!< mulhsu
    kMulHighU = 3, //!< mulhu
};

/** Pipelined multiplier outputs. */
struct MulPipe
{
    Signal result;   //!< 32-bit result, valid when outValid
    Signal outValid; //!< inValid delayed by the pipeline latency
    unsigned latency = 3;
};

/**
 * Build the 3-stage multiplier. The datapath (a full 32x32 array product
 * plus signed-correction) is computed combinationally and followed by
 * three pipeline registers annotated as a retiming region, so synthesis
 * re-cuts it into balanced stages — exactly the FPU-style scenario the
 * paper's replay warm-up exists for.
 */
MulPipe buildMulPipe(Builder &b, const std::string &name, Signal a,
                     Signal x, Signal mode, Signal inValid);

/** Iterative divider outputs. */
struct DivUnit
{
    Signal busy;    //!< high while dividing
    Signal done;    //!< one-cycle pulse with the result
    Signal result;  //!< quotient or remainder per wantRem
};

/**
 * Build the restoring divider: ~34 cycles per operation. @p start is
 * accepted when not busy; @p kill squashes an in-flight operation
 * (branch-mispredict recovery in the OoO core).
 */
DivUnit buildDivider(Builder &b, const std::string &name, Signal start,
                     Signal a, Signal x, Signal isSigned, Signal wantRem,
                     Signal kill);

} // namespace cores
} // namespace strober

#endif // STROBER_CORES_EXEC_UNITS_H
