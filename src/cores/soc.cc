#include "cores/soc.h"

#include "cores/rtl_util.h"
#include "cores/soc_internal.h"
#include "util/logging.h"

namespace strober {
namespace cores {

SocConfig
SocConfig::rocket()
{
    SocConfig c;
    c.kind = Kind::InOrder;
    c.name = "rocket";
    return c;
}

SocConfig
SocConfig::boom1w()
{
    SocConfig c;
    c.kind = Kind::OutOfOrder;
    c.name = "boom1w";
    c.fetchWidth = 1;
    c.issueWidth = 1;
    c.issueSlots = 12;
    c.robSize = 24;
    c.physRegs = 64;
    return c;
}

SocConfig
SocConfig::boom2w()
{
    SocConfig c;
    c.kind = Kind::OutOfOrder;
    c.name = "boom2w";
    c.fetchWidth = 2;
    c.issueWidth = 2;
    c.issueSlots = 16;
    c.robSize = 32;
    c.physRegs = 72;
    return c;
}

unsigned
commitSlots(const SocConfig &config)
{
    return config.kind == SocConfig::Kind::InOrder ? 1 : config.issueWidth;
}

MemWires
makeMemWires(Builder &b)
{
    MemWires w;
    w.iReqReady = b.wire("imem_ready", 1);
    w.iRespValid = b.wire("imem_resp_valid", 1);
    w.dReqReady = b.wire("dmem_ready", 1);
    w.dRespValid = b.wire("dmem_resp_valid", 1);
    w.respData = b.wire("mem_resp_data_w", 64);
    return w;
}

void
buildMemArbiter(Builder &b, MemWires &wires, const CacheIO &icache,
                const CacheIO &dcache)
{
    // Top-level port names must stay unscoped.
    Signal extReady = b.input("mem_req_ready", 1);
    Signal extRespValid = b.input("mem_resp_valid", 1);
    Signal extRespData = b.input("mem_resp_data", 64);

    b.pushScope("uncore");

    // Owner of the outstanding read: 0 none, 1 I$, 2 D$.
    Signal owner = b.reg("owner", 2, 0);
    Signal free = eqImm(owner, 0);

    Signal pickD = dcache.memReqValid;
    Signal anyReq = dcache.memReqValid | icache.memReqValid;
    Signal reqValid = free & anyReq;
    Signal reqWrite =
        b.mux(pickD, dcache.memReqWrite, icache.memReqWrite);
    Signal accept = reqValid & extReady;

    Signal ownerNext = muxChain(
        b, owner,
        {{accept & !reqWrite,
          b.mux(pickD, b.lit(2, 2), b.lit(1, 2))},
         {extRespValid, b.lit(0, 2)}});
    b.next(owner, ownerNext);

    b.popScope(); // back to top level for the port names
    b.output("mem_req_valid", reqValid);
    b.output("mem_req_addr",
             b.mux(pickD, dcache.memReqAddr, icache.memReqAddr));
    b.output("mem_req_write", reqWrite);
    b.output("mem_req_wdata",
             b.mux(pickD, dcache.memReqWdata, icache.memReqWdata));

    b.assign(wires.dReqReady, accept & pickD);
    b.assign(wires.iReqReady, accept & !pickD);
    b.assign(wires.dRespValid, extRespValid & eqImm(owner, 2));
    b.assign(wires.iRespValid, extRespValid & eqImm(owner, 1));
    b.assign(wires.respData, extRespData);
}

void
emitCommitPort(Builder &b, unsigned slot, const CommitInfo &commit)
{
    std::string p = "commit" + std::to_string(slot) + "_";
    b.output(p + "valid", commit.valid);
    b.output(p + "pc", commit.pc);
    b.output(p + "inst", commit.inst);
    b.output(p + "wen", commit.wen);
    b.output(p + "rd", commit.rd);
    b.output(p + "wdata", commit.wdata);
    b.output(p + "is_csr", commit.isCsr);
}

// Implemented in rocket.cc / boom.cc.
rtl::Design buildRocketSoc(const SocConfig &config);
rtl::Design buildBoomSoc(const SocConfig &config);

rtl::Design
buildSoc(const SocConfig &config)
{
    switch (config.kind) {
      case SocConfig::Kind::InOrder:
        return buildRocketSoc(config);
      case SocConfig::Kind::OutOfOrder:
        return buildBoomSoc(config);
    }
    fatal("unknown core kind");
}

} // namespace cores
} // namespace strober
