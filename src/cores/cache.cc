#include "cores/cache.h"

#include "cores/rtl_util.h"
#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace cores {

CacheIO
buildCache(Builder &b, const std::string &name, uint32_t sizeBytes,
           const CacheInputs &in, unsigned ways)
{
    if (!isPow2(sizeBytes) || sizeBytes < 64)
        fatal("cache size must be a power of two >= 64");
    if (ways != 1 && ways != 2)
        fatal("cache supports 1 or 2 ways");
    constexpr unsigned kLineBytes = 8;
    const uint32_t numSets = sizeBytes / kLineBytes / ways;
    if (numSets < 2)
        fatal("cache too small for %u ways", ways);
    const unsigned idxBits = clog2(numSets);
    const unsigned offBits = clog2(kLineBytes); // 3
    const unsigned tagBits = 32 - idxBits - offBits;

    rtl::Scope scope(b, name);

    // FSM states.
    enum : uint64_t { kReady = 0, kWbReq = 1, kRefillReq = 2, kWait = 3 };
    Signal state = b.reg("state", 2, kReady);

    Signal idx = in.reqAddr.bits(offBits + idxBits - 1, offBits);
    Signal tag = in.reqAddr.bits(31, offBits + idxBits);
    Signal wordSel = in.reqAddr.bit(2); // which 32-bit word of the line

    // Per-way arrays (meta split like the paper's "meta+data" vs
    // "control" breakdown).
    struct Way
    {
        rtl::MemHandle data, tag, valid, dirty;
        Signal line, lineTag, lineValid, lineDirty, hit;
    };
    std::vector<Way> way(ways);
    {
        rtl::Scope meta(b, "arrays");
        for (unsigned w = 0; w < ways; ++w) {
            std::string suffix =
                ways == 1 ? "" : "_w" + std::to_string(w);
            way[w].data = b.mem("data" + suffix, 64, numSets, false);
            way[w].tag = b.mem("tag" + suffix, tagBits, numSets, false);
            way[w].valid = b.mem("valid" + suffix, 1, numSets, false);
            way[w].dirty = b.mem("dirty" + suffix, 1, numSets, false);
        }
    }
    for (unsigned w = 0; w < ways; ++w) {
        way[w].line = b.memRead(way[w].data, idx);
        way[w].lineTag = b.memRead(way[w].tag, idx);
        way[w].lineValid = b.memRead(way[w].valid, idx);
        way[w].lineDirty = b.memRead(way[w].dirty, idx);
        way[w].hit = way[w].lineValid & eq(way[w].lineTag, tag);
    }

    // LRU (2-way): lru[set] = way to evict next.
    rtl::MemHandle lruMem;
    Signal lruVictim;
    if (ways == 2) {
        rtl::Scope meta(b, "arrays");
        lruMem = b.mem("lru", 1, numSets, false);
        lruVictim = b.memRead(lruMem, idx);
    }

    Signal ready = eqImm(state, kReady);
    Signal anyHit = way[0].hit;
    if (ways == 2)
        anyHit = anyHit | way[1].hit;
    Signal hit = in.reqValid & ready & anyHit;
    Signal miss = in.reqValid & ready & !anyHit;

    // Victim way selection: prefer an invalid way, else LRU.
    Signal victimWay =
        ways == 2
            ? muxChain(b, lruVictim,
                       {{!way[0].lineValid, b.lit(0, 1)},
                        {!way[1].lineValid, b.lit(1, 1)}})
            : b.lit(0, 1);

    // --- Hit datapath -----------------------------------------------------
    Signal hitLine = way[0].line;
    Signal hitWay = b.lit(0, 1);
    if (ways == 2) {
        hitLine = b.mux(way[1].hit, way[1].line, way[0].line);
        hitWay = way[1].hit;
    }
    Signal loWord = hitLine.bits(31, 0);
    Signal hiWord = hitLine.bits(63, 32);
    Signal readWord = b.mux(wordSel, hiWord, loWord);

    // Byte-merged store word.
    std::vector<Signal> mergedBytes;
    for (unsigned byte = 4; byte-- > 0;) {
        Signal oldB = readWord.bits(byte * 8 + 7, byte * 8);
        Signal newB = in.reqWdata.bits(byte * 8 + 7, byte * 8);
        mergedBytes.push_back(b.mux(in.reqWstrb.bit(byte), newB, oldB));
    }
    Signal mergedWord = b.catAll(mergedBytes);
    Signal mergedLine = b.mux(wordSel, b.cat(mergedWord, loWord),
                              b.cat(hiWord, mergedWord));

    Signal writeHit = hit & in.reqWrite;
    for (unsigned w = 0; w < ways; ++w) {
        Signal thisWay =
            ways == 2 ? eq(hitWay, b.lit(w, 1)) : b.lit(1, 1);
        b.memWrite(way[w].data, idx, mergedLine, writeHit & thisWay);
        b.memWrite(way[w].dirty, idx, b.lit(1, 1), writeHit & thisWay);
    }
    if (ways == 2) {
        // On a hit, the other way becomes the eviction candidate.
        b.memWrite(lruMem, idx, !hitWay, hit);
    }

    // --- Miss handling ----------------------------------------------------
    Signal missIdx = regEn(b, "miss_idx", idxBits, idx, miss);
    Signal missTag = regEn(b, "miss_tag", tagBits, tag, miss);
    Signal missWay = regEn(b, "miss_way", 1, victimWay, miss);
    Signal victimTag = ways == 2 ? b.mux(victimWay, way[1].lineTag,
                                         way[0].lineTag)
                                 : way[0].lineTag;
    Signal victimLine =
        ways == 2 ? b.mux(victimWay, way[1].line, way[0].line)
                  : way[0].line;
    Signal victimTagR = regEn(b, "victim_tag", tagBits, victimTag, miss);
    Signal victimLineR = regEn(b, "victim_line", 64, victimLine, miss);
    Signal victimValid = ways == 2 ? b.mux(victimWay, way[1].lineValid,
                                           way[0].lineValid)
                                   : way[0].lineValid;
    Signal victimDirty = ways == 2 ? b.mux(victimWay, way[1].lineDirty,
                                           way[0].lineDirty)
                                   : way[0].lineDirty;
    Signal needWb = victimValid & victimDirty;

    Signal inWb = eqImm(state, kWbReq);
    Signal inRefillReq = eqImm(state, kRefillReq);
    Signal inWait = eqImm(state, kWait);

    Signal memReqValid = inWb | inRefillReq;
    Signal wbAddr =
        b.catAll({victimTagR, missIdx, b.lit(0, offBits)}); // 32 bits
    Signal refillAddr =
        b.catAll({missTag, missIdx, b.lit(0, offBits)});
    Signal memReqAddr = b.mux(inWb, wbAddr, refillAddr);

    Signal accepted = memReqValid & in.memReqReady;
    Signal refillDone = inWait & in.memRespValid;

    Signal stateNext = b.wire("state_next", 2);
    b.assign(stateNext,
             muxChain(b, state,
                      {{miss, b.mux(needWb, b.lit(kWbReq, 2),
                                    b.lit(kRefillReq, 2))},
                       {inWb & accepted, b.lit(kRefillReq, 2)},
                       {inRefillReq & accepted, b.lit(kWait, 2)},
                       {refillDone, b.lit(kReady, 2)}}));
    b.next(state, stateNext);

    // Refill writes into the chosen victim way.
    for (unsigned w = 0; w < ways; ++w) {
        Signal thisWay =
            ways == 2 ? eq(missWay, b.lit(w, 1)) : b.lit(1, 1);
        Signal en = refillDone & thisWay;
        b.memWrite(way[w].data, missIdx, in.memRespData, en);
        b.memWrite(way[w].tag, missIdx, missTag, en);
        b.memWrite(way[w].valid, missIdx, b.lit(1, 1), en);
        b.memWrite(way[w].dirty, missIdx, b.lit(0, 1), en);
    }
    if (ways == 2) {
        // The refilled way was just used: evict the other one next.
        b.memWrite(lruMem, missIdx, !missWay, refillDone);
    }

    CacheIO out;
    out.respValid = hit;
    out.respData = readWord;
    out.respLine = hitLine;
    out.busy = !ready;
    out.missEvent = miss;
    out.memReqValid = memReqValid;
    out.memReqAddr = memReqAddr;
    out.memReqWrite = inWb;
    out.memReqWdata = victimLineR;
    return out;
}

} // namespace cores
} // namespace strober
