/**
 * @file
 * Small reusable RTL idioms for the core generators: enabled registers,
 * one-hot helpers, and circular-pointer arithmetic. These are plain
 * functions over the builder EDSL (the moral equivalent of a Chisel
 * utility library).
 */

#ifndef STROBER_CORES_RTL_UTIL_H
#define STROBER_CORES_RTL_UTIL_H

#include <vector>

#include "rtl/builder.h"

namespace strober {
namespace cores {

using rtl::Builder;
using rtl::Signal;

/** Register that captures @p next only when @p en is set. */
inline Signal
regEn(Builder &b, const std::string &name, unsigned width, Signal next,
      Signal en, uint64_t init = 0)
{
    Signal r = b.reg(name, width, init);
    b.next(r, next, en);
    return r;
}

/** mux over signals with same-width literal default. */
inline Signal
muxChain(Builder &b, Signal def,
         const std::vector<std::pair<Signal, Signal>> &cases)
{
    Signal acc = def;
    for (size_t i = cases.size(); i-- > 0;)
        acc = b.mux(cases[i].first, cases[i].second, acc);
    return acc;
}

/** Circular "younger than" for ROB-style indices: is @p x strictly
 *  younger (further from head) than @p y, given the current @p head.
 *  All operands share the same width. */
inline Signal
youngerThan(Builder & /*b*/, Signal x, Signal y, Signal head)
{
    // Distance from head; larger distance = younger.
    Signal dx = x - head;
    Signal dy = y - head;
    return ltu(dy, dx);
}

/** Is @p x within the live window [head, head+count) of a circular
 *  buffer with pointer width w. */
inline Signal
inWindow(Builder &b, Signal x, Signal head, Signal count)
{
    Signal dx = b.pad(x - head, count.width());
    return ltu(dx, count);
}

} // namespace cores
} // namespace strober

#endif // STROBER_CORES_RTL_UTIL_H
