#include "cores/exec_units.h"

#include "cores/rtl_util.h"

namespace strober {
namespace cores {

Signal
buildAlu(Builder &b, const std::string &name, Signal fn, Signal op1,
         Signal op2)
{
    rtl::Scope scope(b, name);
    Signal shamt = op2.bits(4, 0);
    std::vector<Signal> results = {
        op1 + op2,                                   // add
        op1 - op2,                                   // sub
        shl(op1, b.pad(shamt, 32)),                  // sll
        b.pad(lts(op1, op2), 32),                    // slt
        b.pad(ltu(op1, op2), 32),                    // sltu
        op1 ^ op2,                                   // xor
        shru(op1, b.pad(shamt, 32)),                 // srl
        sra(op1, b.pad(shamt, 32)),                  // sra
        op1 | op2,                                   // or
        op1 & op2,                                   // and
        op2,                                         // passb (lui)
    };
    while (results.size() < 16)
        results.push_back(results[0]);
    return b.select(fn, results);
}

Signal
buildBranchUnit(Builder &b, const std::string &name, Signal funct3,
                Signal rs1, Signal rs2)
{
    rtl::Scope scope(b, name);
    Signal eqS = eq(rs1, rs2);
    Signal ltS = lts(rs1, rs2);
    Signal ltuS = ltu(rs1, rs2);
    std::vector<Signal> taken = {
        eqS,        // beq
        !eqS,       // bne
        eqS,        // (unused f3=2)
        eqS,        // (unused f3=3)
        ltS,        // blt
        !ltS,       // bge
        ltuS,       // bltu
        !ltuS,      // bgeu
    };
    return b.select(funct3, taken);
}

MulPipe
buildMulPipe(Builder &b, const std::string &name, Signal a, Signal x,
             Signal mode, Signal inValid)
{
    rtl::Scope scope(b, name);

    // Full 32x32 -> 64 unsigned product plus signed corrections:
    //   signedHigh = high(P) - (a<0 ? x : 0) - (x<0 ? a : 0)
    Signal prod = a * x; // 64 bits
    Signal lo = prod.bits(31, 0);
    Signal hi = prod.bits(63, 32);

    Signal aNeg = a.bit(31);
    Signal xNeg = x.bit(31);
    Signal useA = aNeg & (eqImm(mode, kMulHigh) | eqImm(mode, kMulHighSU));
    Signal useB = xNeg & eqImm(mode, kMulHigh);
    Signal corrA = b.mux(useA, x, b.lit(0, 32));
    Signal corrB = b.mux(useB, a, b.lit(0, 32));
    Signal adjHigh = hi - corrA - corrB;
    Signal result = b.mux(eqImm(mode, kMulLow), lo, adjHigh);

    // Three pipeline registers; synthesis retimes them into the cone.
    Signal r1 = b.reg("r1", 32, 0);
    b.next(r1, result);
    Signal r2 = b.reg("r2", 32, 0);
    b.next(r2, r1);
    Signal r3 = b.reg("r3", 32, 0);
    b.next(r3, r2);
    b.annotateRetimed("datapath", 3, {a, x, mode}, r3, {r1, r2, r3});

    // The valid chain lives outside the retimed region.
    Signal v1 = b.reg("v1", 1, 0);
    b.next(v1, inValid);
    Signal v2 = b.reg("v2", 1, 0);
    b.next(v2, v1);
    Signal v3 = b.reg("v3", 1, 0);
    b.next(v3, v2);

    MulPipe out;
    out.result = r3;
    out.outValid = v3;
    out.latency = 3;
    return out;
}

DivUnit
buildDivider(Builder &b, const std::string &name, Signal start, Signal a,
             Signal x, Signal isSigned, Signal wantRem, Signal kill)
{
    rtl::Scope scope(b, name);
    Signal zero32 = b.lit(0, 32);

    Signal busy = b.reg("busy", 1, 0);
    Signal cnt = b.reg("cnt", 6, 0);
    Signal remR = b.reg("rem", 33, 0);
    Signal quoR = b.reg("quo", 32, 0);
    Signal bReg = b.reg("b", 32, 0);
    Signal negQ = b.reg("neg_q", 1, 0);
    Signal negR = b.reg("neg_r", 1, 0);
    Signal remSel = b.reg("rem_sel", 1, 0);
    Signal bZeroR = b.reg("b_zero", 1, 0);
    Signal aOrig = b.reg("a_orig", 32, 0);

    Signal accept = start & !busy;

    // Operand setup: absolute values for signed division.
    Signal aNeg = isSigned & a.bit(31);
    Signal xNeg = isSigned & x.bit(31);
    Signal absA = b.mux(aNeg, zero32 - a, a);
    Signal absB = b.mux(xNeg, zero32 - x, x);

    // One restoring-division step per cycle.
    Signal shifted = b.cat(remR.bits(31, 0), quoR.bit(31)); // 33 bits
    Signal bWide = b.pad(bReg, 33);
    Signal geq = geu(shifted, bWide);
    Signal remNext = b.mux(geq, shifted - bWide, shifted);
    Signal quoNext = b.cat(quoR.bits(30, 0), geq); // shift in result bit

    Signal stepping = busy & !eqImm(cnt, 0);
    Signal lastStep = busy & eqImm(cnt, 1);

    b.next(busy, (accept | busy) & !lastStep & !kill);
    b.next(cnt, b.mux(accept, b.lit(32, 6), cnt - b.lit(1, 6)),
           accept | stepping);
    b.next(remR, b.mux(accept, b.lit(0, 33), remNext), accept | stepping);
    // The quotient register doubles as the dividend shifter: seed it with
    // |a| and shift the remainder/quotient pair 32 times.
    b.next(quoR, b.mux(accept, absA, quoNext), accept | stepping);
    b.next(bReg, absB, accept);
    b.next(negQ, aNeg ^ xNeg, accept);
    b.next(negR, aNeg, accept);
    b.next(remSel, wantRem, accept);
    b.next(bZeroR, eqImm(x, 0), accept);
    b.next(aOrig, a, accept);

    Signal done = b.reg("done", 1, 0);
    b.next(done, lastStep & !kill);

    Signal q = b.mux(negQ & !bZeroR, zero32 - quoR, quoR);
    Signal r = remR.bits(31, 0);
    Signal rSigned = b.mux(negR, zero32 - r, r);
    Signal divRes = b.mux(bZeroR, b.lit(0xffffffff, 32), q);
    Signal remRes = b.mux(bZeroR, aOrig, rSigned);

    DivUnit out;
    out.busy = busy;
    out.done = done;
    out.result = b.mux(remSel, remRes, divRes);
    return out;
}

} // namespace cores
} // namespace strober
