/**
 * @file
 * The "rocket-like" target: a classic 5-stage (F/D/X/M/W) in-order RV32IM
 * pipeline with full bypassing, a one-cycle load-use bubble, branches
 * resolved in X (not-taken fetch policy, two-bubble taken penalty), a
 * 3-stage retime-annotated multiplier, an iterative divider, and 16 KiB
 * blocking L1 caches.
 */

#include "cores/cache.h"
#include "cores/decoder.h"
#include "cores/exec_units.h"
#include "cores/rtl_util.h"
#include "cores/soc.h"
#include "cores/soc_internal.h"

namespace strober {
namespace cores {

rtl::Design
buildRocketSoc(const SocConfig &config)
{
    Builder b(config.name);
    MemWires mem = makeMemWires(b);

    Signal zero32 = b.lit(0, 32);
    Signal zero1 = b.lit(0, 1);

    // =====================================================================
    // Pipeline registers.
    // =====================================================================
    b.pushScope("core");

    b.pushScope("fetch");
    Signal pc = b.reg("pc", 32, 0);
    Signal fdValid = b.reg("fd_valid", 1, 0);
    Signal fdPc = b.reg("fd_pc", 32, 0);
    Signal fdInst = b.reg("fd_inst", 32, 0x13); // nop
    b.popScope();

    b.pushScope("decode");
    Signal dxValid = b.reg("dx_valid", 1, 0);
    Signal dxPc = b.reg("dx_pc", 32, 0);
    Signal dxInst = b.reg("dx_inst", 32, 0x13);
    Signal dxRs1 = b.reg("dx_rs1", 5, 0);
    Signal dxRs2 = b.reg("dx_rs2", 5, 0);
    Signal dxRd = b.reg("dx_rd", 5, 0);
    Signal dxImm = b.reg("dx_imm", 32, 0);
    Signal dxAluFn = b.reg("dx_alu_fn", 4, 0);
    Signal dxAluUseImm = b.reg("dx_alu_use_imm", 1, 0);
    Signal dxAluUsePc = b.reg("dx_alu_use_pc", 1, 0);
    Signal dxWritesRd = b.reg("dx_writes_rd", 1, 0);
    Signal dxIsBranch = b.reg("dx_is_branch", 1, 0);
    Signal dxIsJal = b.reg("dx_is_jal", 1, 0);
    Signal dxIsJalr = b.reg("dx_is_jalr", 1, 0);
    Signal dxIsLoad = b.reg("dx_is_load", 1, 0);
    Signal dxIsStore = b.reg("dx_is_store", 1, 0);
    Signal dxIsMul = b.reg("dx_is_mul", 1, 0);
    Signal dxIsDiv = b.reg("dx_is_div", 1, 0);
    Signal dxIsCsr = b.reg("dx_is_csr", 1, 0);
    Signal dxIsEcall = b.reg("dx_is_ecall", 1, 0);
    Signal dxFunct3 = b.reg("dx_funct3", 3, 0);
    Signal dxMulMode = b.reg("dx_mul_mode", 2, 0);
    Signal dxDivSigned = b.reg("dx_div_signed", 1, 0);
    Signal dxDivRem = b.reg("dx_div_rem", 1, 0);
    Signal dxCsrSel = b.reg("dx_csr_sel", 3, 0);
    b.popScope();

    b.pushScope("execute");
    Signal xmValid = b.reg("xm_valid", 1, 0);
    Signal xmPc = b.reg("xm_pc", 32, 0);
    Signal xmInst = b.reg("xm_inst", 32, 0x13);
    Signal xmRd = b.reg("xm_rd", 5, 0);
    Signal xmWritesRd = b.reg("xm_writes_rd", 1, 0);
    Signal xmResult = b.reg("xm_result", 32, 0);
    Signal xmIsLoad = b.reg("xm_is_load", 1, 0);
    Signal xmIsStore = b.reg("xm_is_store", 1, 0);
    Signal xmIsMmio = b.reg("xm_is_mmio", 1, 0);
    Signal xmIsCsr = b.reg("xm_is_csr", 1, 0);
    Signal xmIsEcall = b.reg("xm_is_ecall", 1, 0);
    Signal xmAddr = b.reg("xm_addr", 32, 0);
    Signal xmWdata = b.reg("xm_wdata", 32, 0);
    Signal xmWstrb = b.reg("xm_wstrb", 4, 0);
    Signal xmFunct3 = b.reg("xm_funct3", 3, 0);
    // Multi-cycle op bookkeeping.
    Signal xIssued = b.reg("x_issued", 1, 0);
    Signal xDone = b.reg("x_done", 1, 0);
    Signal xRes = b.reg("x_res", 32, 0);
    b.popScope();

    b.pushScope("writeback");
    Signal mwValid = b.reg("mw_valid", 1, 0);
    Signal mwPc = b.reg("mw_pc", 32, 0);
    Signal mwInst = b.reg("mw_inst", 32, 0x13);
    Signal mwRd = b.reg("mw_rd", 5, 0);
    Signal mwWen = b.reg("mw_wen", 1, 0);
    Signal mwWdata = b.reg("mw_wdata", 32, 0);
    Signal mwIsCsr = b.reg("mw_is_csr", 1, 0);
    b.popScope();

    b.pushScope("csr");
    Signal cycleCtr = b.reg("cycle", 64, 0);
    Signal instretCtr = b.reg("instret", 64, 0);
    Signal imissCtr = b.reg("imiss", 32, 0);
    Signal dmissCtr = b.reg("dmiss", 32, 0);
    Signal halted = b.reg("halted", 1, 0);
    b.next(cycleCtr, cycleCtr + b.lit(1, 64));
    b.popScope();

    b.popScope(); // core

    // =====================================================================
    // Instruction cache (fetch side).
    // =====================================================================
    CacheInputs icIn;
    icIn.reqValid = !halted;
    icIn.reqAddr = pc;
    icIn.reqWrite = zero1;
    icIn.reqWdata = zero32;
    icIn.reqWstrb = b.lit(0, 4);
    icIn.memReqReady = mem.iReqReady;
    icIn.memRespValid = mem.iRespValid;
    icIn.memRespData = mem.respData;
    CacheIO icache = buildCache(b, "icache", config.icacheBytes, icIn, config.cacheWays);
    Signal ihit = icache.respValid;
    Signal fetchedInst = icache.respData;

    // =====================================================================
    // Decode stage.
    // =====================================================================
    b.pushScope("core");
    DecodedCtrl dec = buildDecoder(b, "decode/dec", fdInst);

    // Architectural register file, read in X so a stalled instruction
    // always sees retired results (2R1W would go stale across long D$
    // misses; see the bypass network below for in-flight producers).
    b.pushScope("regfile");
    rtl::MemHandle rf = b.mem("rf", 32, 32, false);
    Signal rfWen = mwValid & mwWen;
    b.memWrite(rf, mwRd, mwWdata, rfWen);
    b.popScope();

    // =====================================================================
    // Execute stage.
    // =====================================================================
    b.pushScope("execute");
    auto operandRead = [&](Signal rs) {
        b.pushScope("regfile");
        Signal raw = b.memRead(rf, rs);
        b.popScope();
        Signal fromW = mwValid & mwWen & eq(mwRd, rs);
        Signal fromM = xmValid & xmWritesRd & !xmIsLoad & eq(xmRd, rs);
        Signal val = muxChain(b, raw, {{fromM, xmResult},
                                       {fromW, mwWdata}});
        return b.mux(eqImm(rs, 0), zero32, val);
    };
    Signal op1 = operandRead(dxRs1);
    Signal op2 = operandRead(dxRs2);
    Signal aluOp1 = b.mux(dxAluUsePc, dxPc, op1);
    Signal aluOp2 = b.mux(dxAluUseImm, dxImm, op2);
    Signal aluRes = buildAlu(b, "alu", dxAluFn, aluOp1, aluOp2);
    Signal brTaken = buildBranchUnit(b, "branch", dxFunct3, op1, op2);
    Signal csrVal = b.select(dxCsrSel,
                             {cycleCtr.bits(31, 0), instretCtr.bits(31, 0),
                              cycleCtr.bits(63, 32),
                              instretCtr.bits(63, 32), imissCtr,
                              dmissCtr});

    // Multi-cycle units: issue once per instruction occupancy of X.
    Signal mulStart = dxValid & dxIsMul & !xIssued;
    MulPipe mul = buildMulPipe(b, "mul", op1, op2, dxMulMode, mulStart);
    Signal divStart = dxValid & dxIsDiv & !xIssued;
    DivUnit div = buildDivider(b, "div", divStart, op1, op2, dxDivSigned,
                               dxDivRem, zero1);
    Signal unitDone = mul.outValid | div.done;
    Signal unitRes = b.mux(div.done, div.result, mul.result);
    b.next(xRes, unitRes, unitDone);

    Signal xIsMulti = dxValid & (dxIsMul | dxIsDiv);
    Signal xWait = xIsMulti & !(xDone | unitDone);

    // Branch targets and redirect decision (resolved in X).
    Signal brTarget = dxPc + dxImm;
    Signal jalrTarget = (op1 + dxImm) & b.lit(0xfffffffe, 32);
    Signal takenJump =
        dxValid & (dxIsJal | dxIsJalr | (dxIsBranch & brTaken));
    Signal redirectTarget = b.mux(dxIsJalr, jalrTarget, brTarget);

    // Store alignment.
    Signal byteOff = aluRes.bits(1, 0);
    Signal shiftBits = b.pad(b.cat(byteOff, b.lit(0, 3)), 32);
    Signal storeData = shl(op2, shiftBits);
    Signal strbByte = shl(b.lit(1, 4), b.pad(byteOff, 4));
    Signal strbHalf = shl(b.lit(3, 4), b.pad(byteOff, 4));
    Signal wstrb = b.select(dxFunct3.bits(1, 0),
                            {strbByte, strbHalf, b.lit(0xf, 4),
                             b.lit(0xf, 4)});
    Signal isMmioAddr = eqImm(aluRes.bits(31, 28), 0x4);

    Signal xResult = muxChain(
        b, aluRes,
        {{dxIsMul | dxIsDiv, b.mux(unitDone, unitRes, xRes)},
         {dxIsCsr, csrVal},
         {dxIsJal | dxIsJalr, dxPc + b.lit(4, 32)}});
    b.popScope(); // execute
    b.popScope(); // core

    // =====================================================================
    // Memory stage: data cache + MMIO.
    // =====================================================================
    Signal dReqValid = xmValid & (xmIsLoad | xmIsStore) & !xmIsMmio;
    CacheInputs dcIn;
    dcIn.reqValid = dReqValid;
    dcIn.reqAddr = b.cat(xmAddr.bits(31, 2), b.lit(0, 2));
    dcIn.reqWrite = xmIsStore;
    dcIn.reqWdata = xmWdata;
    dcIn.reqWstrb = xmWstrb;
    dcIn.memReqReady = mem.dReqReady;
    dcIn.memRespValid = mem.dRespValid;
    dcIn.memRespData = mem.respData;
    CacheIO dcache = buildCache(b, "dcache", config.dcacheBytes, dcIn, config.cacheWays);

    b.pushScope("core");
    b.pushScope("mem");
    Signal mStall = dReqValid & !dcache.respValid;

    // Load data extraction.
    Signal mByteOff = xmAddr.bits(1, 0);
    Signal mShift = b.pad(b.cat(mByteOff, b.lit(0, 3)), 32);
    Signal rawWord = shru(dcache.respData, mShift);
    Signal loadByte = b.mux(xmFunct3.bit(2), b.pad(rawWord.bits(7, 0), 32),
                            b.sext(rawWord.bits(7, 0), 32));
    Signal loadHalf = b.mux(xmFunct3.bit(2), b.pad(rawWord.bits(15, 0), 32),
                            b.sext(rawWord.bits(15, 0), 32));
    Signal loadRes = b.select(xmFunct3.bits(1, 0),
                              {loadByte, loadHalf, rawWord, rawWord});
    Signal mmioFire = xmValid & xmIsStore & xmIsMmio;
    Signal haltFire = xmValid & xmIsEcall & !mStall;
    b.next(halted, halted | haltFire);
    b.popScope(); // mem

    // =====================================================================
    // Pipeline control.
    // =====================================================================
    b.pushScope("control");
    Signal loadUse = dxValid & dxIsLoad & fdValid &
                     ((dec.usesRs1 & eq(dec.rs1, dxRd)) |
                      (dec.usesRs2 & eq(dec.rs2, dxRd)));
    Signal xAdv = dxValid & !xWait & !mStall;
    Signal redirect = takenJump & !xWait & !mStall;
    Signal dxHold = mStall | xWait;
    Signal fdHold = dxHold | loadUse;

    // PC.
    Signal pcPlus4 = pc + b.lit(4, 32);
    Signal pcNext = muxChain(b, pc,
                             {{redirect, redirectTarget},
                              {fdHold | halted, pc},
                              {ihit, pcPlus4}});
    // Redirect has priority over holds: the held fetch is wrong-path.
    b.next(pc, b.mux(redirect, redirectTarget, pcNext));

    // F/D.
    Signal fdKill = redirect | haltFire;
    b.next(fdValid,
           b.mux(fdKill, zero1,
                 b.mux(fdHold, fdValid, ihit & !halted)));
    Signal fdTake = (!fdKill) & (!fdHold) & ihit;
    b.next(fdPc, pc, fdTake);
    b.next(fdInst, fetchedInst, fdTake);

    // D/X.
    Signal dxKill = redirect | haltFire;
    Signal dxTake = !dxHold;
    b.next(dxValid,
           b.mux(dxKill, zero1,
                 b.mux(dxHold, dxValid, fdValid & !loadUse)));
    Signal dEn = dxTake & fdValid & !loadUse;
    b.next(dxPc, fdPc, dEn);
    b.next(dxInst, fdInst, dEn);
    b.next(dxRs1, dec.rs1, dEn);
    b.next(dxRs2, dec.rs2, dEn);
    b.next(dxRd, dec.rd, dEn);
    b.next(dxImm, dec.imm, dEn);
    b.next(dxAluFn, dec.aluFn, dEn);
    b.next(dxAluUseImm, dec.aluUseImm, dEn);
    b.next(dxAluUsePc, dec.aluUsePc, dEn);
    b.next(dxWritesRd, dec.writesRd, dEn);
    b.next(dxIsBranch, dec.isBranch, dEn);
    b.next(dxIsJal, dec.isJal, dEn);
    b.next(dxIsJalr, dec.isJalr, dEn);
    b.next(dxIsLoad, dec.isLoad, dEn);
    b.next(dxIsStore, dec.isStore, dEn);
    b.next(dxIsMul, dec.isMul, dEn);
    b.next(dxIsDiv, dec.isDiv, dEn);
    b.next(dxIsCsr, dec.isCsr, dEn);
    b.next(dxIsEcall, dec.isEcall, dEn);
    b.next(dxFunct3, dec.funct3, dEn);
    b.next(dxMulMode, dec.mulMode, dEn);
    b.next(dxDivSigned, dec.divSigned, dEn);
    b.next(dxDivRem, dec.divRem, dEn);
    b.next(dxCsrSel, dec.csrSel, dEn);

    // X bookkeeping: issued/done flags are cleared when the instruction
    // leaves X so back-to-back multi-cycle ops restart cleanly.
    b.next(xIssued, (xIssued | mulStart | divStart) & !xAdv);
    b.next(xDone, (xDone | unitDone) & !xAdv);

    // X/M.
    Signal xmEn = !mStall;
    b.next(xmValid,
           b.mux(mStall, xmValid, xAdv & !haltFire));
    Signal xLatch = xmEn & xAdv;
    b.next(xmPc, dxPc, xLatch);
    b.next(xmInst, dxInst, xLatch);
    b.next(xmRd, dxRd, xLatch);
    b.next(xmWritesRd, dxWritesRd, xLatch);
    b.next(xmResult, xResult, xLatch);
    b.next(xmIsLoad, dxIsLoad, xLatch);
    b.next(xmIsStore, dxIsStore, xLatch);
    b.next(xmIsMmio, isMmioAddr & (dxIsLoad | dxIsStore), xLatch);
    b.next(xmIsCsr, dxIsCsr, xLatch);
    b.next(xmIsEcall, dxIsEcall, xLatch);
    b.next(xmAddr, aluRes, xLatch);
    b.next(xmWdata, storeData, xLatch);
    b.next(xmWstrb, wstrb, xLatch);
    b.next(xmFunct3, dxFunct3, xLatch);

    // M/W.
    Signal mComplete = xmValid & !mStall;
    b.next(mwValid, mComplete);
    b.next(mwPc, xmPc, mComplete);
    b.next(mwInst, xmInst, mComplete);
    b.next(mwRd, xmRd, mComplete);
    b.next(mwWen, xmWritesRd, mComplete);
    b.next(mwWdata,
           b.mux(xmIsLoad & !xmIsMmio, loadRes, xmResult), mComplete);
    b.next(mwIsCsr, xmIsCsr, mComplete);

    b.next(instretCtr, instretCtr + b.lit(1, 64), mwValid);
    b.next(imissCtr, imissCtr + b.lit(1, 32), icache.missEvent);
    b.next(dmissCtr, dmissCtr + b.lit(1, 32), dcache.missEvent);
    b.popScope(); // control
    b.popScope(); // core

    // =====================================================================
    // Uncore: arbiter, MMIO port, commit trace.
    // =====================================================================
    buildMemArbiter(b, mem, icache, dcache);
    b.output("mmio_valid", mmioFire);
    b.output("mmio_addr", xmAddr);
    b.output("mmio_wdata", xmWdata);
    b.output("halted", halted);

    CommitInfo commit;
    commit.valid = mwValid;
    commit.pc = mwPc;
    commit.inst = mwInst;
    commit.wen = mwWen;
    commit.rd = mwRd;
    commit.wdata = mwWdata;
    commit.isCsr = mwIsCsr;
    emitCommitPort(b, 0, commit);

    return b.finish();
}

} // namespace cores
} // namespace strober
