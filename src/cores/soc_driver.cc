#include "cores/soc_driver.h"

#include "isa/encoding.h"
#include "isa/memmap.h"
#include "util/logging.h"

namespace strober {
namespace cores {

namespace {

int
outputIndex(const rtl::Design &d, const std::string &name)
{
    int idx = d.findOutput(name);
    if (idx < 0)
        fatal("SoC design has no output '%s'", name.c_str());
    return idx;
}

} // namespace

SocDriver::SocDriver(const rtl::Design &soc, const isa::Program &program,
                     Config config)
    : cfg(config), ram(config.ramBytes, 0), dramTiming(config.dram)
{
    if (program.base + program.sizeBytes() > ram.size())
        fatal("program does not fit in driver RAM");
    for (size_t i = 0; i < program.words.size(); ++i) {
        uint32_t w = program.words[i];
        size_t a = program.base + 4 * i;
        ram[a] = static_cast<uint8_t>(w);
        ram[a + 1] = static_cast<uint8_t>(w >> 8);
        ram[a + 2] = static_cast<uint8_t>(w >> 16);
        ram[a + 3] = static_cast<uint8_t>(w >> 24);
    }
    if (cfg.checkCommits) {
        iss = std::make_unique<isa::Iss>(cfg.ramBytes);
        iss->loadProgram(program);
    }

    outReqValid = outputIndex(soc, "mem_req_valid");
    outReqAddr = outputIndex(soc, "mem_req_addr");
    outReqWrite = outputIndex(soc, "mem_req_write");
    outReqWdata = outputIndex(soc, "mem_req_wdata");
    outMmioValid = outputIndex(soc, "mmio_valid");
    outMmioAddr = outputIndex(soc, "mmio_addr");
    outMmioWdata = outputIndex(soc, "mmio_wdata");
    outHalted = outputIndex(soc, "halted");
    for (unsigned slot = 0;; ++slot) {
        std::string p = "commit" + std::to_string(slot) + "_";
        if (soc.findOutput(p + "valid") < 0)
            break;
        CommitPorts c;
        c.valid = outputIndex(soc, p + "valid");
        c.pc = outputIndex(soc, p + "pc");
        c.inst = outputIndex(soc, p + "inst");
        c.wen = outputIndex(soc, p + "wen");
        c.rd = outputIndex(soc, p + "rd");
        c.wdata = outputIndex(soc, p + "wdata");
        c.isCsr = outputIndex(soc, p + "is_csr");
        commitPorts.push_back(c);
    }
    if (commitPorts.empty())
        fatal("SoC exposes no commit ports");

    auto inputIndex = [&](const std::string &name) {
        for (size_t i = 0; i < soc.inputs().size(); ++i) {
            if (soc.node(soc.inputs()[i]).name == name)
                return static_cast<int>(i);
        }
        fatal("SoC design has no input '%s'", name.c_str());
    };
    inReqReady = inputIndex("mem_req_ready");
    inRespValid = inputIndex("mem_resp_valid");
    inRespData = inputIndex("mem_resp_data");
}

SocDriver::SocDriver(const rtl::Design &soc, const isa::Program &program)
    : SocDriver(soc, program, Config())
{
}

uint64_t
SocDriver::readLine(uint32_t addr) const
{
    uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) {
        uint32_t a = addr + i;
        uint8_t byte = a < ram.size() ? ram[a] : 0;
        v |= static_cast<uint64_t>(byte) << (8 * i);
    }
    return v;
}

void
SocDriver::writeLine(uint32_t addr, uint64_t data)
{
    for (unsigned i = 0; i < 8; ++i) {
        uint32_t a = addr + i;
        if (a < ram.size())
            ram[a] = static_cast<uint8_t>(data >> (8 * i));
    }
}

void
SocDriver::handleMmio(uint32_t addr, uint32_t data)
{
    if (addr == isa::kMmioExit) {
        finished = true;
        exitValue = data;
    } else if (addr == isa::kMmioPutchar) {
        consoleOut += static_cast<char>(data & 0xff);
    }
}

void
SocDriver::checkCommit(uint32_t pc, uint32_t inst, bool wen, unsigned rd,
                       uint32_t wdata, bool isCsr)
{
    if (!iss)
        return;
    if (iss->halted())
        fatal("core committed pc 0x%08x after the ISS halted", pc);
    isa::Commit expect = iss->step();
    if (expect.pc != pc || expect.inst != inst)
        fatal("commit divergence: core pc 0x%08x inst 0x%08x (%s), "
              "ISS pc 0x%08x inst 0x%08x (%s) after %llu commits",
              pc, inst, isa::disassemble(inst).c_str(), expect.pc,
              expect.inst, isa::disassemble(expect.inst).c_str(),
              (unsigned long long)commitCount);
    if (isCsr) {
        // Timing-dependent CSR read: adopt the core's value so later
        // instructions that consume it stay in lock step.
        if (wen)
            iss->setReg(rd, wdata);
        return;
    }
    if (expect.wroteRd != wen ||
        (wen && (expect.rd != rd || expect.rdValue != wdata))) {
        fatal("commit divergence at pc 0x%08x (%s): core wen=%d rd=%u "
              "wdata=0x%08x, ISS wen=%d rd=%u wdata=0x%08x",
              pc, isa::disassemble(inst).c_str(), wen, rd, wdata,
              expect.wroteRd, expect.rd, expect.rdValue);
    }
}

void
SocDriver::drive(core::TargetHarness &h)
{
    // --- Inspect last cycle's outputs -----------------------------------
    if (h.getOutput(static_cast<size_t>(outHalted))) {
        finished = true;
        // Exit code convention for ecall-halts: none (0).
    }
    if (h.getOutput(static_cast<size_t>(outMmioValid))) {
        handleMmio(
            static_cast<uint32_t>(h.getOutput(static_cast<size_t>(
                outMmioAddr))),
            static_cast<uint32_t>(h.getOutput(static_cast<size_t>(
                outMmioWdata))));
    }
    for (const CommitPorts &c : commitPorts) {
        if (!h.getOutput(static_cast<size_t>(c.valid)))
            continue;
        ++commitCount;
        // Once the program has requested exit, the target legitimately
        // commits a few trailing instructions; stop checking.
        if (finished)
            continue;
        checkCommit(
            static_cast<uint32_t>(h.getOutput(static_cast<size_t>(c.pc))),
            static_cast<uint32_t>(h.getOutput(static_cast<size_t>(c.inst))),
            h.getOutput(static_cast<size_t>(c.wen)) != 0,
            static_cast<unsigned>(h.getOutput(static_cast<size_t>(c.rd))),
            static_cast<uint32_t>(
                h.getOutput(static_cast<size_t>(c.wdata))),
            h.getOutput(static_cast<size_t>(c.isCsr)) != 0);
    }

    // --- Memory channel ---------------------------------------------------
    bool respNow = false;
    if (busy) {
        if (countdown > 0)
            --countdown;
        if (countdown == 0) {
            if (pendingRead)
                respNow = true;
            busy = false;
        }
    } else if (readyPresented &&
               h.getOutput(static_cast<size_t>(outReqValid))) {
        // The request presented last cycle was accepted.
        uint32_t addr = static_cast<uint32_t>(
            h.getOutput(static_cast<size_t>(outReqAddr)));
        bool isWrite = h.getOutput(static_cast<size_t>(outReqWrite)) != 0;
        unsigned latency = dramTiming.access(addr, isWrite);
        if (isWrite) {
            writeLine(addr, h.getOutput(static_cast<size_t>(outReqWdata)));
            pendingRead = false;
        } else {
            pendingData = readLine(addr);
            pendingRead = true;
        }
        busy = true;
        countdown = latency;
    }

    bool readyNext = !busy;
    h.setInput(static_cast<size_t>(inReqReady), readyNext ? 1 : 0);
    h.setInput(static_cast<size_t>(inRespValid), respNow ? 1 : 0);
    h.setInput(static_cast<size_t>(inRespData), respNow ? pendingData : 0);
    readyPresented = readyNext;
}

} // namespace cores
} // namespace strober
