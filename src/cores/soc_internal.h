/**
 * @file
 * Shared plumbing between the core generators: the I$/D$ memory-port
 * arbiter (one request in flight, D$ priority) and the commit-trace port
 * emitter. Internal to src/cores.
 */

#ifndef STROBER_CORES_SOC_INTERNAL_H
#define STROBER_CORES_SOC_INTERNAL_H

#include "cores/cache.h"
#include "rtl/builder.h"

namespace strober {
namespace cores {

/** Wires the caches consume before the arbiter exists. */
struct MemWires
{
    Signal iReqReady, iRespValid;
    Signal dReqReady, dRespValid;
    Signal respData; //!< shared 64-bit refill data
};

/** Create the (unassigned) memory-side wires for the cache builders. */
MemWires makeMemWires(Builder &b);

/**
 * Build the memory arbiter: creates the top-level mem_* ports, routes
 * requests (D$ wins ties), tracks the single outstanding read and
 * assigns all MemWires.
 */
void buildMemArbiter(Builder &b, MemWires &wires, const CacheIO &icache,
                     const CacheIO &dcache);

/** One commit-trace slot. */
struct CommitInfo
{
    Signal valid, pc, inst, wen, rd, wdata, isCsr;
};

/** Emit the commit<slot>_* output ports. */
void emitCommitPort(Builder &b, unsigned slot, const CommitInfo &commit);

} // namespace cores
} // namespace strober

#endif // STROBER_CORES_SOC_INTERNAL_H
