file(REMOVE_RECURSE
  "libstrober_cores.a"
)
