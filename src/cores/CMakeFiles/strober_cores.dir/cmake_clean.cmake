file(REMOVE_RECURSE
  "CMakeFiles/strober_cores.dir/boom.cc.o"
  "CMakeFiles/strober_cores.dir/boom.cc.o.d"
  "CMakeFiles/strober_cores.dir/cache.cc.o"
  "CMakeFiles/strober_cores.dir/cache.cc.o.d"
  "CMakeFiles/strober_cores.dir/decoder.cc.o"
  "CMakeFiles/strober_cores.dir/decoder.cc.o.d"
  "CMakeFiles/strober_cores.dir/exec_units.cc.o"
  "CMakeFiles/strober_cores.dir/exec_units.cc.o.d"
  "CMakeFiles/strober_cores.dir/rocket.cc.o"
  "CMakeFiles/strober_cores.dir/rocket.cc.o.d"
  "CMakeFiles/strober_cores.dir/soc.cc.o"
  "CMakeFiles/strober_cores.dir/soc.cc.o.d"
  "CMakeFiles/strober_cores.dir/soc_driver.cc.o"
  "CMakeFiles/strober_cores.dir/soc_driver.cc.o.d"
  "libstrober_cores.a"
  "libstrober_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
