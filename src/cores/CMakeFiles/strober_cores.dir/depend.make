# Empty dependencies file for strober_cores.
# This may be replaced when dependencies are built.
