#include "stats/rng.h"

#include <cmath>

namespace strober {
namespace stats {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
    haveSpare = false;
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u, v, sq;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        sq = u * u + v * v;
    } while (sq >= 1.0 || sq == 0.0);
    double scale = std::sqrt(-2.0 * std::log(sq) / sq);
    spare = v * scale;
    haveSpare = true;
    return u * scale;
}

} // namespace stats
} // namespace strober
