/**
 * @file
 * Survey-sampling statistics (paper Section III-A, Table I) and reservoir
 * sampling (Vitter's algorithm R, paper Section III-B).
 *
 * The estimators implement simple random sampling *without replacement*
 * from a finite population of size N:
 *
 *   sample mean        x̄ = Σxᵢ / n                        (paper Eq. 3)
 *   sample variance    s²ₓ = Σ(xᵢ - x̄)² / (n - 1)          (paper Eq. 4)
 *   population var.    σ² ≈ (N-1)·s²ₓ / N                  (paper Eq. 5)
 *   sampling variance  Var(x̄) ≈ s²ₓ(N - n) / (N·n)         (paper Eq. 6)
 *   CI                 x̄ ± z₁₋ₐ/₂ · √Var(x̄)                (paper Eq. 7)
 *   min sample size    n ≥ max(z²s²ₓ / (ε²x̄²), 30)         (paper Eq. 8)
 */

#ifndef STROBER_STATS_SAMPLING_H
#define STROBER_STATS_SAMPLING_H

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "stats/rng.h"
#include "util/logging.h"

namespace strober {
namespace stats {

/** Quantile of the standard normal distribution (inverse Φ). */
double normalQuantile(double p);

/** z value for a two-sided confidence level, e.g. 0.99 -> z ≈ 2.576. */
double zForConfidence(double confidence);

/** Point estimate plus a symmetric confidence interval. */
struct Estimate
{
    double mean = 0.0;          //!< x̄
    double halfWidth = 0.0;     //!< z·√Var(x̄)
    double confidence = 0.0;    //!< 1 - α

    double lower() const { return mean - halfWidth; }
    double upper() const { return mean + halfWidth; }
    /** Half width as a fraction of the mean (0 when mean == 0). */
    double relativeError() const
    {
        return mean == 0.0 ? 0.0 : halfWidth / mean;
    }
};

/**
 * Estimators over one sample drawn without replacement from a finite
 * population. Population size N may be unknown while measurements are
 * accumulated and supplied at estimation time.
 */
class SampleStats
{
  public:
    /** Add one measured element xᵢ. */
    void add(double x) { values.push_back(x); }

    size_t size() const { return values.size(); }
    const std::vector<double> &data() const { return values; }

    /** Sample mean x̄ (Eq. 3). Requires at least one element. */
    double mean() const;

    /** Unbiased sample variance s²ₓ (Eq. 4). Requires n >= 2. */
    double sampleVariance() const;

    /** Population variance estimate (Eq. 5) for population size N. */
    double populationVariance(uint64_t populationSize) const;

    /**
     * Sampling variance Var(x̄) with finite-population correction (Eq. 6).
     * @param populationSize N; must be >= sample size.
     */
    double samplingVariance(uint64_t populationSize) const;

    /**
     * Confidence interval for the population mean (Eq. 7).
     * @param confidence two-sided confidence level, e.g. 0.99.
     * @param populationSize N for the finite-population correction.
     */
    Estimate estimate(double confidence, uint64_t populationSize) const;

    /**
     * Minimum sample size (Eq. 8) so that the relative error of the mean
     * estimate is below @p epsilon at the given confidence level. Uses
     * this sample's x̄ and s²ₓ as plug-in values; always at least 30.
     */
    uint64_t minimumSampleSize(double confidence, double epsilon) const;

  private:
    std::vector<double> values;
};

/**
 * Reservoir sampling (Vitter's algorithm R): maintains a uniform random
 * sample of size n over a stream whose total length is unknown a priori.
 * Element k (1-based) replaces a random reservoir slot with probability
 * n/k, so the expected number of record events up to N elements is
 * n + n·(H_N - H_n) ≈ n·(1 + ln(N/n)) — i.e. recording becomes rare as the
 * stream grows, which is why sampling overhead vanishes for long runs
 * (paper Table III).
 */
template <typename T>
class ReservoirSampler
{
  public:
    ReservoirSampler(size_t sampleSize, uint64_t seed = 0x5eed5eedULL)
        : n(sampleSize), rng(seed)
    {
        if (n == 0)
            fatal("reservoir sample size must be positive");
    }

    /**
     * Offer the next stream element. @return the reservoir slot it was
     * recorded into, or -1 if it was skipped. The caller only pays the
     * cost of materializing T when a slot index is returned, matching the
     * paper's "read the snapshot out only when recorded" optimization.
     */
    long offer()
    {
        ++seen;
        if (reservoir.size() < n) {
            reservoir.emplace_back();
            ++records;
            return static_cast<long>(reservoir.size() - 1);
        }
        uint64_t j = rng.nextBounded(seen);
        if (j < n) {
            ++records;
            return static_cast<long>(j);
        }
        return -1;
    }

    /** Store @p value into @p slot (as returned by offer()). */
    void record(long slot, T value)
    {
        reservoir.at(static_cast<size_t>(slot)) = std::move(value);
    }

    /** Number of stream elements offered so far. */
    uint64_t elementsSeen() const { return seen; }

    /** Number of record events so far (paper Table III "Record Counts"). */
    uint64_t recordCount() const { return records; }

    const std::vector<T> &sample() const { return reservoir; }
    std::vector<T> &sample() { return reservoir; }

    /** Expected record count for a stream of @p streamLen elements. */
    static double
    expectedRecords(size_t sampleSize, uint64_t streamLen)
    {
        if (streamLen <= sampleSize)
            return static_cast<double>(streamLen);
        double sum = static_cast<double>(sampleSize);
        // n * (H_N - H_n), via log for large streams.
        sum += static_cast<double>(sampleSize) *
               (std::log(static_cast<double>(streamLen)) -
                std::log(static_cast<double>(sampleSize)));
        return sum;
    }

  private:
    size_t n;
    Rng rng;
    uint64_t seen = 0;
    uint64_t records = 0;
    std::vector<T> reservoir;
};

} // namespace stats
} // namespace strober

#endif // STROBER_STATS_SAMPLING_H
