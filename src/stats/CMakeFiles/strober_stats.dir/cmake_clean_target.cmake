file(REMOVE_RECURSE
  "libstrober_stats.a"
)
