file(REMOVE_RECURSE
  "CMakeFiles/strober_stats.dir/rng.cc.o"
  "CMakeFiles/strober_stats.dir/rng.cc.o.d"
  "CMakeFiles/strober_stats.dir/sampling.cc.o"
  "CMakeFiles/strober_stats.dir/sampling.cc.o.d"
  "libstrober_stats.a"
  "libstrober_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
