# Empty dependencies file for strober_stats.
# This may be replaced when dependencies are built.
