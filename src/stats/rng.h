/**
 * @file
 * Deterministic pseudo-random number generation for sampling decisions.
 *
 * A dedicated generator (xoshiro256**) rather than std::mt19937 so that
 * sampling decisions are bit-reproducible across standard libraries —
 * experiment scripts depend on stable seeds.
 */

#ifndef STROBER_STATS_RNG_H
#define STROBER_STATS_RNG_H

#include <cstdint>

namespace strober {
namespace stats {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * implementation), seeded through splitmix64.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return an unbiased uniform integer in [0, bound). */
    uint64_t nextBounded(uint64_t bound);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return a standard-normal variate (Box-Muller). */
    double nextGaussian();

  private:
    uint64_t s[4];
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace stats
} // namespace strober

#endif // STROBER_STATS_RNG_H
