#include "stats/sampling.h"

#include <algorithm>
#include <cmath>

namespace strober {
namespace stats {

double
normalQuantile(double p)
{
    if (p <= 0.0 || p >= 1.0)
        fatal("normalQuantile requires p in (0,1), got %g", p);

    // Acklam's rational approximation (relative error < 1.15e-9),
    // refined with one Halley step against erfc for ~1e-15 accuracy.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double plow = 0.02425;
    const double phigh = 1 - plow;
    double q, r, x;

    if (p < plow) {
        q = std::sqrt(-2 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    } else if (p <= phigh) {
        q = p - 0.5;
        r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
    } else {
        q = std::sqrt(-2 * std::log(1 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }

    // Halley refinement: Phi(x) - p via erfc.
    double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
    double u = e * std::sqrt(2 * M_PI) * std::exp(x * x / 2);
    x = x - u / (1 + x * u / 2);
    return x;
}

double
zForConfidence(double confidence)
{
    if (confidence <= 0.0 || confidence >= 1.0)
        fatal("confidence level must be in (0,1), got %g", confidence);
    double alpha = 1.0 - confidence;
    return normalQuantile(1.0 - alpha / 2.0);
}

double
SampleStats::mean() const
{
    if (values.empty())
        fatal("mean of an empty sample");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
SampleStats::sampleVariance() const
{
    if (values.size() < 2)
        fatal("sample variance needs n >= 2, have n = %zu", values.size());
    double m = mean();
    double ss = 0.0;
    for (double v : values)
        ss += (v - m) * (v - m);
    return ss / static_cast<double>(values.size() - 1);
}

double
SampleStats::populationVariance(uint64_t populationSize) const
{
    if (populationSize < 2)
        fatal("population variance needs N >= 2");
    double nD = static_cast<double>(populationSize);
    return (nD - 1.0) * sampleVariance() / nD;
}

double
SampleStats::samplingVariance(uint64_t populationSize) const
{
    uint64_t n = values.size();
    if (populationSize < n)
        fatal("population size %llu smaller than sample size %llu",
              (unsigned long long)populationSize, (unsigned long long)n);
    double nD = static_cast<double>(n);
    double bigN = static_cast<double>(populationSize);
    return sampleVariance() * (bigN - nD) / (bigN * nD);
}

Estimate
SampleStats::estimate(double confidence, uint64_t populationSize) const
{
    Estimate est;
    est.mean = mean();
    est.confidence = confidence;
    est.halfWidth =
        zForConfidence(confidence) * std::sqrt(samplingVariance(populationSize));
    return est;
}

uint64_t
SampleStats::minimumSampleSize(double confidence, double epsilon) const
{
    if (epsilon <= 0.0)
        fatal("epsilon must be positive");
    double z = zForConfidence(confidence);
    double m = mean();
    if (m == 0.0)
        fatal("minimum sample size undefined for zero mean");
    double n = (z * z * sampleVariance()) / (epsilon * epsilon * m * m);
    return std::max<uint64_t>(static_cast<uint64_t>(std::ceil(n)), 30);
}

} // namespace stats
} // namespace strober
