file(REMOVE_RECURSE
  "CMakeFiles/strober_farm.dir/farm.cc.o"
  "CMakeFiles/strober_farm.dir/farm.cc.o.d"
  "CMakeFiles/strober_farm.dir/manifest.cc.o"
  "CMakeFiles/strober_farm.dir/manifest.cc.o.d"
  "CMakeFiles/strober_farm.dir/result_cache.cc.o"
  "CMakeFiles/strober_farm.dir/result_cache.cc.o.d"
  "libstrober_farm.a"
  "libstrober_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
