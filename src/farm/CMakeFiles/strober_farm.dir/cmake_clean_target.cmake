file(REMOVE_RECURSE
  "libstrober_farm.a"
)
