# Empty dependencies file for strober_farm.
# This may be replaced when dependencies are built.
