#include "farm/manifest.h"

#include <filesystem>
#include <fstream>

#include "farm/wire.h"
#include "util/logging.h"

namespace strober {
namespace farm {

namespace fs = std::filesystem;
using util::ErrorCode;
using util::errorf;
using util::Result;
using util::Status;

namespace {

constexpr uint64_t kManifestMagic = 0x5354524246524d31ull; // "STRBFRM1"
// v2 added ManifestEntry.leaseDeadlineUnixMs (time-based lease expiry
// for the service tier). v1 manifests are still read; their leases
// carry deadline 0, which reclaimLeases() treats as already expired.
constexpr uint32_t kManifestVersion = 3; // v3: + stimulusFingerprint mirror

} // namespace

const char *
entryStateName(EntryState state)
{
    switch (state) {
      case EntryState::Pending:
        return "pending";
      case EntryState::Leased:
        return "leased";
      case EntryState::Done:
        return "done";
      case EntryState::Quarantined:
        return "quarantined";
    }
    return "unknown";
}

void
ShardManifest::applyTo(core::EnergySimulator::Config &cfg) const
{
    cfg.replayLength = replayLength;
    cfg.clockHz = clockHz;
    cfg.loader = static_cast<gate::LoaderKind>(loader);
    cfg.replayTimeoutCycles = replayTimeoutCycles;
    cfg.retryFaultySnapshots = retryFaultySnapshots != 0;
    cfg.confidence = confidence;
    cfg.minSurvivingSamples = minSurvivingSamples;
    cfg.maxDroppedSnapshots = maxDroppedSnapshots;
    cfg.stimulusFingerprint = stimulusFingerprint;
}

void
ShardManifest::mirrorFrom(const core::EnergySimulator::Config &cfg)
{
    replayLength = cfg.replayLength;
    clockHz = cfg.clockHz;
    loader = static_cast<uint32_t>(cfg.loader);
    replayTimeoutCycles = cfg.replayTimeoutCycles;
    retryFaultySnapshots = cfg.retryFaultySnapshots ? 1 : 0;
    confidence = cfg.confidence;
    minSurvivingSamples = cfg.minSurvivingSamples;
    maxDroppedSnapshots = cfg.maxDroppedSnapshots;
    stimulusFingerprint = cfg.stimulusFingerprint;
}

size_t
ShardManifest::count(EntryState state) const
{
    size_t n = 0;
    for (const ManifestEntry &e : entries)
        n += e.state == state;
    return n;
}

std::string
shardManifestName(uint32_t shard)
{
    return "shard_" + std::to_string(shard) + ".strbfarm";
}

size_t
reclaimLeases(ShardManifest &manifest, uint64_t nowUnixMs)
{
    size_t reclaimed = 0;
    for (ManifestEntry &e : manifest.entries) {
        if (e.state != EntryState::Leased)
            continue;
        // deadline == now counts as expired: the lease promised work
        // *before* now, and a worker that has not delivered by its own
        // deadline forfeits the entry.
        if (e.leaseDeadlineUnixMs <= nowUnixMs) {
            e.state = EntryState::Pending;
            e.leaseDeadlineUnixMs = 0;
            ++reclaimed;
        }
    }
    return reclaimed;
}

Status
writeManifestFile(const std::string &path, const ShardManifest &m)
{
    wire::Writer w;
    w.u64(kManifestMagic);
    w.u64(kManifestVersion);
    w.u64(m.shard);
    w.u64(m.shards);
    w.u64(m.population);
    w.u64(m.sampleCount);
    w.u64(m.netlistFingerprint);
    w.u64(m.configFingerprint);
    w.u64(m.powerModelVersion);
    w.str(m.coreName);
    w.str(m.workloadName);
    w.u64(m.replayLength);
    w.f64(m.clockHz);
    w.u64(m.loader);
    w.u64(m.replayTimeoutCycles);
    w.u64(m.retryFaultySnapshots);
    w.f64(m.confidence);
    w.u64(m.minSurvivingSamples);
    w.u64(m.maxDroppedSnapshots);
    w.u64(m.stimulusFingerprint);
    w.u64(m.entries.size());
    for (const ManifestEntry &e : m.entries) {
        w.u64(e.index);
        w.u64(e.cycle);
        w.str(e.snapshotFile);
        w.u64(e.key.hi);
        w.u64(e.key.lo);
        w.u64(static_cast<uint64_t>(e.state));
        w.u64(e.injectedStallCycles);
        w.u64(e.leaseDeadlineUnixMs);
        w.u64(e.failStatus);
        w.u64(e.failAttempts);
        w.u64(e.failRetried);
        w.u64(e.failMismatches);
        w.f64(e.failLoadSeconds);
        w.str(e.failDetail);
    }

    // Atomic write-to-temp-then-rename, like snapshot v2: a killed run
    // leaves either the previous manifest or the new one, never a torn
    // file.
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return errorf(ErrorCode::IoError, "cannot create '%s'",
                          tmp.c_str());
        std::string bytes = w.sealed();
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return errorf(ErrorCode::IoError,
                          "writing '%s' failed (disk full?)", tmp.c_str());
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        return errorf(ErrorCode::IoError, "renaming '%s' -> '%s': %s",
                      tmp.c_str(), path.c_str(), ec.message().c_str());
    }
    return Status::ok();
}

Result<ShardManifest>
readManifestFile(const std::string &path, bool reclaimLeases)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return errorf(ErrorCode::IoError, "cannot open '%s'", path.c_str());
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    wire::Reader r(std::move(bytes));

    if (r.u64() != kManifestMagic || r.failed()) {
        return errorf(ErrorCode::Corrupt,
                      "'%s' is not a farm manifest (bad magic or CRC)",
                      path.c_str());
    }
    uint64_t version = r.u64();
    if (version < 1 || version > kManifestVersion) {
        return errorf(ErrorCode::Unsupported,
                      "'%s': unsupported manifest version %llu",
                      path.c_str(), (unsigned long long)version);
    }
    ShardManifest m;
    m.shard = static_cast<uint32_t>(r.u64());
    m.shards = static_cast<uint32_t>(r.u64());
    m.population = r.u64();
    m.sampleCount = r.u64();
    m.netlistFingerprint = r.u64();
    m.configFingerprint = r.u64();
    m.powerModelVersion = static_cast<uint32_t>(r.u64());
    m.coreName = r.str();
    m.workloadName = r.str();
    m.replayLength = static_cast<uint32_t>(r.u64());
    m.clockHz = r.f64();
    m.loader = static_cast<uint32_t>(r.u64());
    m.replayTimeoutCycles = r.u64();
    m.retryFaultySnapshots = static_cast<uint32_t>(r.u64());
    m.confidence = r.f64();
    m.minSurvivingSamples = r.u64();
    m.maxDroppedSnapshots = r.u64();
    m.stimulusFingerprint = version >= 3 ? r.u64() : 0;
    uint64_t count = r.u64();
    if (r.failed() || count > wire::kMaxDim) {
        return errorf(ErrorCode::Corrupt, "'%s': manifest corrupt",
                      path.c_str());
    }
    m.entries.resize(count);
    for (ManifestEntry &e : m.entries) {
        e.index = r.u64();
        e.cycle = r.u64();
        e.snapshotFile = r.str();
        e.key.hi = r.u64();
        e.key.lo = r.u64();
        uint64_t state = r.u64();
        if (state > static_cast<uint64_t>(EntryState::Quarantined)) {
            return errorf(ErrorCode::Corrupt,
                          "'%s': entry %llu has invalid state %llu",
                          path.c_str(), (unsigned long long)e.index,
                          (unsigned long long)state);
        }
        e.state = static_cast<EntryState>(state);
        e.injectedStallCycles = r.u64();
        e.leaseDeadlineUnixMs = version >= 2 ? r.u64() : 0;
        e.failStatus = static_cast<uint32_t>(r.u64());
        e.failAttempts = static_cast<uint32_t>(r.u64());
        e.failRetried = static_cast<uint32_t>(r.u64());
        e.failMismatches = r.u64();
        e.failLoadSeconds = r.f64();
        e.failDetail = r.str();
        if (reclaimLeases && e.state == EntryState::Leased) {
            e.state = EntryState::Pending;
            e.leaseDeadlineUnixMs = 0;
        }
    }
    if (!r.atEnd()) {
        return errorf(ErrorCode::Corrupt,
                      "'%s': manifest truncated or has trailing bytes",
                      path.c_str());
    }
    if (m.shard >= m.shards) {
        return errorf(ErrorCode::Corrupt,
                      "'%s': shard %u out of range (of %u)", path.c_str(),
                      m.shard, m.shards);
    }
    return m;
}

} // namespace farm
} // namespace strober
