#include "farm/result_cache.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include <unistd.h>

#include "farm/wire.h"
#include "util/logging.h"

namespace strober {
namespace farm {

namespace fs = std::filesystem;
using util::ErrorCode;
using util::errorf;
using util::Status;

namespace {

constexpr uint64_t kEntryMagic = 0x5354524252455331ull; // "STRBRES1"
constexpr uint32_t kEntryVersion = 1;
constexpr const char *kEntrySuffix = ".strbres";

/** FNV-1a over the key material, from a caller-chosen offset basis. */
uint64_t
foldKeyMaterial(uint64_t basis, const fame::SnapshotDigest &digest,
                uint64_t netlistFp, uint64_t configFp,
                uint32_t powerVersion, uint64_t stalls)
{
    uint64_t h = basis;
    auto fold = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (uint32_t c : digest.section)
        fold(c);
    fold(netlistFp);
    fold(configFp);
    fold(powerVersion);
    fold(stalls);
    return h;
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::string();
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

Status
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    // Unique temp per writer so concurrent farm workers storing the
    // same content-addressed entry never clobber each other mid-write;
    // the final rename is atomic and last-writer-wins over identical
    // bytes.
    static std::atomic<uint64_t> serial{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(serial.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return errorf(ErrorCode::IoError, "cannot create '%s'",
                          tmp.c_str());
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return errorf(ErrorCode::IoError,
                          "writing '%s' failed (disk full?)", tmp.c_str());
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        return errorf(ErrorCode::IoError, "renaming '%s' -> '%s': %s",
                      tmp.c_str(), path.c_str(), ec.message().c_str());
    }
    return Status::ok();
}

} // namespace

std::string
CacheKey::hex() const
{
    char out[33];
    std::snprintf(out, sizeof(out), "%016llx%016llx",
                  (unsigned long long)hi, (unsigned long long)lo);
    return out;
}

std::optional<CacheKey>
CacheKey::fromHex(const std::string &hex)
{
    if (hex.size() != 32 ||
        hex.find_first_not_of("0123456789abcdef") != std::string::npos)
        return std::nullopt;
    CacheKey key;
    key.hi = std::strtoull(hex.substr(0, 16).c_str(), nullptr, 16);
    key.lo = std::strtoull(hex.substr(16).c_str(), nullptr, 16);
    return key;
}

uint64_t
replayConfigFingerprint(const core::EnergySimulator::Config &cfg)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto fold = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    fold(cfg.replayLength);
    uint64_t clockBits;
    static_assert(sizeof(clockBits) == sizeof(cfg.clockHz));
    std::memcpy(&clockBits, &cfg.clockHz, sizeof(clockBits));
    fold(clockBits);
    fold(static_cast<uint64_t>(cfg.loader));
    fold(cfg.replayTimeoutCycles);
    fold(cfg.retryFaultySnapshots ? 1 : 0);
    // Trace-stimulus identity: generated workloads fold 0, preserving
    // every pre-trace fingerprint; trace runs can never alias them.
    if (cfg.stimulusFingerprint != 0)
        fold(cfg.stimulusFingerprint);
    return h;
}

CacheKey
makeCacheKey(const fame::SnapshotDigest &digest, uint64_t netlistFingerprint,
             uint64_t configFingerprint, uint32_t powerModelVersion,
             uint64_t injectedStallCycles)
{
    CacheKey key;
    key.hi = foldKeyMaterial(0xcbf29ce484222325ull, digest,
                             netlistFingerprint, configFingerprint,
                             powerModelVersion, injectedStallCycles);
    key.lo = foldKeyMaterial(0x6c62272e07bb0142ull, digest,
                             netlistFingerprint, configFingerprint,
                             powerModelVersion, injectedStallCycles);
    return key;
}

ResultCache::ResultCache(std::string dir) : root(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec) {
        fatal("cannot create result-cache directory '%s': %s",
              root.c_str(), ec.message().c_str());
    }
}

std::string
ResultCache::entryPath(const CacheKey &key) const
{
    return (fs::path(root) / (key.hex() + kEntrySuffix)).string();
}

std::optional<core::ReplayRecord>
ResultCache::lookup(const CacheKey &key)
{
    std::string path = entryPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        ++counters.misses;
        return std::nullopt;
    }
    std::string bytes = readWholeFile(path);
    wire::Reader r(std::move(bytes));

    core::ReplayRecord rec;
    bool ok = true;
    ok = ok && r.u64() == kEntryMagic;
    ok = ok && r.u64() == kEntryVersion;
    if (ok) {
        rec.outcome.cycle = r.u64();
        rec.outcome.status =
            static_cast<core::SnapshotStatus>(r.u64() & 0xff);
        rec.outcome.attempts = static_cast<unsigned>(r.u64());
        rec.outcome.retriedOnAlternateLoader = r.u64() != 0;
        rec.outcome.mismatches = r.u64();
        rec.outcome.detail = r.str();
        rec.modeledLoadSeconds = r.f64();
        rec.totalWatts = r.f64();
        uint64_t groups = r.u64();
        ok = groups <= wire::kMaxDim;
        for (uint64_t i = 0; ok && i < groups; ++i) {
            std::string name = r.str();
            double watts = r.f64();
            rec.groups.emplace_back(std::move(name), watts);
        }
    }
    ok = ok && r.atEnd() &&
         rec.outcome.status == core::SnapshotStatus::Replayed;
    if (!ok) {
        // Corrupt / stale-format entry: delete it and degrade to a
        // miss — one recompute, never a wrong number, never a fault.
        ++counters.corruptEntries;
        ++counters.misses;
        warn("result cache entry %s is corrupt; treating as a miss",
             key.hex().c_str());
        fs::remove(path, ec);
        return std::nullopt;
    }
    rec.fromCache = true;
    ++counters.hits;
    return rec;
}

util::Status
ResultCache::store(const CacheKey &key, const core::ReplayRecord &rec)
{
    if (rec.outcome.status != core::SnapshotStatus::Replayed) {
        return errorf(ErrorCode::InvalidArgument,
                      "only verified replay results are cacheable; "
                      "'%s' outcomes always recompute",
                      core::snapshotStatusName(rec.outcome.status));
    }
    wire::Writer w;
    w.u64(kEntryMagic);
    w.u64(kEntryVersion);
    w.u64(rec.outcome.cycle);
    w.u64(static_cast<uint64_t>(rec.outcome.status));
    w.u64(rec.outcome.attempts);
    w.u64(rec.outcome.retriedOnAlternateLoader ? 1 : 0);
    w.u64(rec.outcome.mismatches);
    w.str(rec.outcome.detail);
    w.f64(rec.modeledLoadSeconds);
    w.f64(rec.totalWatts);
    w.u64(rec.groups.size());
    for (const auto &[name, watts] : rec.groups) {
        w.str(name);
        w.f64(watts);
    }
    Status st = writeFileAtomic(entryPath(key), w.sealed());
    if (st.isOk())
        ++counters.stores;
    return st;
}

size_t
ResultCache::entryCount() const
{
    size_t n = 0;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(root, ec)) {
        if (e.path().extension() == kEntrySuffix)
            ++n;
    }
    return n;
}

ResultCache::TrimResult
ResultCache::trim(const TrimPolicy &policy)
{
    struct Entry
    {
        fs::file_time_type mtime;
        uint64_t bytes;
        fs::path path;
    };
    std::vector<Entry> entries;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(root, ec)) {
        if (e.path().extension() != kEntrySuffix)
            continue;
        uint64_t sz = fs::file_size(e.path(), ec);
        if (ec)
            sz = 0;
        entries.push_back({fs::last_write_time(e.path(), ec), sz,
                           e.path()});
    }
    // Newest first: every limit retains from the front.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime > b.mtime;
              });

    TrimResult result;
    result.examined = entries.size();
    fs::file_time_type cutoff = fs::file_time_type::min();
    if (policy.maxAgeSeconds != 0) {
        cutoff = fs::file_time_type::clock::now() -
                 std::chrono::seconds(policy.maxAgeSeconds);
    }
    uint64_t keptBytes = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        bool evict = i >= policy.keepCount;
        evict = evict || (policy.maxAgeSeconds != 0 && e.mtime < cutoff);
        evict = evict || (policy.maxTotalBytes != 0 &&
                          keptBytes + e.bytes > policy.maxTotalBytes);
        if (!evict) {
            keptBytes += e.bytes;
            continue;
        }
        if (fs::remove(e.path, ec)) {
            ++result.evicted;
            result.bytesEvicted += e.bytes;
        } else {
            keptBytes += e.bytes; // still on disk; count it honestly
        }
    }
    result.bytesKept = keptBytes;
    counters.evictions += result.evicted;
    return result;
}

size_t
ResultCache::trim(size_t keep)
{
    TrimPolicy policy;
    policy.keepCount = keep;
    return trim(policy).evicted;
}

} // namespace farm
} // namespace strober
