#include "farm/report.h"

#include "util/logging.h"

namespace strober {
namespace farm {

std::string
renderReportDeterministic(const core::EnergyReport &rep)
{
    std::string out;
    out += strfmt("population %llu\n", (unsigned long long)rep.population);
    out += strfmt("snapshots %zu dropped %zu mismatches %llu\n",
                  rep.snapshots, rep.droppedSnapshots,
                  (unsigned long long)rep.replayMismatches);
    out += strfmt("valid %d degraded %d\n", rep.valid ? 1 : 0,
                  rep.degraded ? 1 : 0);
    // Deterministic by definition: false for every phased run and for
    // streamed runs without a CI bound, so streamed-vs-phased byte
    // comparison still holds. Wall clocks stay excluded.
    out += strfmt("early-stopped %d\n", rep.earlyStopped ? 1 : 0);
    out += strfmt("status %s\n", rep.statusMessage.c_str());
    out += strfmt("mean %.13a halfwidth %.13a confidence %.13a\n",
                  rep.averagePower.mean, rep.averagePower.halfWidth,
                  rep.averagePower.confidence);
    out += strfmt("modeled-load-seconds %.13a\n", rep.modeledLoadSeconds);
    for (const core::GroupEstimate &g : rep.groups) {
        out += strfmt("group %s mean %.13a halfwidth %.13a\n",
                      g.group.c_str(), g.power.mean, g.power.halfWidth);
    }
    for (const core::SnapshotOutcome &oc : rep.outcomes) {
        out += strfmt("outcome %zu cycle %llu %s attempts %u retried %d "
                      "mismatches %llu\n",
                      oc.index, (unsigned long long)oc.cycle,
                      core::snapshotStatusName(oc.status), oc.attempts,
                      oc.retriedOnAlternateLoader ? 1 : 0,
                      (unsigned long long)oc.mismatches);
    }
    return out;
}

int
reportExitCode(const core::EnergyReport &rep)
{
    if (!rep.valid)
        return 3;
    return rep.degraded || rep.replayMismatches ? 1 : 0;
}

} // namespace farm
} // namespace strober
