/**
 * @file
 * Tiny bounds-checked byte codec shared by the farm's on-disk artifacts
 * (result-cache entries, work-queue manifests). Little-endian integers,
 * length-prefixed strings, doubles as IEEE-754 bit patterns (so values
 * round-trip bit-exactly — the determinism guarantees depend on it),
 * and a trailing CRC-32 over the whole payload. Readers never throw and
 * never over-allocate: any truncation, bounds violation or CRC mismatch
 * surfaces as a sticky failure the caller maps to ErrorCode::Corrupt.
 */

#ifndef STROBER_FARM_WIRE_H
#define STROBER_FARM_WIRE_H

#include <cstdint>
#include <cstring>
#include <string>

#include "util/crc32.h"

namespace strober {
namespace farm {
namespace wire {

/** Sanity bound on any count or string length in a farm artifact. */
constexpr uint64_t kMaxDim = 1ull << 24;

class Writer
{
  public:
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<char>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf.append(s);
    }

    /** Payload plus the trailing CRC-32 — the bytes to write to disk. */
    std::string
    sealed() const
    {
        std::string out = buf;
        uint32_t crc = util::crc32(out.data(), out.size());
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<char>(crc >> (8 * i)));
        return out;
    }

  private:
    std::string buf;
};

class Reader
{
  public:
    /** Verifies and strips the trailing CRC; failed() if it mismatches. */
    explicit Reader(std::string bytes) : buf(std::move(bytes))
    {
        if (buf.size() < 4) {
            bad = true;
            return;
        }
        uint32_t stored = 0;
        for (int i = 0; i < 4; ++i) {
            stored |= static_cast<uint32_t>(
                          static_cast<uint8_t>(buf[buf.size() - 4 + i]))
                      << (8 * i);
        }
        buf.resize(buf.size() - 4);
        if (stored != util::crc32(buf.data(), buf.size()))
            bad = true;
    }

    uint64_t
    u64()
    {
        if (bad || pos + 8 > buf.size()) {
            bad = true;
            return 0;
        }
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[pos + i]))
                 << (8 * i);
        pos += 8;
        return v;
    }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        uint64_t len = u64();
        if (bad || len > kMaxDim || pos + len > buf.size()) {
            bad = true;
            return std::string();
        }
        std::string s = buf.substr(pos, len);
        pos += len;
        return s;
    }

    /** True once everything written has been consumed, with no error. */
    bool
    atEnd() const
    {
        return !bad && pos == buf.size();
    }

    bool failed() const { return bad; }

  private:
    std::string buf;
    size_t pos = 0;
    bool bad = false;
};

} // namespace wire
} // namespace farm
} // namespace strober

#endif // STROBER_FARM_WIRE_H
