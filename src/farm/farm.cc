#include "farm/farm.h"

#include <filesystem>
#include <unordered_map>
#include <unordered_set>

#include "core/job_control.h"
#include "gate/netlist.h"
#include "inject/fault_injector.h"
#include "power/power_analysis.h"
#include "util/env.h"
#include "util/logging.h"

namespace strober {
namespace farm {

namespace fs = std::filesystem;
using core::EnergyReport;
using core::ReplayRecord;
using core::ReplayUnit;
using core::SnapshotStatus;
using util::ErrorCode;
using util::errorf;
using util::Result;
using util::Status;

namespace {

constexpr const char *kManifestSuffix = ".strbfarm";

/** Same mapping gate-replay failures get inside replaySnapshot. */
SnapshotStatus
classifySnapshotFileError(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Corrupt:
      case ErrorCode::GeometryMismatch:
      case ErrorCode::LoadFailure:
        return SnapshotStatus::LoadFailed;
      default:
        return SnapshotStatus::ReplayError;
    }
}

} // namespace

// ---------------------------------------------------------------------------
// CachingReplayExecutor

void
CachingReplayExecutor::replayAll(const core::ReplayContext &ctx,
                                 const std::vector<ReplayUnit> &units,
                                 std::vector<ReplayRecord> &records)
{
    if (units.empty())
        return;
    uint64_t netFp = gate::netlistFingerprint(ctx.synth.netlist);
    uint64_t cfgFp = replayConfigFingerprint(ctx.cfg);

    // Serve what the cache already has; collect the rest for a normal
    // in-process batch replay.
    std::vector<CacheKey> keys(units.size());
    std::vector<bool> keyed(units.size(), false);
    std::vector<ReplayUnit> missUnits;
    std::vector<size_t> missSlots;
    for (size_t i = 0; i < units.size(); ++i) {
        uint64_t stalls = ctx.cfg.stallPlan
                              ? ctx.cfg.stallPlan->stallFor(units[i].index)
                              : 0;
        Result<fame::SnapshotDigest> digest =
            fame::snapshotDigest(ctx.chains, *units[i].snap);
        if (!digest.isOk()) {
            // Undigestible snapshot: replay it uncached — the replay
            // path owns the quarantine decision, not the cache.
            missUnits.push_back(units[i]);
            missSlots.push_back(i);
            continue;
        }
        keys[i] = makeCacheKey(*digest, netFp, cfgFp,
                               power::kPowerModelVersion, stalls);
        keyed[i] = true;
        std::optional<ReplayRecord> hit = store.lookup(keys[i]);
        if (hit) {
            hit->outcome.index = units[i].index;
            records[i] = std::move(*hit);
        } else {
            missUnits.push_back(units[i]);
            missSlots.push_back(i);
        }
    }

    if (missUnits.empty())
        return;
    std::vector<ReplayRecord> missRecords(missUnits.size());
    inner.replayAll(ctx, missUnits, missRecords);
    executed += missUnits.size();
    for (size_t k = 0; k < missUnits.size(); ++k) {
        size_t slot = missSlots[k];
        if (keyed[slot] && missRecords[k].outcome.replayed()) {
            Status st = store.store(keys[slot], missRecords[k]);
            if (!st.isOk()) {
                warn("result cache store failed (run continues uncached): "
                     "%s", st.toString().c_str());
            }
        }
        records[slot] = std::move(missRecords[k]);
    }
}

// ---------------------------------------------------------------------------
// Manifest <-> record failure round-trip

void
recordFailure(ManifestEntry &entry, const ReplayRecord &rec)
{
    const core::SnapshotOutcome &oc = rec.outcome;
    entry.failStatus = static_cast<uint32_t>(oc.status);
    entry.failAttempts = oc.attempts;
    entry.failRetried = oc.retriedOnAlternateLoader ? 1 : 0;
    entry.failMismatches = oc.mismatches;
    entry.failLoadSeconds = rec.modeledLoadSeconds;
    entry.failDetail = oc.detail;
}

ReplayRecord
failureRecord(const ManifestEntry &entry)
{
    ReplayRecord rec;
    rec.outcome.index = entry.index;
    rec.outcome.cycle = entry.cycle;
    rec.outcome.status =
        static_cast<SnapshotStatus>(entry.failStatus & 0xff);
    rec.outcome.attempts = entry.failAttempts;
    rec.outcome.retriedOnAlternateLoader = entry.failRetried != 0;
    rec.outcome.mismatches = entry.failMismatches;
    rec.outcome.detail = entry.failDetail;
    rec.modeledLoadSeconds = entry.failLoadSeconds;
    return rec;
}

// ---------------------------------------------------------------------------
// FarmOrchestrator

FarmOrchestrator::FarmOrchestrator(const rtl::Design &targetDesign,
                                   FarmConfig config)
    : target(targetDesign), cfg(std::move(config)),
      store(cfg.effectiveCacheDir()), fame(fame::fame1Transform(target)),
      chainMeta(fame.design)
{
    if (cfg.shards == 0)
        fatal("FarmConfig.shards must be at least 1");
}

void
FarmOrchestrator::buildAsicFlow()
{
    if (synth)
        return;
    synth = std::make_unique<gate::SynthesisResult>(gate::synthesize(target));
    placed = std::make_unique<gate::Placement>(gate::place(synth->netlist));
    match = std::make_unique<gate::MatchTable>(
        gate::matchDesigns(target, synth->netlist, synth->guide));
}

std::string
FarmOrchestrator::manifestPath(uint32_t shard) const
{
    return (fs::path(cfg.dir) / shardManifestName(shard)).string();
}

Status
FarmOrchestrator::checkCompatible(const ShardManifest &m)
{
    buildAsicFlow();
    uint64_t netFp = gate::netlistFingerprint(synth->netlist);
    if (m.netlistFingerprint != netFp) {
        return errorf(ErrorCode::GeometryMismatch,
                      "manifest was planned against a different netlist "
                      "(fingerprint %016llx, ours %016llx)",
                      (unsigned long long)m.netlistFingerprint,
                      (unsigned long long)netFp);
    }
    if (m.powerModelVersion != power::kPowerModelVersion) {
        return errorf(ErrorCode::Unsupported,
                      "manifest was planned against power model v%u "
                      "(ours v%u)",
                      m.powerModelVersion, power::kPowerModelVersion);
    }
    core::EnergySimulator::Config applied = cfg.sim;
    m.applyTo(applied);
    if (m.configFingerprint != replayConfigFingerprint(applied)) {
        return errorf(ErrorCode::Unsupported,
                      "manifest config mirror does not reproduce its own "
                      "fingerprint; manifest is stale or corrupt");
    }
    return Status::ok();
}

Status
FarmOrchestrator::plan(
    const std::vector<const fame::ReplayableSnapshot *> &snapshots,
    uint64_t population)
{
    buildAsicFlow();
    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    if (ec) {
        return errorf(ErrorCode::IoError,
                      "cannot create farm run directory '%s': %s",
                      cfg.dir.c_str(), ec.message().c_str());
    }

    uint64_t netFp = gate::netlistFingerprint(synth->netlist);
    uint64_t cfgFp = replayConfigFingerprint(cfg.sim);

    // Harvest completed work from a previous compatible run (resume):
    // only Done states carry over — quarantines always recompute, like
    // the cache's only-successes policy, so a transient fault of the
    // killed run never pins a stale quarantine.
    std::unordered_set<std::string> priorDone;
    std::vector<fs::path> staleManifests;
    for (const auto &de : fs::directory_iterator(cfg.dir, ec)) {
        if (de.path().extension() != kManifestSuffix)
            continue;
        staleManifests.push_back(de.path());
        Result<ShardManifest> prior =
            readManifestFile(de.path().string(), /*reclaimLeases=*/true);
        if (!prior.isOk()) {
            warn("ignoring unreadable prior manifest '%s': %s",
                 de.path().string().c_str(),
                 prior.status().toString().c_str());
            continue;
        }
        if (prior->netlistFingerprint != netFp ||
            prior->configFingerprint != cfgFp ||
            prior->powerModelVersion != power::kPowerModelVersion)
            continue; // design/config drift: replan from scratch
        for (const ManifestEntry &e : prior->entries) {
            if (e.state == EntryState::Done)
                priorDone.insert(e.key.hex());
        }
    }

    std::vector<ShardManifest> shards(cfg.shards);
    for (uint32_t k = 0; k < cfg.shards; ++k) {
        ShardManifest &m = shards[k];
        m.shard = k;
        m.shards = cfg.shards;
        m.population = population;
        m.sampleCount = snapshots.size();
        m.netlistFingerprint = netFp;
        m.configFingerprint = cfgFp;
        m.powerModelVersion = power::kPowerModelVersion;
        m.coreName = cfg.coreName;
        m.workloadName = cfg.workloadName;
        m.mirrorFrom(cfg.sim);
    }

    for (size_t i = 0; i < snapshots.size(); ++i) {
        ManifestEntry e;
        e.index = i;
        e.cycle = snapshots[i]->cycle();
        e.snapshotFile = strfmt("snap_%05zu.strb", i);
        // Always rewrite the snapshot file: heals any on-disk
        // corruption and keeps plan() idempotent.
        Status ws = fame::writeSnapshotFile(
            (fs::path(cfg.dir) / e.snapshotFile).string(), chainMeta,
            *snapshots[i]);
        if (!ws.isOk())
            return ws;
        Result<fame::SnapshotDigest> digest =
            fame::snapshotDigest(chainMeta, *snapshots[i]);
        if (!digest.isOk())
            return digest.status();
        e.injectedStallCycles =
            cfg.sim.stallPlan ? cfg.sim.stallPlan->stallFor(i) : 0;
        e.key = makeCacheKey(*digest, netFp, cfgFp,
                             power::kPowerModelVersion,
                             e.injectedStallCycles);
        if (priorDone.count(e.key.hex()))
            e.state = EntryState::Done;
        shards[i % cfg.shards].entries.push_back(std::move(e));
    }

    // Replace the queue atomically enough: stale manifests (e.g. from a
    // run with a different shard count) go first, then the new set is
    // written. A kill in between just means the next plan() starts from
    // an empty queue — completed results still live in the cache.
    for (const fs::path &p : staleManifests)
        fs::remove(p, ec);
    for (uint32_t k = 0; k < cfg.shards; ++k) {
        Status st = writeManifestFile(manifestPath(k), shards[k]);
        if (!st.isOk())
            return st;
    }
    return Status::ok();
}

ReplayRecord
FarmOrchestrator::replayEntry(gate::GateSimulator &gsim,
                              const ShardManifest &m,
                              const ManifestEntry &entry,
                              const core::EnergySimulator::Config &baseCfg,
                              uint64_t budget)
{
    (void)m;
    Result<fame::ReplayableSnapshot> snap = fame::readSnapshotFile(
        (fs::path(cfg.dir) / entry.snapshotFile).string(), chainMeta);
    if (!snap.isOk()) {
        // A bad snapshot *file* is a capture/storage fault of this
        // sample: quarantine it (exactly what estimate() does for a
        // corrupt in-memory snapshot), never abort the run.
        ReplayRecord rec;
        rec.outcome.index = entry.index;
        rec.outcome.cycle = entry.cycle;
        rec.outcome.status = classifySnapshotFileError(snap.status().code());
        rec.outcome.attempts = 1;
        rec.outcome.detail = snap.status().toString();
        return rec;
    }
    core::EnergySimulator::Config local = baseCfg;
    inject::StallPlan stalls;
    if (entry.injectedStallCycles) {
        stalls.stallSnapshot(entry.index, entry.injectedStallCycles);
        local.stallPlan = &stalls;
    } else {
        local.stallPlan = nullptr;
    }
    core::ReplayContext ctx{target, *synth,   *placed, *match,
                            chainMeta, local, budget};
    ReplayUnit unit{static_cast<size_t>(entry.index), &*snap};
    ++executed;
    return core::replaySnapshot(gsim, ctx, unit);
}

Status
FarmOrchestrator::workShard(unsigned shard)
{
    buildAsicFlow();
    Result<ShardManifest> mr =
        readManifestFile(manifestPath(shard), /*reclaimLeases=*/true);
    if (!mr.isOk())
        return mr.status();
    ShardManifest m = std::move(*mr);
    if (m.shard != shard) {
        return errorf(ErrorCode::Corrupt,
                      "'%s' claims to be shard %u, expected %u",
                      manifestPath(shard).c_str(), m.shard, shard);
    }
    Status compat = checkCompatible(m);
    if (!compat.isOk())
        return compat;

    core::EnergySimulator::Config applied = cfg.sim;
    m.applyTo(applied);
    uint64_t budget = core::resolveReplayBudget(applied, *synth);
    gate::GateSimulator gsim(synth->netlist);

    core::JobControl *job = cfg.sim.job;

    // Drain our own shard: lease → cache-or-replay → publish → done.
    // One atomic manifest write per state change; a SIGKILL leaves at
    // most one entry Leased, which the next reader reclaims (on resume,
    // or by lease expiry while the run is still live).
    for (ManifestEntry &e : m.entries) {
        if (e.state == EntryState::Done ||
            e.state == EntryState::Quarantined)
            continue;
        // Graceful drain: stop before taking new work. Everything not
        // yet leased stays Pending; the queue on disk already says so.
        if (job != nullptr && job->canceled())
            return Status::ok();
        e.state = EntryState::Leased;
        e.leaseDeadlineUnixMs = util::nowUnixMs() + cfg.leaseDurationMs;
        Status st = writeManifestFile(manifestPath(shard), m);
        if (!st.isOk())
            return st;

        if (cfg.entryHook)
            cfg.entryHook(shard, e);
        if (job != nullptr && job->canceled()) {
            // Drain arrived after the lease was persisted: checkpoint
            // by reverting it to Pending — never a quarantine, so the
            // resumed run replays it and reports bit-identically.
            e.state = EntryState::Pending;
            e.leaseDeadlineUnixMs = 0;
            return writeManifestFile(manifestPath(shard), m);
        }

        if (store.lookup(e.key)) {
            e.state = EntryState::Done; // stolen or previous-run result
        } else {
            ReplayRecord rec = replayEntry(gsim, m, e, applied, budget);
            if (rec.outcome.replayed()) {
                Status ss = store.store(e.key, rec);
                if (ss.isOk()) {
                    e.state = EntryState::Done;
                } else {
                    // Unpublishable result: leave the entry pending so
                    // the collector replays it inline rather than
                    // trusting a result nobody can read back.
                    warn("shard %u: cannot publish result for snapshot "
                         "%llu: %s",
                         shard, (unsigned long long)e.index,
                         ss.toString().c_str());
                    e.state = EntryState::Pending;
                }
            } else {
                e.state = EntryState::Quarantined;
                recordFailure(e, rec);
            }
        }
        st = writeManifestFile(manifestPath(shard), m);
        if (!st.isOk())
            return st;
    }

    // Work stealing: replay other shards' pending entries — plus
    // entries whose lease has expired on the wall clock (their worker
    // is dead or wedged; waiting for it would serialize the farm on
    // its corpse) — publishing to the content-addressed cache ONLY.
    // The owner (or the collector) observes the hit and marks the
    // entry done — no manifest is ever written by a non-owner, so
    // there is nothing to race on. Note the expiry demotion here is
    // in-memory only: if the leaseholder is merely slow and finishes
    // anyway, both workers store the same content-addressed bytes.
    for (uint32_t other = 0; other < m.shards; ++other) {
        if (other == shard)
            continue;
        if (job != nullptr && job->canceled())
            return Status::ok();
        Result<ShardManifest> omr =
            readManifestFile(manifestPath(other), /*reclaimLeases=*/false);
        if (!omr.isOk())
            continue; // mid-rewrite or missing; its owner handles it
        if (!checkCompatible(*omr).isOk())
            continue;
        reclaimLeases(*omr, util::nowUnixMs());
        for (const ManifestEntry &e : omr->entries) {
            if (e.state != EntryState::Pending)
                continue;
            if (job != nullptr && job->canceled())
                return Status::ok();
            if (store.lookup(e.key))
                continue;
            ReplayRecord rec = replayEntry(gsim, *omr, e, applied, budget);
            if (rec.outcome.replayed()) {
                Status ss = store.store(e.key, rec);
                if (!ss.isOk()) {
                    warn("work steal: cannot publish result for snapshot "
                         "%llu: %s",
                         (unsigned long long)e.index,
                         ss.toString().c_str());
                }
            }
            // Failures are not recorded anywhere: the owner will replay
            // the entry itself and reach the same (deterministic)
            // quarantine verdict with the authority to record it.
        }
    }
    return Status::ok();
}

Result<std::vector<ShardManifest>>
FarmOrchestrator::loadAllManifests(bool reclaimLeases) const
{
    Result<ShardManifest> head =
        readManifestFile(manifestPath(0), reclaimLeases);
    if (!head.isOk())
        return head.status();
    uint32_t shardCount = head->shards;
    std::vector<ShardManifest> all;
    all.push_back(std::move(*head));
    for (uint32_t k = 1; k < shardCount; ++k) {
        Result<ShardManifest> mr =
            readManifestFile(manifestPath(k), reclaimLeases);
        if (!mr.isOk())
            return mr.status();
        if (mr->shard != k || mr->shards != shardCount ||
            mr->sampleCount != all[0].sampleCount ||
            mr->netlistFingerprint != all[0].netlistFingerprint ||
            mr->configFingerprint != all[0].configFingerprint) {
            return errorf(ErrorCode::Corrupt,
                          "shard manifests disagree ('%s' is not from "
                          "the same run as shard 0)",
                          manifestPath(k).c_str());
        }
        all.push_back(std::move(*mr));
    }
    return all;
}

Result<EnergyReport>
FarmOrchestrator::collect()
{
    buildAsicFlow();
    Result<std::vector<ShardManifest>> all =
        loadAllManifests(/*reclaimLeases=*/true);
    if (!all.isOk())
        return all.status();
    for (const ShardManifest &m : *all) {
        Status compat = checkCompatible(m);
        if (!compat.isOk())
            return compat;
    }

    const ShardManifest &head = (*all)[0];
    core::EnergySimulator::Config applied = cfg.sim;
    head.applyTo(applied);
    uint64_t budget = core::resolveReplayBudget(applied, *synth);

    size_t total = head.sampleCount;
    std::vector<ReplayRecord> records(total);
    std::vector<bool> filled(total, false);
    std::unique_ptr<gate::GateSimulator> gsim; // only if something is left

    for (ShardManifest &m : *all) {
        bool dirty = false;
        for (ManifestEntry &e : m.entries) {
            if (e.index >= total || filled[e.index]) {
                return errorf(ErrorCode::Corrupt,
                              "manifest entry index %llu is out of range "
                              "or duplicated",
                              (unsigned long long)e.index);
            }
            ReplayRecord rec;
            if (e.state == EntryState::Quarantined) {
                rec = failureRecord(e);
            } else {
                std::optional<ReplayRecord> hit = store.lookup(e.key);
                if (hit) {
                    rec = std::move(*hit);
                    rec.outcome.index = e.index;
                } else {
                    // Unfinished entry, or a Done entry whose cache file
                    // was lost/corrupted: replay inline. One recompute,
                    // never a wrong number.
                    if (cfg.sim.job != nullptr && cfg.sim.job->canceled()) {
                        // Drain mid-collect: persist the Done markings
                        // observed so far, then checkpoint. The next
                        // collect() resumes from the cache and produces
                        // the bit-identical report.
                        if (dirty)
                            writeManifestFile(manifestPath(m.shard), m);
                        return errorf(ErrorCode::Canceled,
                                      "collect drained before snapshot "
                                      "%llu; run is checkpointed",
                                      (unsigned long long)e.index);
                    }
                    if (!gsim) {
                        gsim = std::make_unique<gate::GateSimulator>(
                            synth->netlist);
                    }
                    rec = replayEntry(*gsim, m, e, applied, budget);
                    if (rec.outcome.replayed()) {
                        Status ss = store.store(e.key, rec);
                        if (!ss.isOk()) {
                            warn("collect: cannot publish result for "
                                 "snapshot %llu: %s",
                                 (unsigned long long)e.index,
                                 ss.toString().c_str());
                        }
                    } else {
                        e.state = EntryState::Quarantined;
                        recordFailure(e, rec);
                        dirty = true;
                    }
                }
                if (rec.outcome.replayed() &&
                    e.state != EntryState::Done) {
                    e.state = EntryState::Done;
                    dirty = true;
                }
            }
            records[e.index] = std::move(rec);
            filled[e.index] = true;
        }
        if (dirty) {
            Status st = writeManifestFile(manifestPath(m.shard), m);
            if (!st.isOk()) {
                warn("collect: cannot update manifest '%s': %s",
                     manifestPath(m.shard).c_str(),
                     st.toString().c_str());
            }
        }
    }
    for (size_t i = 0; i < total; ++i) {
        if (!filled[i]) {
            return errorf(ErrorCode::Corrupt,
                          "work queue lost snapshot %zu (no manifest "
                          "entry); re-plan the run",
                          i);
        }
    }

    EnergyReport report = core::aggregateReplayRecords(
        std::move(records), head.population, applied);
    return report;
}

Result<FarmOrchestrator::Progress>
FarmOrchestrator::progress() const
{
    Result<std::vector<ShardManifest>> all =
        loadAllManifests(/*reclaimLeases=*/false);
    if (!all.isOk())
        return all.status();
    Progress p;
    p.shards = static_cast<uint32_t>(all->size());
    for (const ShardManifest &m : *all) {
        p.pending += m.count(EntryState::Pending);
        p.leased += m.count(EntryState::Leased);
        p.done += m.count(EntryState::Done);
        p.quarantined += m.count(EntryState::Quarantined);
        p.total += m.entries.size();
    }
    return p;
}

} // namespace farm
} // namespace strober
