/**
 * @file
 * Durable sharded work queue for replay-farm runs.
 *
 * A farm run's unit of work is one snapshot replay. The queue is a set
 * of per-shard manifest files ("shard_<k>.strbfarm") inside the run
 * directory: shard k's manifest lists the entries shard k owns, each
 * with its lifecycle state (pending → leased → done | quarantined), the
 * snapshot file it replays, and its content-address in the result
 * cache. Every state change rewrites the owning shard's manifest
 * atomically (write-to-temp-then-rename, like snapshot v2), so a
 * SIGKILL at any instant leaves every manifest either old or new —
 * never torn — and a resumed run redoes at most the replays that were
 * in flight.
 *
 * Lease discipline: a lease is only meaningful while its worker lives.
 * Loading a manifest with reclaimLeases=true (what `run` does on
 * resume) demotes Leased back to Pending. Work stealing is built on the
 * cache, not on manifest writes: a worker that drains its own shard
 * replays other shards' pending entries and publishes the results to
 * the content-addressed cache only — the owning shard (or the final
 * collector) later observes the hit and marks the entry done, so two
 * workers can never disagree about a result (it is content-addressed)
 * and no manifest is ever written by a non-owner.
 *
 * The manifest also records the replay-relevant config and design
 * fingerprints, so a detached `strober-farm worker` process can verify
 * it is replaying against the same world the run was planned for, and a
 * resumed run detects config/design drift and replans instead of mixing
 * incompatible results.
 */

#ifndef STROBER_FARM_MANIFEST_H
#define STROBER_FARM_MANIFEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/energy_sim.h"
#include "farm/result_cache.h"
#include "util/status.h"

namespace strober {
namespace farm {

/** Lifecycle of one snapshot replay in the queue. */
enum class EntryState : uint32_t
{
    Pending = 0,    //!< not yet replayed
    Leased = 1,     //!< a worker is (or was, if it died) replaying it
    Done = 2,       //!< verified result published to the cache
    Quarantined = 3 //!< replay failed after retry; outcome recorded
};

/** Stable lowercase name ("pending", "leased", ...). */
const char *entryStateName(EntryState state);

/** One snapshot replay owned by a shard. */
struct ManifestEntry
{
    uint64_t index = 0;       //!< position in the sampled population
    uint64_t cycle = 0;       //!< capture cycle of the snapshot
    std::string snapshotFile; //!< file name, relative to the run dir
    CacheKey key;             //!< content-address of its replay result
    EntryState state = EntryState::Pending;
    uint64_t injectedStallCycles = 0; //!< fault-injection plan (tests)
    /** Wall-clock expiry of a Leased entry (unix epoch ms). A lease
     *  past its deadline is presumed held by a wedged or dead worker:
     *  reclaimLeases() demotes it to Pending so peers can steal the
     *  work. 0 (manifest v1, or a lease taken without a duration)
     *  counts as already expired. Meaningless for non-Leased states. */
    uint64_t leaseDeadlineUnixMs = 0;

    // Recorded outcome for Quarantined entries (Done entries live in
    // the result cache; quarantines are per-run, not content, so they
    // are recorded here).
    uint32_t failStatus = 0;
    uint32_t failAttempts = 0;
    uint32_t failRetried = 0;
    uint64_t failMismatches = 0;
    double failLoadSeconds = 0; //!< modeled loader time spent before failing
    std::string failDetail;
};

/** One shard's slice of the work queue, plus the run's shared header. */
struct ShardManifest
{
    // --- Run header (identical across shards) ---------------------------
    uint32_t shard = 0;  //!< this shard's index
    uint32_t shards = 1; //!< total shard count of the run
    uint64_t population = 0;
    uint64_t sampleCount = 0; //!< total entries across all shards
    uint64_t netlistFingerprint = 0;
    uint64_t configFingerprint = 0;
    uint32_t powerModelVersion = 0;
    std::string coreName;     //!< for detached worker reconstruction
    std::string workloadName; //!< informational
    // Replay-relevant config mirror, so a detached worker replays with
    // exactly the planned knobs.
    uint32_t replayLength = 128;
    double clockHz = 1e9;
    uint32_t loader = 0;
    uint64_t replayTimeoutCycles = 0;
    uint32_t retryFaultySnapshots = 1;
    double confidence = 0.99;
    uint64_t minSurvivingSamples = 2;
    uint64_t maxDroppedSnapshots = UINT64_MAX;
    /** Trace-stimulus content hash (0 = generated workload). Part of
     *  the mirror so detached workers fold the same value into their
     *  replay cache keys (manifest v3+; reads as 0 from older files). */
    uint64_t stimulusFingerprint = 0;

    std::vector<ManifestEntry> entries;

    /** Apply the config mirror onto @p cfg (replay-relevant fields). */
    void applyTo(core::EnergySimulator::Config &cfg) const;
    /** Fill the mirror from @p cfg. */
    void mirrorFrom(const core::EnergySimulator::Config &cfg);

    /** Count entries in @p state. */
    size_t count(EntryState state) const;
};

/** Manifest file name of shard @p k ("shard_<k>.strbfarm"). */
std::string shardManifestName(uint32_t shard);

/** Atomically write @p manifest to @p path (temp + rename, CRC'd). */
util::Status writeManifestFile(const std::string &path,
                               const ShardManifest &manifest);

/**
 * Read a manifest written by writeManifestFile. Fails with Corrupt on
 * any integrity violation (bad magic/CRC, truncation, absurd counts) —
 * the caller replans from scratch instead of trusting a torn queue.
 * @p reclaimLeases demotes Leased entries to Pending (resume semantics).
 */
util::Result<ShardManifest> readManifestFile(const std::string &path,
                                             bool reclaimLeases);

/**
 * Demote every Leased entry whose lease deadline has passed (deadline
 * <= @p nowUnixMs, with 0 = unknown counting as expired) back to
 * Pending, so live peers can steal work a wedged worker sat on without
 * waiting for process exit. Live leases (deadline strictly in the
 * future) are untouched. Returns the number of leases reclaimed; the
 * caller persists the manifest if it cares.
 */
size_t reclaimLeases(ShardManifest &manifest, uint64_t nowUnixMs);

} // namespace farm
} // namespace strober

#endif // STROBER_FARM_MANIFEST_H
