/**
 * @file
 * Content-addressed store of per-snapshot replay results.
 *
 * A gate-level replay is a pure function of (snapshot content, gate
 * netlist, replay-relevant config, power model). The cache key hashes
 * exactly those inputs — the snapshot's serialized section CRCs
 * (fame::SnapshotDigest), gate::netlistFingerprint, the replay-relevant
 * EnergySimulator::Config fields, and power::kPowerModelVersion — so a
 * hit is guaranteed to be the bit-identical record a fresh replay would
 * produce, and any change to design, config or model misses cleanly.
 *
 * Entries live one-per-file in a directory ("<keyhex>.strbres"), each
 * CRC-protected and written atomically (temp + rename). A corrupt,
 * truncated or wrong-version entry is *detected and treated as a miss*
 * — it costs one recompute, never a wrong number and never a
 * quarantined snapshot (tests/test_faults.cc poisons entries to prove
 * it). Only successfully replayed (verified) results are stored:
 * failures always recompute, so a transient fault can never be
 * laundered into a persistent quarantine.
 */

#ifndef STROBER_FARM_RESULT_CACHE_H
#define STROBER_FARM_RESULT_CACHE_H

#include <cstdint>
#include <optional>
#include <string>

#include "core/replay_executor.h"
#include "fame/snapshot_io.h"
#include "util/status.h"

namespace strober {
namespace farm {

/** 128-bit content-address of one replay result. */
struct CacheKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    /** 32 lowercase hex chars; the cache entry's file stem. */
    std::string hex() const;
    /** Parse hex(); empty optional on malformed input. */
    static std::optional<CacheKey> fromHex(const std::string &hex);

    bool operator==(const CacheKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
};

/**
 * Fingerprint of the EnergySimulator::Config fields a per-snapshot
 * replay result depends on (replay length, loader, clock, watchdog,
 * retry policy). Aggregation-level knobs (confidence, floors/ceilings)
 * are deliberately excluded: changing them re-aggregates cached records
 * without re-replaying anything — that is the incremental-re-estimation
 * path.
 */
uint64_t replayConfigFingerprint(const core::EnergySimulator::Config &cfg);

/** Derive the content address of one snapshot's replay result. */
CacheKey makeCacheKey(const fame::SnapshotDigest &digest,
                      uint64_t netlistFingerprint,
                      uint64_t configFingerprint,
                      uint32_t powerModelVersion,
                      uint64_t injectedStallCycles = 0);

/** On-disk result store; every method is safe to call concurrently from
 *  multiple processes (atomic writes, idempotent content). */
class ResultCache
{
  public:
    /** Opens (and creates if needed) the store at @p dir. */
    explicit ResultCache(std::string dir);

    const std::string &directory() const { return root; }

    /**
     * Look up @p key. A valid entry returns the stored record (with
     * fromCache set; outcome.index is NOT meaningful — callers assign
     * their own). Absent entries are misses; corrupt entries are
     * removed, counted, and reported as misses.
     */
    std::optional<core::ReplayRecord> lookup(const CacheKey &key);

    /**
     * Store a record under @p key (atomic write). Only Replayed
     * outcomes are accepted; anything else fails with InvalidArgument.
     */
    util::Status store(const CacheKey &key, const core::ReplayRecord &rec);

    /** Path the entry for @p key lives at (whether or not it exists). */
    std::string entryPath(const CacheKey &key) const;

    /** Number of entries currently on disk. */
    size_t entryCount() const;

    /**
     * Garbage-collection policy: an entry survives only if it passes
     * *every* enabled limit. Retention is always newest-first (by
     * mtime; a cache hit does not touch mtime, so "age" is time since
     * the result was computed).
     */
    struct TrimPolicy
    {
        /** Keep at most this many entries (SIZE_MAX = unlimited). */
        size_t keepCount = SIZE_MAX;
        /** Evict entries older than this many seconds (0 = no limit). */
        uint64_t maxAgeSeconds = 0;
        /** Evict oldest entries until the total size of what remains
         *  fits this budget in bytes (0 = no budget). */
        uint64_t maxTotalBytes = 0;
    };

    struct TrimResult
    {
        size_t examined = 0;      //!< entries present before the trim
        size_t evicted = 0;       //!< entries removed
        uint64_t bytesEvicted = 0;
        uint64_t bytesKept = 0;   //!< total size of surviving entries
    };

    /** Garbage-collect per @p policy; bumps Stats::evictions. */
    TrimResult trim(const TrimPolicy &policy);

    /**
     * Garbage-collect: keep the @p keep most-recently-modified entries,
     * delete the rest. @return number of entries removed.
     */
    size_t trim(size_t keep);

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;         //!< absent entries
        uint64_t corruptEntries = 0; //!< detected + degraded to miss
        uint64_t stores = 0;
        uint64_t evictions = 0;      //!< entries removed by trim()
    };
    const Stats &stats() const { return counters; }

  private:
    std::string root;
    Stats counters;
};

} // namespace farm
} // namespace strober

#endif // STROBER_FARM_RESULT_CACHE_H
