/**
 * @file
 * Deterministic report rendering and the CLI/service exit-code
 * convention, shared by `strober-farm`, the `strober-serve` daemon and
 * the test suites (they compare report files with `cmp`, so rendering
 * must be byte-stable across runs, workers, caches and kill histories).
 */

#ifndef STROBER_FARM_REPORT_H
#define STROBER_FARM_REPORT_H

#include <string>

#include "core/energy_sim.h"

namespace strober {
namespace farm {

/**
 * Deterministic text rendering of a report. Doubles are printed as
 * %.13a hex-floats, so two bit-identical reports produce byte-identical
 * files and `cmp` is a sufficient bit-identity check (the CI
 * kill/resume and service smoke tests rely on this). Wall-clock times
 * and cache hit/miss counts are deliberately excluded: they
 * legitimately differ between cold, warm and resumed runs while the
 * *estimate* must not.
 */
std::string renderReportDeterministic(const core::EnergyReport &rep);

/**
 * Exit-code convention shared by `strober run`, `strober-farm` and the
 * daemon's client mode: 0 clean estimate, 1 degraded-but-valid,
 * 3 invalid estimate. (2 = usage error, 4 = admission refused /
 * draining, 5 = wait timeout are assigned by the CLIs themselves.)
 */
int reportExitCode(const core::EnergyReport &rep);

} // namespace farm
} // namespace strober

#endif // STROBER_FARM_REPORT_H
