#include "farm/stream.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <thread>

#include "core/job_control.h"
#include "farm/farm.h"
#include "farm/manifest.h"
#include "farm/wire.h"
#include "gate/netlist.h"
#include "inject/fault_injector.h"
#include "power/power_analysis.h"
#include "stats/sampling.h"
#include "util/env.h"
#include "util/logging.h"

namespace strober {
namespace farm {

namespace fs = std::filesystem;
using core::ReplayRecord;
using core::ReplayUnit;
using util::ErrorCode;
using util::errorf;
using util::Result;
using util::Status;

namespace {

constexpr const char *kEntrySuffix = ".strbent";
constexpr const char *kMetaName = "meta.strbfarm";
constexpr const char *kDoneName = "done.strbdone";
constexpr const char *kPlanName = "plan.strbdone";
constexpr uint64_t kEntryVersion = 1;

std::string
tombName(uint64_t slot, uint64_t generation)
{
    return strfmt("tomb_%05llu_%06llu", (unsigned long long)slot,
                  (unsigned long long)generation);
}

/** Atomic temp + rename write, same discipline as the manifests. */
Status
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return errorf(ErrorCode::IoError, "cannot open '%s' for write",
                          tmp.c_str());
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return errorf(ErrorCode::IoError,
                          "writing '%s' failed (disk full?)", tmp.c_str());
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        return errorf(ErrorCode::IoError, "cannot rename '%s' -> '%s': %s",
                      tmp.c_str(), path.c_str(), ec.message().c_str());
    }
    return Status::ok();
}

Result<std::string>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return errorf(ErrorCode::IoError, "cannot open '%s'", path.c_str());
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad())
        return errorf(ErrorCode::IoError, "read of '%s' failed",
                      path.c_str());
    return bytes;
}

Result<StreamFeed::LiveEntry>
parseEntryFile(const std::string &path)
{
    Result<std::string> bytes = readFileBytes(path);
    if (!bytes.isOk())
        return bytes.status();
    wire::Reader r(std::move(*bytes));
    StreamFeed::LiveEntry e;
    uint64_t version = r.u64();
    e.seq = r.u64();
    e.slot = r.u64();
    e.generation = r.u64();
    e.cycle = r.u64();
    e.stallCycles = r.u64();
    e.snapshotFile = r.str();
    std::string keyHex = r.str();
    if (r.failed() || !r.atEnd() || version != kEntryVersion) {
        return errorf(ErrorCode::Corrupt, "stream entry '%s' is corrupt",
                      path.c_str());
    }
    std::optional<CacheKey> key = CacheKey::fromHex(keyHex);
    if (!key) {
        return errorf(ErrorCode::Corrupt,
                      "stream entry '%s' has a malformed cache key",
                      path.c_str());
    }
    e.key = *key;
    return e;
}

} // namespace

std::string
streamDir(const std::string &runDir)
{
    return (fs::path(runDir) / "stream").string();
}

std::string
streamMetaPath(const std::string &runDir)
{
    return (fs::path(streamDir(runDir)) / kMetaName).string();
}

Status
writePlanMarker(const std::string &runDir)
{
    wire::Writer w;
    w.u64(kEntryVersion);
    return writeFileAtomic(
        (fs::path(streamDir(runDir)) / kPlanName).string(), w.sealed());
}

bool
planMarkerExists(const std::string &runDir)
{
    std::error_code ec;
    return fs::exists(fs::path(streamDir(runDir)) / kPlanName, ec);
}

// ---------------------------------------------------------------------------
// StreamFeed (producer)

StreamFeed::StreamFeed(std::string streamDirPath,
                       const fame::ScanChains &chains,
                       const core::EnergySimulator::Config &simCfg,
                       uint64_t netFp, uint64_t cfgFp)
    : dir(std::move(streamDirPath)), chainMeta(chains), sim(simCfg),
      netlistFp(netFp), configFp(cfgFp)
{
}

void
StreamFeed::gauge(int64_t delta)
{
    if (inFlightHook)
        inFlightHook(delta);
}

void
StreamFeed::onSnapshotReady(size_t slot, uint64_t generation,
                            std::shared_ptr<const fame::ReplayableSnapshot>
                                snap)
{
    LiveEntry e;
    e.seq = nextSeq++;
    e.slot = slot;
    e.generation = generation;
    e.cycle = snap->cycle();
    // Provisional stall keying by slot: the plan() phase keys by final
    // sample index, so under a fault-injection stall plan a shifted
    // entry simply misses and replays there — never a wrong record.
    e.stallCycles = sim.stallPlan ? sim.stallPlan->stallFor(slot) : 0;
    e.snapshotFile = strfmt("ssnap_%05llu_%06llu.strb",
                            (unsigned long long)slot,
                            (unsigned long long)generation);

    Result<fame::SnapshotDigest> digest =
        fame::snapshotDigest(chainMeta, *snap);
    Status ws = digest.isOk()
                    ? fame::writeSnapshotFile(
                          (fs::path(dir) / e.snapshotFile).string(),
                          chainMeta, *snap)
                    : digest.status();
    if (ws.isOk()) {
        e.key = makeCacheKey(*digest, netlistFp, configFp,
                             power::kPowerModelVersion, e.stallCycles);
        wire::Writer w;
        w.u64(kEntryVersion);
        w.u64(e.seq);
        w.u64(e.slot);
        w.u64(e.generation);
        w.u64(e.cycle);
        w.u64(e.stallCycles);
        w.str(e.snapshotFile);
        w.str(e.key.hex());
        ws = writeFileAtomic(
            (fs::path(dir) / strfmt("entry_%06llu%s",
                                    (unsigned long long)e.seq,
                                    kEntrySuffix))
                .string(),
            w.sealed());
    }
    if (!ws.isOk()) {
        if (firstError.isOk()) {
            warn("stream feed: publish failed, entry skipped (plan phase "
                 "will replay it): %s",
                 ws.toString().c_str());
            firstError = ws;
        }
        return;
    }
    ++publishedCount;
    live[slot] = std::move(e);
    gauge(+1);
}

void
StreamFeed::onSlotEvicted(size_t slot, uint64_t generation)
{
    auto it = live.find(slot);
    if (it == live.end() || it->second.generation != generation)
        return; // the evicted capture never made it into the feed
    Status ts = writeFileAtomic(
        (fs::path(dir) / tombName(slot, generation)).string(),
        std::string());
    if (!ts.isOk())
        warn("stream feed: cannot tombstone superseded entry: %s",
             ts.toString().c_str());
    bool hadResult = completed.erase(slot) != 0;
    live.erase(it);
    ++supersededCount;
    if (!hadResult)
        gauge(-1);
}

Status
StreamFeed::finish(bool earlyStop)
{
    wire::Writer w;
    w.u64(kEntryVersion);
    w.u64(earlyStop ? 1 : 0);
    return writeFileAtomic((fs::path(dir) / kDoneName).string(),
                           w.sealed());
}

size_t
StreamFeed::pollCompleted(ResultCache &store)
{
    for (const auto &kv : live) {
        if (completed.count(kv.first))
            continue;
        std::optional<ReplayRecord> hit = store.lookup(kv.second.key);
        if (hit) {
            hit->outcome.index = kv.first; // provisional; rewritten later
            hit->outcome.cycle = kv.second.cycle;
            completed[kv.first] = std::move(*hit);
            gauge(-1);
        }
    }
    return completed.size();
}

std::vector<ReplayRecord>
StreamFeed::completedRecords() const
{
    std::vector<ReplayRecord> out;
    out.reserve(completed.size());
    for (const auto &kv : completed)
        out.push_back(kv.second);
    for (size_t i = 0; i < out.size(); ++i)
        out[i].outcome.index = i;
    return out;
}

uint64_t
StreamFeed::outstanding() const
{
    return live.size() - completed.size();
}

bool
StreamFeed::ciBoundMet(ResultCache &store, double bound, double confidence,
                       uint64_t populationSize, size_t reservoirSize)
{
    if (bound <= 0)
        return false;
    size_t done = pollCompleted(store);
    size_t floor =
        std::max<size_t>(std::min<size_t>(30, reservoirSize), 2);
    if (done < floor)
        return false;
    stats::SampleStats power;
    for (const auto &kv : completed)
        power.add(kv.second.totalWatts);
    // The without-replacement CI needs the population to cover the
    // sample (Eq. 4's finite-population correction).
    if (populationSize < power.size())
        return false;
    stats::Estimate est = power.estimate(confidence, populationSize);
    return est.mean > 0 && est.relativeError() < bound;
}

// ---------------------------------------------------------------------------
// FarmOrchestrator streaming methods

Result<std::unique_ptr<StreamFeed>>
FarmOrchestrator::openStreamFeed()
{
    buildAsicFlow();
    std::string sdir = streamDir(cfg.dir);
    std::error_code ec;
    // A stale feed (a prior killed run's entries, done or plan marker)
    // would make fresh workers exit their drain instantly or race the
    // planner against old manifests — start from an empty directory.
    // The real results live in the content-addressed cache and survive.
    fs::remove_all(sdir, ec);
    ec.clear();
    fs::create_directories(sdir, ec);
    if (ec) {
        return errorf(ErrorCode::IoError,
                      "cannot create stream directory '%s': %s",
                      sdir.c_str(), ec.message().c_str());
    }
    uint64_t netFp = gate::netlistFingerprint(synth->netlist);
    uint64_t cfgFp = replayConfigFingerprint(cfg.sim);

    // Compatibility meta: a header-only shard manifest, so stream
    // workers verify design/config/power-model identity with the exact
    // machinery the manifest flow uses.
    ShardManifest meta;
    meta.shard = 0;
    meta.shards = cfg.shards;
    meta.population = 0;
    meta.sampleCount = 0;
    meta.netlistFingerprint = netFp;
    meta.configFingerprint = cfgFp;
    meta.powerModelVersion = power::kPowerModelVersion;
    meta.coreName = cfg.coreName;
    meta.workloadName = cfg.workloadName;
    meta.mirrorFrom(cfg.sim);
    Status st =
        writeManifestFile((fs::path(sdir) / kMetaName).string(), meta);
    if (!st.isOk())
        return st;

    return std::unique_ptr<StreamFeed>(
        new StreamFeed(sdir, chainMeta, cfg.sim, netFp, cfgFp));
}

Result<StreamDrainOutcome>
FarmOrchestrator::drainStream(unsigned slot, unsigned slots,
                              uint64_t pollMs, uint64_t metaWaitMs)
{
    buildAsicFlow();
    if (slots == 0)
        slots = 1;
    std::string sdir = streamDir(cfg.dir);
    std::string metaPath = (fs::path(sdir) / kMetaName).string();
    core::JobControl *job = cfg.sim.job;
    StreamDrainOutcome out;

    uint64_t metaDeadline = util::nowUnixMs() + metaWaitMs;
    while (!fs::exists(metaPath)) {
        if (job != nullptr && job->canceled()) {
            out.canceled = true;
            return out;
        }
        if (util::nowUnixMs() >= metaDeadline) {
            return errorf(ErrorCode::Timeout,
                          "stream meta '%s' did not appear within %llu ms",
                          metaPath.c_str(),
                          (unsigned long long)metaWaitMs);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(pollMs));
    }
    Result<ShardManifest> meta =
        readManifestFile(metaPath, /*reclaimLeases=*/false);
    if (!meta.isOk())
        return meta.status();
    Status compat = checkCompatible(*meta);
    if (!compat.isOk())
        return compat;

    core::EnergySimulator::Config applied = cfg.sim;
    meta->applyTo(applied);
    uint64_t budget = core::resolveReplayBudget(applied, *synth);
    std::unique_ptr<gate::GateSimulator> gsim;

    std::set<std::string> seen;
    std::vector<StreamFeed::LiveEntry> pending;
    std::string donePath = (fs::path(sdir) / kDoneName).string();

    auto tombstoned = [&](const StreamFeed::LiveEntry &e) {
        return fs::exists(fs::path(sdir) /
                          tombName(e.slot, e.generation));
    };

    for (;;) {
        if (job != nullptr && job->canceled()) {
            out.canceled = true;
            return out;
        }
        // Pick up the done marker first: entries observed after it was
        // written are still processed below (the producer wrote them
        // before the marker; directory iteration just found them late).
        if (!out.sawDoneMarker && fs::exists(donePath)) {
            Result<std::string> bytes = readFileBytes(donePath);
            if (bytes.isOk()) {
                wire::Reader r(std::move(*bytes));
                uint64_t version = r.u64();
                uint64_t early = r.u64();
                if (!r.failed() && r.atEnd() &&
                    version == kEntryVersion) {
                    out.sawDoneMarker = true;
                    out.earlyStop = early != 0;
                }
            }
        }

        size_t newEntries = 0;
        std::error_code ec;
        for (const auto &de : fs::directory_iterator(sdir, ec)) {
            if (de.path().extension() != kEntrySuffix)
                continue;
            std::string name = de.path().filename().string();
            if (seen.count(name))
                continue;
            seen.insert(name);
            ++newEntries;
            Result<StreamFeed::LiveEntry> e =
                parseEntryFile(de.path().string());
            if (!e.isOk()) {
                warn("stream drain: skipping bad entry '%s': %s",
                     name.c_str(), e.status().toString().c_str());
                continue;
            }
            pending.push_back(std::move(*e));
        }

        if (out.earlyStop) {
            // Adaptive termination: the producer has its estimate;
            // everything still pending is abandoned, not replayed.
            return out;
        }

        // Own partition first (seq % slots), then steal the rest —
        // workers sweep everything, so a dead peer only costs latency.
        std::stable_sort(pending.begin(), pending.end(),
                         [&](const StreamFeed::LiveEntry &a,
                             const StreamFeed::LiveEntry &b) {
                             bool aOwn = a.seq % slots == slot;
                             bool bOwn = b.seq % slots == slot;
                             if (aOwn != bOwn)
                                 return aOwn;
                             return a.seq < b.seq;
                         });
        for (StreamFeed::LiveEntry &e : pending) {
            if (job != nullptr && job->canceled()) {
                out.canceled = true;
                return out;
            }
            if (tombstoned(e)) {
                ++out.tombstoned;
                continue;
            }
            if (store.lookup(e.key)) {
                ++out.cacheHits;
                continue;
            }
            Result<fame::ReplayableSnapshot> snap = fame::readSnapshotFile(
                (fs::path(sdir) / e.snapshotFile).string(), chainMeta);
            if (!snap.isOk()) {
                // Torn or vanished (superseded and GC'd) snapshot file:
                // leave it to the plan phase, which owns quarantines.
                continue;
            }
            // Last-instant supersede check: a tombstone written while
            // we loaded the snapshot saves this replay entirely.
            if (tombstoned(e)) {
                ++out.tombstoned;
                continue;
            }
            core::EnergySimulator::Config local = applied;
            inject::StallPlan stalls;
            if (e.stallCycles) {
                stalls.stallSnapshot(e.slot, e.stallCycles);
                local.stallPlan = &stalls;
            } else {
                local.stallPlan = nullptr;
            }
            core::ReplayContext ctx{target,    *synth, *placed, *match,
                                    chainMeta, local,  budget};
            if (!gsim)
                gsim =
                    std::make_unique<gate::GateSimulator>(synth->netlist);
            ReplayUnit unit{static_cast<size_t>(e.slot), &*snap};
            ++executed;
            ReplayRecord rec = core::replaySnapshot(*gsim, ctx, unit);
            ++out.replayed;
            if (rec.outcome.replayed()) {
                Status ss = store.store(e.key, rec);
                if (!ss.isOk()) {
                    warn("stream drain: cannot publish result for slot "
                         "%llu: %s",
                         (unsigned long long)e.slot,
                         ss.toString().c_str());
                }
            }
            // Failures are not recorded: the plan phase replays the
            // entry with full authority and reaches the same
            // deterministic quarantine verdict.
        }
        pending.clear();

        if (out.sawDoneMarker && newEntries == 0)
            return out;
        std::this_thread::sleep_for(std::chrono::milliseconds(pollMs));
    }
}

Result<core::EnergyReport>
FarmOrchestrator::collectStreamEarly(StreamFeed &feed, uint64_t population)
{
    feed.pollCompleted(store);
    std::vector<ReplayRecord> records = feed.completedRecords();
    core::EnergyReport report = core::aggregateReplayRecords(
        std::move(records), std::max<uint64_t>(population, 1), cfg.sim);
    report.earlyStopped = true;
    report.supersededReplays =
        static_cast<size_t>(feed.superseded());
    return report;
}

} // namespace farm
} // namespace strober
