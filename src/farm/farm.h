/**
 * @file
 * Replay-farm orchestration (paper Section III-B: snapshot replays are
 * embarrassingly parallel, "run on multiple instances of gate-level
 * simulation in parallel" — in practice a pool of worker processes over
 * a shared filesystem).
 *
 * Two layers, both built on the determinism contract of
 * core::ReplayExecutor (records are a pure function of snapshot +
 * design + config, so the report is bit-identical however the work is
 * executed):
 *
 *  - CachingReplayExecutor: a drop-in Config::replayExecutor that
 *    consults a persistent content-addressed ResultCache before
 *    replaying. A warm re-estimate of an unchanged design performs ZERO
 *    gate-level replays and still produces the bit-identical report.
 *
 *  - FarmOrchestrator: a durable multi-process run. plan() snapshots
 *    the work into per-shard manifest files, workShard() is the worker
 *    loop (lease → cache-or-replay → publish → mark done, then steal
 *    from other shards), collect() assembles the final report. Every
 *    state change is an atomic file replace, so a SIGKILL at any
 *    instant costs at most the replays that were in flight; a resumed
 *    run reproduces the uninterrupted report bit-for-bit.
 */

#ifndef STROBER_FARM_FARM_H
#define STROBER_FARM_FARM_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/replay_executor.h"
#include "farm/manifest.h"
#include "farm/result_cache.h"
#include "fame/fame1.h"
#include "fame/sampler.h"
#include "util/status.h"

namespace strober {
namespace farm {

class StreamFeed;
struct StreamDrainOutcome;

/**
 * Cache-backed replay executor for EnergySimulator::estimate(). Misses
 * are replayed by the built-in in-process strided workers
 * (cfg.parallelReplays applies to the miss set), then verified results
 * are stored. Hits never change the numbers — the key covers every
 * replay-relevant input, so a hit IS the record a fresh replay would
 * produce.
 */
class CachingReplayExecutor : public core::ReplayExecutor
{
  public:
    explicit CachingReplayExecutor(std::string cacheDir)
        : store(std::move(cacheDir))
    {
    }

    const char *name() const override { return "caching"; }

    void replayAll(const core::ReplayContext &ctx,
                   const std::vector<core::ReplayUnit> &units,
                   std::vector<core::ReplayRecord> &records) override;

    /** Gate-level replays actually performed (0 on a fully warm cache). */
    uint64_t replaysExecuted() const { return executed; }

    ResultCache &cache() { return store; }
    const ResultCache::Stats &cacheStats() const { return store.stats(); }

  private:
    ResultCache store;
    core::InProcessReplayExecutor inner;
    uint64_t executed = 0;
};

/** Configuration of one farm run. */
struct FarmConfig
{
    std::string dir;      //!< run directory (manifests + snapshot files)
    std::string cacheDir; //!< result cache; empty = "<dir>/cache"
    unsigned shards = 1;  //!< work-queue shards (>= worker count is best)
    core::EnergySimulator::Config sim; //!< replay + aggregation knobs
    std::string coreName;              //!< design name (worker respawn)
    std::string workloadName;          //!< informational
    /** Wall-clock lease duration: a Leased entry whose deadline passes
     *  is presumed held by a dead or wedged worker, and peers reclaim
     *  it (steal phase) without waiting for the process to exit. Must
     *  comfortably exceed one replay's wall time. */
    uint64_t leaseDurationMs = 10 * 60 * 1000;
    /** Test hook: called right after an entry is leased, before its
     *  replay. Fault-injection tests raise signals here to probe the
     *  crash-only lifecycle at a deterministic point. */
    std::function<void(unsigned shard, const ManifestEntry &)> entryHook;

    /** The effective cache directory. */
    std::string effectiveCacheDir() const
    {
        return cacheDir.empty() ? dir + "/cache" : cacheDir;
    }
};

/**
 * Orchestrates a durable replay-farm run over one design. The same
 * object (or separate processes each holding one, pointed at the same
 * run directory) drives planning, working and collection.
 */
class FarmOrchestrator
{
  public:
    FarmOrchestrator(const rtl::Design &target, FarmConfig config);

    FarmOrchestrator(const FarmOrchestrator &) = delete;
    FarmOrchestrator &operator=(const FarmOrchestrator &) = delete;

    /**
     * Write the work queue: one snapshot file per sample plus one
     * manifest per shard (entries round-robin over shards). Snapshot
     * files are always rewritten (healing any corruption on disk);
     * completed entries of a previous compatible run — same design,
     * config and power-model fingerprints — keep their Done state, so
     * resuming a killed run redoes only unfinished work. Quarantined
     * entries are deliberately reset to Pending: failures always
     * recompute (mirroring the cache's only-successes policy), so a
     * transient fault never pins a stale quarantine.
     */
    util::Status plan(const std::vector<const fame::ReplayableSnapshot *>
                          &snapshots,
                      uint64_t population);

    /**
     * Worker loop for shard @p shard: lease each pending entry, serve
     * it from the cache or replay it, publish the result, mark the
     * entry done (or quarantined) — one atomic manifest write per state
     * change. After draining its own shard the worker steals other
     * shards' pending entries — plus entries whose lease deadline has
     * expired (a wedged peer) — publishing results to the cache only
     * (never writing a foreign manifest); owners and the collector
     * observe the hits. Fails if the manifest was planned against a
     * different design/config/power model.
     *
     * Honors cfg.sim.job: a cancel (drain) checkpoints — the in-flight
     * lease reverts to Pending and the call returns ok with the rest
     * of the queue untouched, so a later run resumes bit-identically.
     * A passed deadline turns remaining replays into deterministic
     * TimedOut quarantines (the job terminates with a degraded report).
     */
    util::Status workShard(unsigned shard);

    /**
     * Assemble the final report from the manifests and the cache,
     * replaying any entries that are still unfinished (or whose cache
     * entry was lost or corrupted) inline. Must run after the workers
     * have exited. The report is bit-identical to a plain in-process
     * estimate() of the same sample — for any shard count, worker
     * count, kill/resume history or cache state. A cancel via
     * cfg.sim.job checkpoints and returns ErrorCode::Canceled instead
     * of a report.
     */
    util::Result<core::EnergyReport> collect();

    // --- Streaming (src/farm/stream.h) ----------------------------------

    /**
     * Open the incremental work feed for a streamed run: creates the
     * stream directory and its compatibility meta file, and returns
     * the producer-side observer to install on the run's sampler.
     * Call before spawning stream workers (they wait for the meta).
     * The feed borrows this orchestrator's products; it must not
     * outlive it.
     */
    util::Result<std::unique_ptr<StreamFeed>> openStreamFeed();

    /**
     * Worker side: drain the stream feed, replaying every
     * non-tombstoned entry whose result is not already cached and
     * publishing to the cache ONLY (the work-stealing discipline — no
     * manifest exists yet). Entries are processed own-partition first
     * (seq % @p slots == @p slot), then the rest. Returns when the
     * done marker exists and everything is processed, when the marker
     * says the run stopped early, or on job cancel. Polls every
     * @p pollMs; gives up with DeadlineExceeded if the meta file does
     * not appear within @p metaWaitMs.
     */
    util::Result<StreamDrainOutcome> drainStream(unsigned slot,
                                                 unsigned slots,
                                                 uint64_t pollMs = 25,
                                                 uint64_t metaWaitMs =
                                                     60 * 1000);

    /**
     * Early-stop aggregation: build the report from the completed
     * subset of @p feed's live entries (the decision set the CI bound
     * was met on) instead of plan()/collect(). The report is marked
     * earlyStopped; its sample is whatever had finished when the bound
     * was crossed.
     */
    util::Result<core::EnergyReport> collectStreamEarly(StreamFeed &feed,
                                                        uint64_t population);

    /** Work-queue state summary (for `strober-farm status`). */
    struct Progress
    {
        uint64_t pending = 0;
        uint64_t leased = 0;
        uint64_t done = 0;
        uint64_t quarantined = 0;
        uint64_t total = 0;
        uint32_t shards = 0;
    };
    util::Result<Progress> progress() const;

    /** Gate-level replays this process performed (own + stolen). */
    uint64_t replaysExecuted() const { return executed; }

    ResultCache &cache() { return store; }
    const FarmConfig &config() const { return cfg; }

  private:
    const rtl::Design &target;
    FarmConfig cfg;
    ResultCache store;

    // Capture geometry (snapshots were captured from the FAME1 design).
    fame::Fame1Design fame;
    fame::ScanChains chainMeta;

    // Lazily-built ASIC-flow products (identical to EnergySimulator's).
    std::unique_ptr<gate::SynthesisResult> synth;
    std::unique_ptr<gate::Placement> placed;
    std::unique_ptr<gate::MatchTable> match;

    uint64_t executed = 0;

    void buildAsicFlow();
    std::string manifestPath(uint32_t shard) const;
    util::Result<std::vector<ShardManifest>>
    loadAllManifests(bool reclaimLeases) const;
    util::Status checkCompatible(const ShardManifest &m);
    core::ReplayRecord replayEntry(gate::GateSimulator &gsim,
                                   const ShardManifest &m,
                                   const ManifestEntry &entry,
                                   const core::EnergySimulator::Config &cfg,
                                   uint64_t budget);
};

/** Copy a failed replay's outcome into a manifest entry's fail fields. */
void recordFailure(ManifestEntry &entry, const core::ReplayRecord &rec);

/** Rebuild a quarantined outcome from a manifest entry's fail fields. */
core::ReplayRecord failureRecord(const ManifestEntry &entry);

} // namespace farm
} // namespace strober

#endif // STROBER_FARM_FARM_H
