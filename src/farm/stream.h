/**
 * @file
 * Incremental farm work feed: streams reservoir captures to worker
 * processes WHILE the fast simulation is still running, so gate-level
 * replay overlaps phase 1 instead of waiting for it (the multi-process
 * counterpart of src/core/streaming.h).
 *
 * Shard manifests keep their single-writer discipline — the stream
 * never appends to them. Instead the producer drops one small CRC'd
 * entry file per published capture into "<run dir>/stream/", workers
 * poll the directory and replay entries straight into the
 * content-addressed result cache (exactly the work-stealing publish
 * path: cache only, no manifest writes), and when the fast sim ends the
 * producer runs the ordinary plan() + workShard() + collect() flow —
 * which now finds the cache warm. Bit-identity and kill -9 resume
 * therefore hold *by construction*: the stream only changes when
 * results enter the cache, never what they contain.
 *
 * Reservoir replacement supersedes streamed work with a tombstone file:
 * workers skip tombstoned entries they have not replayed yet, and a
 * result already published for one stays in the cache — it is
 * content-addressed and valid for any future run that samples the same
 * interval, so cancellation never poisons the cache.
 *
 * Adaptive termination (--ci-bound) rides on the same feed: the
 * producer periodically polls the cache for completed live entries,
 * folds them into stats::SampleStats, and once the CI is tight enough
 * writes an "early" done marker (workers stop draining), skipping
 * plan/collect entirely in favor of aggregating the completed subset.
 */

#ifndef STROBER_FARM_STREAM_H
#define STROBER_FARM_STREAM_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/replay_executor.h"
#include "fame/sampler.h"
#include "farm/result_cache.h"
#include "util/status.h"

namespace strober {
namespace farm {

/** Stream feed subdirectory of a farm run directory. */
std::string streamDir(const std::string &runDir);

/** Path of the feed's compatibility meta file (a header-only shard
 *  manifest: core/workload names, shard count, fingerprints). Stream
 *  workers read it to reconstruct the design before any real manifest
 *  exists. */
std::string streamMetaPath(const std::string &runDir);

/**
 * Producer: written right after plan() succeeds on a streamed run.
 * Stream workers wait for this marker before entering the manifest
 * phase — the manifests on disk before it appears may belong to a
 * stale prior run, and touching them would race the planner's
 * single-writer rewrite.
 */
util::Status writePlanMarker(const std::string &runDir);

/** Worker: has the producer planned the manifests yet? */
bool planMarkerExists(const std::string &runDir);

/**
 * Producer half of the feed. Install on the run's SnapshotSampler via
 * setObserver(); every completed capture becomes a snapshot file plus
 * an entry file in the stream directory, every eviction a tombstone.
 * Single-threaded by design: all calls (observer callbacks, polls)
 * happen on the fast-sim thread. Publish failures are sticky-warned
 * and skipped — a missing stream entry only costs overlap, never
 * correctness (the plan() phase replays it normally).
 *
 * Created by FarmOrchestrator::openStreamFeed(); must not outlive the
 * orchestrator.
 */
class StreamFeed : public fame::SampleObserver
{
  public:
    /** One published, not-yet-superseded capture. */
    struct LiveEntry
    {
        uint64_t seq = 0;
        uint64_t slot = 0;
        uint64_t generation = 0;
        uint64_t cycle = 0;
        uint64_t stallCycles = 0;
        std::string snapshotFile; //!< relative to the stream dir
        CacheKey key;
    };

    /** Optional gauge hook (service Stats): +1 per publish, -1 per
     *  supersede, -1 when pollCompleted() first observes a result.
     *  The job executor zeroes whatever remains outstanding at exit. */
    std::function<void(int64_t)> inFlightHook;

    // fame::SampleObserver
    void onSnapshotReady(size_t slot, uint64_t generation,
                         std::shared_ptr<const fame::ReplayableSnapshot>
                             snap) override;
    void onSlotEvicted(size_t slot, uint64_t generation) override;

    /** Write the done marker. @p earlyStop tells draining workers to
     *  abandon unprocessed entries instead of finishing them. */
    util::Status finish(bool earlyStop);

    /**
     * Poll @p store for live entries that completed since the last
     * call; returns the total number of live entries with a known
     * result. Cheap per new completion (one cache lookup each);
     * already-known completions are not re-read.
     */
    size_t pollCompleted(ResultCache &store);

    /**
     * Replay records of the completed live entries, slot order,
     * outcome.index rewritten to the compacted position — the
     * early-stop aggregation input.
     */
    std::vector<core::ReplayRecord> completedRecords() const;

    /**
     * Adaptive-termination check (Config::earlyStopProbe body): poll
     * @p store for new completions, then evaluate the Section III-A
     * estimate over every completed live capture. True once at least
     * max(min(30, @p reservoirSize), 2) results exist (the Eq. 8
     * n >= 30 floor), the population covers the sample, the mean is
     * positive and relativeError() < @p bound. Callers throttle —
     * each call costs one cache lookup per outstanding entry.
     */
    bool ciBoundMet(ResultCache &store, double bound, double confidence,
                    uint64_t populationSize, size_t reservoirSize);

    uint64_t published() const { return publishedCount; }
    uint64_t superseded() const { return supersededCount; }
    /** Live entries with no known result yet (gauge bookkeeping). */
    uint64_t outstanding() const;
    /** First publish error, if any (the feed keeps going without the
     *  failed entries). */
    const util::Status &status() const { return firstError; }
    const std::string &directory() const { return dir; }

  private:
    friend class FarmOrchestrator;
    StreamFeed(std::string streamDirPath, const fame::ScanChains &chains,
               const core::EnergySimulator::Config &sim, uint64_t netFp,
               uint64_t cfgFp);

    void gauge(int64_t delta);

    std::string dir;
    const fame::ScanChains &chainMeta;
    const core::EnergySimulator::Config &sim;
    uint64_t netlistFp;
    uint64_t configFp;

    uint64_t nextSeq = 0;
    uint64_t publishedCount = 0;
    uint64_t supersededCount = 0;
    std::map<uint64_t, LiveEntry> live;                //!< by slot
    std::map<uint64_t, core::ReplayRecord> completed;  //!< by slot
    util::Status firstError = util::Status::ok();
};

/** What a worker's stream-drain pass observed. */
struct StreamDrainOutcome
{
    bool sawDoneMarker = false;
    bool earlyStop = false; //!< done marker said "early": no plan phase
    bool canceled = false;  //!< job cancel; feed may still be live
    uint64_t replayed = 0;
    uint64_t cacheHits = 0;
    uint64_t tombstoned = 0;
};

} // namespace farm
} // namespace strober

#endif // STROBER_FARM_STREAM_H
