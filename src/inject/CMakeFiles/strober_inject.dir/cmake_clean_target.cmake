file(REMOVE_RECURSE
  "libstrober_inject.a"
)
