file(REMOVE_RECURSE
  "CMakeFiles/strober_inject.dir/fault_injector.cc.o"
  "CMakeFiles/strober_inject.dir/fault_injector.cc.o.d"
  "libstrober_inject.a"
  "libstrober_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
