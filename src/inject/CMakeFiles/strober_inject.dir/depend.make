# Empty dependencies file for strober_inject.
# This may be replaced when dependencies are built.
