#include "inject/fault_injector.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace strober {
namespace inject {

using util::ErrorCode;

uint64_t
FaultRng::below(uint64_t bound)
{
    if (bound == 0)
        panic("FaultRng::below(0)");
    // Rejection-free modulo is fine here: injectors need determinism,
    // not statistical perfection.
    return next() % bound;
}

uint64_t
flipBitstreamBit(std::vector<uint64_t> &words, uint64_t totalBits,
                 uint64_t seed)
{
    if (totalBits == 0 || words.empty())
        panic("flipBitstreamBit on an empty bitstream");
    FaultRng rng(seed);
    uint64_t bitIdx = rng.below(std::min<uint64_t>(totalBits,
                                                   words.size() * 64));
    words[bitIdx / 64] ^= 1ull << (bitIdx % 64);
    return bitIdx;
}

uint64_t
flipSnapshotStateBit(fame::ReplayableSnapshot &snap,
                     const fame::ScanChains &chains, uint64_t seed)
{
    std::vector<uint64_t> words = chains.encode(snap.state);
    uint64_t bitIdx = flipBitstreamBit(words, chains.totalBits(), seed);
    uint64_t cycle = snap.state.cycle;
    snap.state = chains.decode(words);
    snap.state.cycle = cycle;
    return bitIdx;
}

namespace {

size_t
perturbTokenIn(std::vector<std::vector<uint64_t>> &trace, uint64_t seed,
               const char *what)
{
    FaultRng rng(seed);
    std::vector<size_t> candidates;
    for (size_t t = 0; t < trace.size(); ++t) {
        if (!trace[t].empty())
            candidates.push_back(t);
    }
    if (candidates.empty())
        panic("no %s tokens to perturb", what);
    size_t t = candidates[rng.below(candidates.size())];
    size_t port = rng.below(trace[t].size());
    trace[t][port] ^= 1ull;
    return t;
}

} // namespace

size_t
perturbInputToken(fame::ReplayableSnapshot &snap, uint64_t seed)
{
    return perturbTokenIn(snap.inputTrace, seed, "input");
}

size_t
perturbOutputToken(fame::ReplayableSnapshot &snap, uint64_t seed)
{
    return perturbTokenIn(snap.outputTrace, seed, "output");
}

const char *
fileFaultName(FileFault kind)
{
    switch (kind) {
      case FileFault::BitFlip:
        return "bit-flip";
      case FileFault::Truncate:
        return "truncate";
      case FileFault::HeaderGarbage:
        return "header-garbage";
    }
    return "unknown";
}

std::string
corruptBytes(std::string bytes, FileFault kind, uint64_t seed)
{
    FaultRng rng(seed);
    if (bytes.empty())
        return bytes;
    switch (kind) {
      case FileFault::BitFlip: {
          uint64_t bitIdx = rng.below(bytes.size() * 8);
          bytes[bitIdx / 8] =
              static_cast<char>(static_cast<uint8_t>(bytes[bitIdx / 8]) ^
                                (1u << (bitIdx % 8)));
          break;
      }
      case FileFault::Truncate: {
          // A proper prefix: at least one byte gone, possibly all.
          bytes.resize(rng.below(bytes.size()));
          break;
      }
      case FileFault::HeaderGarbage: {
          size_t n = std::min<size_t>(16, bytes.size());
          for (size_t i = 0; i < n; ++i)
              bytes[i] = static_cast<char>(rng.next() & 0xff);
          break;
      }
    }
    return bytes;
}

util::Status
corruptFile(const std::string &path, FileFault kind, uint64_t seed)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return util::errorf(ErrorCode::IoError, "cannot open '%s'",
                            path.c_str());
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    in.close();

    std::string corrupted = corruptBytes(buf.str(), kind, seed);

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        return util::errorf(ErrorCode::IoError, "cannot rewrite '%s'",
                            path.c_str());
    }
    out.write(corrupted.data(),
              static_cast<std::streamsize>(corrupted.size()));
    out.flush();
    if (!out) {
        return util::errorf(ErrorCode::IoError, "rewriting '%s' failed",
                            path.c_str());
    }
    return util::Status::ok();
}

util::Result<std::string>
corruptOneFileIn(const std::string &dir, const std::string &suffix,
                 FileFault kind, uint64_t seed)
{
    namespace fs = std::filesystem;
    std::vector<std::string> candidates;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            candidates.push_back(entry.path().string());
        }
    }
    if (candidates.empty()) {
        return util::errorf(ErrorCode::InvalidArgument,
                            "no '*%s' files in '%s' to corrupt",
                            suffix.c_str(), dir.c_str());
    }
    std::sort(candidates.begin(), candidates.end());
    FaultRng rng(seed);
    const std::string &victim = candidates[rng.below(candidates.size())];
    util::Status st = corruptFile(victim, kind, seed);
    if (!st.isOk())
        return st;
    return victim;
}

} // namespace inject
} // namespace strober
