/**
 * @file
 * Deterministic fault injection for the replay pipeline.
 *
 * A sample-based estimate is only trustworthy if every fault class the
 * pipeline can hit — corrupted scan-chain readouts, torn or bit-rotted
 * snapshot files, diverging replays, hung gate-level simulator
 * processes — is either detected-and-quarantined or cleanly degraded,
 * never a crash and never a silently wrong number. These injectors
 * manufacture each fault class on demand, seeded so every failure a
 * test provokes is reproducible bit-for-bit from its seed.
 *
 * Injection points:
 *  - scan-chain bitstream / decoded snapshot state (models a corrupted
 *    capture): flipBitstreamBit, flipSnapshotStateBit
 *  - replay I/O trace (models recording faults / divergence):
 *    perturbInputToken, perturbOutputToken
 *  - serialized snapshot bytes or files (models storage/transport
 *    faults): corruptBytes, corruptFile
 *  - replay scheduling (models a hung simulator): StallPlan, consumed
 *    by EnergySimulator::estimate()'s per-snapshot watchdog
 */

#ifndef STROBER_INJECT_FAULT_INJECTOR_H
#define STROBER_INJECT_FAULT_INJECTOR_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fame/scan_chain.h"
#include "fame/token_sim.h"
#include "util/status.h"

namespace strober {
namespace inject {

/** splitmix64: tiny, well-mixed, and fully determined by its seed. */
class FaultRng
{
  public:
    explicit FaultRng(uint64_t seed) : state(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); bound must be positive. */
    uint64_t below(uint64_t bound);

  private:
    uint64_t state;
};

/**
 * Flip one seed-chosen bit of a scan-chain bitstream of @p totalBits
 * valid bits. @return the flipped bit index.
 */
uint64_t flipBitstreamBit(std::vector<uint64_t> &words, uint64_t totalBits,
                          uint64_t seed);

/**
 * Flip one seed-chosen state bit of @p snap in place, by round-tripping
 * the state through the scan-chain encoding (exactly the path a readout
 * glitch would corrupt). @return the flipped chain bit index.
 */
uint64_t flipSnapshotStateBit(fame::ReplayableSnapshot &snap,
                              const fame::ScanChains &chains, uint64_t seed);

/**
 * XOR the low bit of one seed-chosen input token of the replay trace
 * (a recording fault on the input side; the replay usually — but not
 * necessarily — diverges). @return the perturbed trace cycle.
 */
size_t perturbInputToken(fame::ReplayableSnapshot &snap, uint64_t seed);

/**
 * XOR the low bit of one seed-chosen *expected output* token (a
 * recording fault on the verification side; the replay is guaranteed
 * to report at least one output mismatch). @return the perturbed cycle.
 */
size_t perturbOutputToken(fame::ReplayableSnapshot &snap, uint64_t seed);

/** Storage/transport fault classes for serialized snapshots. */
enum class FileFault
{
    BitFlip,       //!< one random bit of the payload flipped
    Truncate,      //!< file cut to a random proper prefix (torn write)
    HeaderGarbage, //!< leading 16 bytes overwritten with noise
};

const char *fileFaultName(FileFault kind);

/** Apply @p kind to a serialized snapshot image. */
std::string corruptBytes(std::string bytes, FileFault kind, uint64_t seed);

/** Apply @p kind to the file at @p path in place. */
util::Status corruptFile(const std::string &path, FileFault kind,
                         uint64_t seed);

/**
 * Corrupt one seed-chosen file ending in @p suffix inside @p dir (the
 * candidates are sorted by name, so the victim is fully determined by
 * the seed). Built for poisoning farm artifacts — result-cache entries
 * (".strbres") and work-queue manifests (".strbfarm") — to prove the
 * readers degrade instead of trusting torn bytes. @return the path of
 * the corrupted file; fails with InvalidArgument when nothing matches.
 */
util::Result<std::string> corruptOneFileIn(const std::string &dir,
                                           const std::string &suffix,
                                           FileFault kind, uint64_t seed);

/**
 * Hung-simulator injection plan for EnergySimulator::estimate(): maps a
 * snapshot index to phantom stall cycles its gate-level replay burns
 * before making progress. A stall larger than the watchdog budget makes
 * every replay attempt of that snapshot time out.
 */
class StallPlan
{
  public:
    void
    stallSnapshot(size_t index, uint64_t cycles)
    {
        stalls[index] = cycles;
    }

    uint64_t
    stallFor(size_t index) const
    {
        auto it = stalls.find(index);
        return it == stalls.end() ? 0 : it->second;
    }

    bool empty() const { return stalls.empty(); }

  private:
    std::unordered_map<size_t, uint64_t> stalls;
};

} // namespace inject
} // namespace strober

#endif // STROBER_INJECT_FAULT_INJECTOR_H
