/**
 * @file
 * Power analysis from gate-level switching activity — the repository's
 * PrimeTime PX substitute (paper Figure 5). Inputs: the netlist, the
 * placement parasitics, and an ActivityReport (the "SAIF" file of this
 * flow). Output: average power over the activity window, total and
 * broken down by RTL hierarchy group (Figure 9a).
 *
 * Model, per net i driven by cell g over a window of C cycles at f Hz:
 *   switching  P = toggles_i / C * f * (1/2) (Cwire_i + ΣCin(fanout)) V²
 *   internal   P = toggles_i / C * f * Einternal(g)
 *   leakage    P = Σ leak(g)              (state-independent)
 *   macros     P = (reads*Eread + writes*Ewrite)/time + leakage(bits)
 */

#ifndef STROBER_POWER_POWER_ANALYSIS_H
#define STROBER_POWER_POWER_ANALYSIS_H

#include <string>
#include <vector>

#include "gate/netlist.h"
#include "gate/placement.h"
#include "gate/replay.h"

namespace strober {
namespace power {

/**
 * Version of the power model's equations and cell-library coefficients.
 * Farm result-cache keys include it: bump this whenever analyzePower's
 * numbers can change for identical activity inputs, so stale cached
 * power results are invalidated instead of silently reused.
 */
constexpr uint32_t kPowerModelVersion = 1;

/** Power of one hierarchy group, in watts. */
struct GroupPower
{
    std::string group;
    double switching = 0;
    double internal = 0;
    double leakage = 0;
    double macroDynamic = 0;
    double clock = 0; //!< clock-network power (toggles every cycle)
    double total() const
    {
        return switching + internal + leakage + macroDynamic + clock;
    }
};

/** A full power report for one activity window. */
struct PowerReport
{
    double clockHz = 0;
    uint64_t cycles = 0;
    std::vector<GroupPower> groups;

    double totalWatts() const;
    /** Power of groups whose path starts with @p prefix. */
    double prefixWatts(const std::string &prefix) const;
    /** Render as an aligned table (mW). */
    std::string table() const;
};

/** Analyze one activity window. @p clockHz is the target clock. */
PowerReport analyzePower(const gate::GateNetlist &netlist,
                         const gate::Placement &placement,
                         const gate::ActivityReport &activity,
                         double clockHz);

} // namespace power
} // namespace strober

#endif // STROBER_POWER_POWER_ANALYSIS_H
