file(REMOVE_RECURSE
  "libstrober_power.a"
)
