file(REMOVE_RECURSE
  "CMakeFiles/strober_power.dir/power_analysis.cc.o"
  "CMakeFiles/strober_power.dir/power_analysis.cc.o.d"
  "libstrober_power.a"
  "libstrober_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
