# Empty dependencies file for strober_power.
# This may be replaced when dependencies are built.
