#include "power/power_analysis.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace strober {
namespace power {

using gate::CellType;
using gate::GateNode;
using gate::kNoNet;
using gate::NetId;

double
PowerReport::totalWatts() const
{
    double total = 0;
    for (const GroupPower &g : groups)
        total += g.total();
    return total;
}

double
PowerReport::prefixWatts(const std::string &prefix) const
{
    double total = 0;
    for (const GroupPower &g : groups) {
        if (g.group.rfind(prefix, 0) == 0)
            total += g.total();
    }
    return total;
}

std::string
PowerReport::table() const
{
    std::ostringstream os;
    os << strfmt("%-32s %10s %10s %10s %10s %10s %10s\n", "group",
                 "switch(mW)", "intern(mW)", "leak(mW)", "sram(mW)",
                 "clock(mW)", "total(mW)");
    std::vector<const GroupPower *> sorted;
    for (const GroupPower &g : groups)
        sorted.push_back(&g);
    std::sort(sorted.begin(), sorted.end(),
              [](const GroupPower *a, const GroupPower *b) {
                  return a->total() > b->total();
              });
    for (const GroupPower *g : sorted) {
        if (g->total() <= 0)
            continue;
        os << strfmt("%-32s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                     g->group.c_str(), g->switching * 1e3,
                     g->internal * 1e3, g->leakage * 1e3,
                     g->macroDynamic * 1e3, g->clock * 1e3,
                     g->total() * 1e3);
    }
    os << strfmt("%-32s %65.3f\n", "TOTAL", totalWatts() * 1e3);
    return os.str();
}

PowerReport
analyzePower(const gate::GateNetlist &nl, const gate::Placement &placement,
             const gate::ActivityReport &activity, double clockHz)
{
    if (activity.cycles == 0)
        fatal("power analysis over an empty activity window");
    if (activity.netToggles.size() != nl.numNodes())
        fatal("activity report does not match the netlist");

    const gate::LibraryConstants &lib = gate::libraryConstants();
    PowerReport report;
    report.clockHz = clockHz;
    report.cycles = activity.cycles;
    report.groups.resize(nl.groupNames().size());
    for (size_t g = 0; g < nl.groupNames().size(); ++g)
        report.groups[g].group = nl.groupNames()[g];

    double seconds = static_cast<double>(activity.cycles) / clockHz;

    // Fanout pin capacitance per net.
    std::vector<double> fanoutCapFf(nl.numNodes(), 0.0);
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        const GateNode &n = nl.node(id);
        if (n.dead)
            continue;
        double inCap = gate::cellSpec(n.type).inputCapFf;
        for (NetId in : n.in) {
            if (in != kNoNet)
                fanoutCapFf[in] += inCap;
        }
    }
    // Macro pins load their address/data/enable nets too.
    for (const gate::MacroMem &m : nl.macros()) {
        auto loadPins = [&](const std::vector<NetId> &nets) {
            for (NetId id : nets)
                fanoutCapFf[id] += 1.5; // SRAM pin cap (fF)
        };
        for (const auto &r : m.reads) {
            loadPins(r.addr);
            if (r.en != kNoNet)
                fanoutCapFf[r.en] += 1.5;
        }
        for (const auto &w : m.writes) {
            loadPins(w.addr);
            loadPins(w.data);
            if (w.en != kNoNet)
                fanoutCapFf[w.en] += 1.5;
        }
    }

    const double v2 = lib.vdd * lib.vdd;
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        const GateNode &n = nl.node(id);
        if (n.dead)
            continue;
        GroupPower &g = report.groups[n.group];
        const gate::CellSpec &spec = gate::cellSpec(n.type);
        // Leakage regardless of activity.
        g.leakage += spec.leakageNw * 1e-9;
        // The clock network toggles under every flip-flop every cycle
        // (two transitions => C*V^2*f per DFF).
        if (n.type == CellType::Dff)
            g.clock += lib.clockCapFfPerDff * 1e-15 * v2 * clockHz;
        uint64_t toggles = activity.netToggles[id];
        if (toggles == 0)
            continue;
        double toggleRate = static_cast<double>(toggles) / seconds;
        double capF = (placement.netWireCapFf[id] + fanoutCapFf[id]) * 1e-15;
        g.switching += 0.5 * capF * v2 * toggleRate;
        g.internal += spec.internalEnFj * 1e-15 * toggleRate;
    }

    for (size_t mi = 0; mi < nl.macros().size(); ++mi) {
        const gate::MacroMem &m = nl.macros()[mi];
        GroupPower &g = report.groups[m.group];
        const gate::MacroStats &acc = activity.macroAccesses[mi];
        double bits = static_cast<double>(m.width);
        double readJ = lib.sramReadPjPerBit * 1e-12 * bits;
        double writeJ = lib.sramWritePjPerBit * 1e-12 * bits;
        g.macroDynamic += (static_cast<double>(acc.reads) * readJ +
                           static_cast<double>(acc.writes) * writeJ) /
                          seconds;
        g.leakage += lib.sramLeakNwPerBit * 1e-9 *
                     static_cast<double>(m.width) *
                     static_cast<double>(m.depth);
    }

    return report;
}

} // namespace power
} // namespace strober
