file(REMOVE_RECURSE
  "libstrober_workloads.a"
)
