file(REMOVE_RECURSE
  "CMakeFiles/strober_workloads.dir/workloads.cc.o"
  "CMakeFiles/strober_workloads.dir/workloads.cc.o.d"
  "libstrober_workloads.a"
  "libstrober_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
