# Empty dependencies file for strober_workloads.
# This may be replaced when dependencies are built.
