#include "workloads/workloads.h"

#include <sstream>

#include "isa/iss.h"
#include "util/logging.h"

namespace strober {
namespace workloads {

namespace {

/** Deterministic data generator (LCG) for embedded .word tables. */
class DataGen
{
  public:
    explicit DataGen(uint32_t seed) : state(seed) {}

    uint32_t
    next()
    {
        state = state * 1664525u + 1013904223u;
        return state;
    }

    uint32_t bounded(uint32_t n) { return next() % n; }

  private:
    uint32_t state;
};

/** Emit a .word table. */
std::string
wordTable(const std::string &label, const std::vector<uint32_t> &words)
{
    std::ostringstream os;
    os << label << ":\n";
    for (size_t i = 0; i < words.size(); ++i) {
        if (i % 8 == 0)
            os << "    .word ";
        os << words[i];
        os << ((i % 8 == 7 || i + 1 == words.size()) ? "\n" : ", ");
    }
    return os.str();
}

/** Assemble, run on the ISS for the expected checksum, wrap up. */
Workload
make(const std::string &name, const std::string &source,
     uint64_t maxCycles, bool checkOnIss = true)
{
    Workload w;
    w.name = name;
    w.program = isa::assemble(source);
    w.maxCycles = maxCycles;
    if (checkOnIss) {
        isa::Iss iss;
        iss.loadProgram(w.program);
        iss.run(200'000'000);
        w.expectedExit = iss.exitCode();
    }
    return w;
}

constexpr const char *kExit = R"(
        # a0 holds the checksum.
        li   t0, 0x40000000
        sw   a0, 0(t0)
    hang:
        j    hang
)";

} // namespace

Workload
vvadd()
{
    const unsigned n = 1024;
    DataGen gen(1);
    std::vector<uint32_t> a(n), bv(n);
    for (auto &v : a)
        v = gen.next();
    for (auto &v : bv)
        v = gen.next();

    std::ostringstream os;
    os << R"(
        j    start
        .align 8
)" << wordTable("vec_a", a)
       << wordTable("vec_b", bv) << R"(
    vec_c:
        .space )" << n * 4 << R"(
    start:
        la   s0, vec_a
        la   s1, vec_b
        la   s2, vec_c
        li   s3, )" << n << R"(
        li   t0, 0
    loop:
        slli t1, t0, 2
        add  t2, s0, t1
        add  t3, s1, t1
        add  t4, s2, t1
        lw   t5, 0(t2)
        lw   t6, 0(t3)
        add  t5, t5, t6
        sw   t5, 0(t4)
        addi t0, t0, 1
        bne  t0, s3, loop
        # checksum c
        li   a0, 0
        li   t0, 0
    csum:
        slli t1, t0, 2
        add  t2, s2, t1
        lw   t3, 0(t2)
        add  a0, a0, t3
        addi t0, t0, 1
        bne  t0, s3, csum
)" << kExit;
    return make("vvadd", os.str(), 4'000'000);
}

Workload
towers()
{
    // Towers of Hanoi, n = 7 disks, recursive; logs every move.
    std::ostringstream os;
    os << R"(
        j    start
        .align 8
    movelog:
        .space 4096
    start:
        li   sp, 0x20000
        la   s0, movelog
        li   s1, 0          # move count
        li   a0, 9          # disks
        li   a1, 1          # from peg
        li   a2, 3          # to peg
        li   a3, 2          # via peg
        call hanoi
        # checksum: moves + sum of logged (from*8+to)
        li   a0, 0
        li   t0, 0
    sumlog:
        beq  t0, s1, sumdone
        slli t1, t0, 2
        add  t2, s0, t1
        lw   t3, 0(t2)
        add  a0, a0, t3
        addi t0, t0, 1
        j    sumlog
    sumdone:
        add  a0, a0, s1
)" << kExit << R"(
    hanoi:
        beqz a0, hret
        addi sp, sp, -20
        sw   ra, 16(sp)
        sw   a0, 12(sp)
        sw   a1, 8(sp)
        sw   a2, 4(sp)
        sw   a3, 0(sp)
        addi a0, a0, -1
        mv   t0, a2        # swap to/via for first recursion
        mv   a2, a3
        mv   a3, t0
        call hanoi
        # log the move from(a1) -> to(original a2)
        lw   t1, 8(sp)     # from
        lw   t2, 4(sp)     # to
        slli t3, t1, 3
        add  t3, t3, t2
        slli t4, s1, 2
        add  t4, t4, s0
        sw   t3, 0(t4)
        addi s1, s1, 1
        # second recursion: via -> to
        lw   a0, 12(sp)
        addi a0, a0, -1
        lw   a1, 0(sp)     # via
        lw   a2, 4(sp)     # to
        lw   a3, 8(sp)     # from
        call hanoi
        lw   ra, 16(sp)
        addi sp, sp, 20
    hret:
        ret
)";
    return make("towers", os.str(), 4'000'000);
}

Workload
dhrystoneLike()
{
    // String copies/compares, record-field updates, branchy integer work
    // in a fixed loop, after the published benchmark's flavor.
    std::ostringstream os;
    os << R"(
        j start
        .align 8
    str_a:
        .word 0x73796844, 0x6e6f7472, 0x70652065, 0x312e3220   # text
        .word 0
    str_b:
        .space 20
    record:
        .space 32
    start:
        li   sp, 0x20000
        li   s0, 200         # iterations
        li   a0, 0           # checksum
    outer:
        # strcpy(str_b, str_a) byte-wise
        la   t0, str_a
        la   t1, str_b
    cpy:
        lbu  t2, 0(t0)
        sb   t2, 0(t1)
        addi t0, t0, 1
        addi t1, t1, 1
        bnez t2, cpy
        # strcmp(str_a, str_b) must be equal; count equal bytes
        la   t0, str_a
        la   t1, str_b
        li   t3, 0
    cmp:
        lbu  t2, 0(t0)
        lbu  t4, 0(t1)
        bne  t2, t4, cmpfail
        addi t3, t3, 1
        addi t0, t0, 1
        addi t1, t1, 1
        bnez t2, cmp
    cmpfail:
        add  a0, a0, t3
        # record updates (struct-ish field writes)
        la   t0, record
        sw   s0, 0(t0)
        sw   a0, 4(t0)
        lw   t1, 0(t0)
        lw   t2, 4(t0)
        add  t3, t1, t2
        sw   t3, 8(t0)
        # integer mix with data-dependent branches
        andi t4, s0, 3
        beqz t4, mod0
        li   t5, 2
        blt  t4, t5, mod1
        add  a0, a0, t4
        j    modend
    mod1:
        slli a0, a0, 1
        srli a0, a0, 1
        addi a0, a0, 7
        j    modend
    mod0:
        xori a0, a0, 0x155
    modend:
        addi s0, s0, -1
        bnez s0, outer
)" << kExit;
    return make("dhrystone", os.str(), 4'000'000);
}

Workload
qsortWl()
{
    const unsigned n = 512;
    DataGen gen(7);
    std::vector<uint32_t> data(n);
    for (auto &v : data)
        v = gen.next() & 0xffff;

    std::ostringstream os;
    os << R"(
        j start
        .align 8
)" << wordTable("arr", data) << R"(
    start:
        li   sp, 0x20000
        la   s0, arr
        li   s1, )" << n << R"(
        # iterative quicksort with explicit stack of (lo, hi) pairs
        addi sp, sp, -8
        li   t0, 0
        sw   t0, 0(sp)         # lo = 0
        addi t1, s1, -1
        sw   t1, 4(sp)         # hi = n-1
        li   s2, 1             # stack depth
    qloop:
        beqz s2, qdone
        lw   a1, 0(sp)         # lo
        lw   a2, 4(sp)         # hi
        addi sp, sp, 8
        addi s2, s2, -1
        bge  a1, a2, qloop
        # partition: pivot = arr[hi]
        slli t0, a2, 2
        add  t0, t0, s0
        lw   a3, 0(t0)         # pivot
        mv   t1, a1            # i = lo
        mv   t2, a1            # j = lo
    part:
        bge  t2, a2, partdone
        slli t3, t2, 2
        add  t3, t3, s0
        lw   t4, 0(t3)
        bgeu t4, a3, noswap
        # swap arr[i], arr[j]
        slli t5, t1, 2
        add  t5, t5, s0
        lw   t6, 0(t5)
        sw   t4, 0(t5)
        sw   t6, 0(t3)
        addi t1, t1, 1
    noswap:
        addi t2, t2, 1
        j    part
    partdone:
        # swap arr[i], arr[hi]
        slli t5, t1, 2
        add  t5, t5, s0
        lw   t6, 0(t5)
        lw   t4, 0(t0)
        sw   t4, 0(t5)
        sw   t6, 0(t0)
        # push (lo, i-1) and (i+1, hi)
        addi t3, t1, -1
        addi sp, sp, -8
        sw   a1, 0(sp)
        sw   t3, 4(sp)
        addi s2, s2, 1
        addi t3, t1, 1
        addi sp, sp, -8
        sw   t3, 0(sp)
        sw   a2, 4(sp)
        addi s2, s2, 1
        j    qloop
    qdone:
        # verify sortedness and checksum
        li   a0, 0
        li   t0, 1
        li   t5, 1             # sorted flag
    vloop:
        slli t1, t0, 2
        add  t1, t1, s0
        lw   t2, 0(t1)
        lw   t3, -4(t1)
        add  a0, a0, t2
        bgeu t2, t3, vok
        li   t5, 0
    vok:
        addi t0, t0, 1
        bne  t0, s1, vloop
        slli t5, t5, 16
        add  a0, a0, t5
)" << kExit;
    return make("qsort", os.str(), 8'000'000);
}

Workload
spmv()
{
    // CSR sparse matrix-vector multiply: 32 rows x 64 cols, 4 nnz/row.
    const unsigned rows = 128, cols = 64, nnz = 4;
    DataGen gen(11);
    std::vector<uint32_t> colIdx, vals, x(cols);
    for (unsigned r = 0; r < rows; ++r) {
        for (unsigned k = 0; k < nnz; ++k) {
            colIdx.push_back(gen.bounded(cols));
            vals.push_back(gen.bounded(1000));
        }
    }
    for (auto &v : x)
        v = gen.bounded(1000);

    std::ostringstream os;
    os << R"(
        j start
        .align 8
)" << wordTable("colidx", colIdx) << wordTable("vals", vals)
       << wordTable("vec_x", x) << R"(
    vec_y:
        .space )" << rows * 4 << R"(
    start:
        la   s0, colidx
        la   s1, vals
        la   s2, vec_x
        la   s3, vec_y
        li   s4, )" << rows << R"(
        li   t0, 0           # row
        li   s5, 0           # nnz cursor
    row:
        li   a1, 0           # accumulator
        li   t1, 0           # k
    elem:
        slli t2, s5, 2
        add  t3, s0, t2
        lw   t4, 0(t3)       # col
        add  t3, s1, t2
        lw   t5, 0(t3)       # val
        slli t4, t4, 2
        add  t4, t4, s2
        lw   t6, 0(t4)       # x[col]
        mul  t5, t5, t6
        add  a1, a1, t5
        addi s5, s5, 1
        addi t1, t1, 1
        li   t2, )" << nnz << R"(
        bne  t1, t2, elem
        slli t2, t0, 2
        add  t2, t2, s3
        sw   a1, 0(t2)
        addi t0, t0, 1
        bne  t0, s4, row
        # checksum y
        li   a0, 0
        li   t0, 0
    csum:
        slli t1, t0, 2
        add  t1, t1, s3
        lw   t2, 0(t1)
        add  a0, a0, t2
        addi t0, t0, 1
        bne  t0, s4, csum
)" << kExit;
    return make("spmv", os.str(), 4'000'000);
}

Workload
dgemm()
{
    const unsigned n = 16;
    DataGen gen(13);
    std::vector<uint32_t> a(n * n), bm(n * n);
    for (auto &v : a)
        v = gen.bounded(100);
    for (auto &v : bm)
        v = gen.bounded(100);

    std::ostringstream os;
    os << R"(
        j start
        .align 8
)" << wordTable("mat_a", a) << wordTable("mat_b", bm) << R"(
    mat_c:
        .space )" << n * n * 4 << R"(
    start:
        la   s0, mat_a
        la   s1, mat_b
        la   s2, mat_c
        li   s3, )" << n << R"(
        li   t0, 0           # i
    iloop:
        li   t1, 0           # j
    jloop:
        li   a1, 0           # acc
        li   t2, 0           # k
    kloop:
        mul  t3, t0, s3
        add  t3, t3, t2
        slli t3, t3, 2
        add  t3, t3, s0
        lw   t4, 0(t3)       # a[i][k]
        mul  t5, t2, s3
        add  t5, t5, t1
        slli t5, t5, 2
        add  t5, t5, s1
        lw   t6, 0(t5)       # b[k][j]
        mul  t4, t4, t6
        add  a1, a1, t4
        addi t2, t2, 1
        bne  t2, s3, kloop
        mul  t3, t0, s3
        add  t3, t3, t1
        slli t3, t3, 2
        add  t3, t3, s2
        sw   a1, 0(t3)
        addi t1, t1, 1
        bne  t1, s3, jloop
        addi t0, t0, 1
        bne  t0, s3, iloop
        # checksum c
        li   a0, 0
        li   t0, 0
        mul  s4, s3, s3
    csum:
        slli t1, t0, 2
        add  t1, t1, s2
        lw   t2, 0(t1)
        add  a0, a0, t2
        addi t0, t0, 1
        bne  t0, s4, csum
)" << kExit;
    return make("dgemm", os.str(), 8'000'000);
}

std::vector<Workload>
microbenchmarks()
{
    return {vvadd(), towers(), dhrystoneLike(), qsortWl(), spmv(),
            dgemm()};
}

Workload
coremarkLite(unsigned iterations)
{
    // The three CoreMark kernels in miniature: linked-list find/rotate,
    // matrix multiply-accumulate, and a state machine over a string.
    const unsigned nodes = 24;
    DataGen gen(17);
    std::vector<uint32_t> vals(nodes);
    for (auto &v : vals)
        v = gen.bounded(256);

    std::ostringstream os;
    os << R"(
        j start
        .align 8
)" << wordTable("lvals", vals) << R"(
    list:
        .space )" << nodes * 8 << R"(
    smtext:
        .word 0x31322b31, 0x352a332d, 0x2f373839, 0x00312b32  # "12+1-3*58 97/2+1"
    start:
        li   sp, 0x20000
        li   a0, 0           # crc accumulator
        li   s11, )" << iterations << R"(  # outer iterations
    outer:
        # --- build/refresh linked list: node = {value, next} ------------
        la   s0, list
        la   s1, lvals
        li   t0, 0
        li   s2, )" << nodes << R"(
    build:
        slli t1, t0, 3
        add  t2, s0, t1      # node addr
        slli t3, t0, 2
        add  t3, t3, s1
        lw   t4, 0(t3)
        sw   t4, 0(t2)       # value
        addi t5, t0, 1
        rem  t5, t5, s2
        slli t5, t5, 3
        add  t5, t5, s0
        sw   t5, 4(t2)       # next (ring)
        addi t0, t0, 1
        bne  t0, s2, build
        # --- traverse: find max value over one lap -----------------------
        mv   t0, s0
        li   t1, 0           # max
        li   t2, 0           # steps
    walk:
        lw   t3, 0(t0)
        ble  t3, t1, nomax
        mv   t1, t3
    nomax:
        lw   t0, 4(t0)
        addi t2, t2, 1
        bne  t2, s2, walk
        add  a0, a0, t1
        # --- 6x6 matrix multiply-accumulate ------------------------------
        li   t0, 0           # i
    mi:
        li   t1, 0           # j
    mj:
        li   t4, 0
        li   t2, 0           # k
    mk:
        add  t5, t0, t2
        add  t6, t2, t1
        mul  t5, t5, t6
        add  t4, t4, t5
        addi t2, t2, 1
        li   t5, 6
        bne  t2, t5, mk
        add  a0, a0, t4
        addi t1, t1, 1
        li   t5, 6
        bne  t1, t5, mj
        addi t0, t0, 1
        li   t5, 6
        bne  t0, t5, mi
        # --- state machine over the text ---------------------------------
        la   t0, smtext
        li   t1, 16          # bytes
        li   t2, 0           # state
    sm:
        lbu  t3, 0(t0)
        li   t4, 0x30
        blt  t3, t4, notdig
        li   t4, 0x3a
        bge  t3, t4, notdig
        addi t2, t2, 1       # digit state
        add  a0, a0, t3
        j    smnext
    notdig:
        li   t4, 0x2b        # '+'
        beq  t3, t4, isop
        li   t4, 0x2d        # '-'
        beq  t3, t4, isop
        li   t4, 0x2a        # '*'
        beq  t3, t4, isop
        li   t4, 0x2f        # '/'
        beq  t3, t4, isop
        slli t2, t2, 1       # other: shift state
        andi t2, t2, 255
        j    smnext
    isop:
        xor  a0, a0, t2
        li   t2, 0
    smnext:
        addi t0, t0, 1
        addi t1, t1, -1
        bnez t1, sm
        add  a0, a0, t2
        addi s11, s11, -1
        bnez s11, outer
)" << kExit;
    return make("coremark", os.str(), 8'000'000);
}

Workload
linuxbootLike(unsigned bssKiB)
{
    // "Boot": clear a large bss, build two-level page tables, probe
    // devices with console output, then run a tiny shell command loop.
    std::ostringstream os;
    os << R"(
        j start
        .align 8
    cmdline:
        .word 0x616e7500, 0x6c73006d, 0x6f686365, 0x00000000
    start:
        li   sp, 0x20000
        li   a0, 0
        # --- clear "bss": word stores over the bss region ----------------
        li   t0, 0x30000
        li   t1, )" << (0x30000 + bssKiB * 1024) << R"(
    bss:
        sw   x0, 0(t0)
        addi t0, t0, 4
        bne  t0, t1, bss
        # --- build page tables: 64 L2 entries + L1 ----------------------
        li   s0, 0x38000     # L1 base
        li   s1, 0x38400     # L2 pool
        li   t0, 0
    pgt:
        slli t1, t0, 2
        add  t2, s0, t1      # &L1[i]
        slli t3, t0, 8
        add  t3, t3, s1      # L2 block
        ori  t4, t3, 1       # valid bit
        sw   t4, 0(t2)
        # fill 8 entries of this L2 block
        li   t5, 0
    pge:
        slli t6, t5, 2
        add  t6, t6, t3
        slli a1, t5, 12
        ori  a1, a1, 0xf
        sw   a1, 0(t6)
        addi t5, t5, 1
        li   a1, 8
        bne  t5, a1, pge
        addi t0, t0, 1
        li   t1, 64
        bne  t0, t1, pgt
        # --- walk the tables, accumulate translations --------------------
        li   t0, 0
    walkpt:
        slli t1, t0, 2
        add  t1, t1, s0
        lw   t2, 0(t1)       # L1 entry
        andi t3, t2, 1
        beqz t3, walknext
        li   a1, 0xffffe
        slli a1, a1, 1
        and  t2, t2, a1      # clear valid, keep address-ish bits
        lw   t4, 4(t2)       # second L2 entry
        add  a0, a0, t4
    walknext:
        addi t0, t0, 1
        li   t1, 64
        bne  t0, t1, walkpt
        # --- device probes with console output ---------------------------
        li   s2, 6           # devices
        li   s3, 0x40000004
    probe:
        li   t0, 98          # 'b'
        sw   t0, 0(s3)
        li   t0, 111         # 'o'
        sw   t0, 0(s3)
        li   t0, 111
        sw   t0, 0(s3)
        li   t0, 116         # 't'
        sw   t0, 0(s3)
        li   t0, 10          # newline
        sw   t0, 0(s3)
        add  a0, a0, s2
        addi s2, s2, -1
        bnez s2, probe
        # --- shell loop: hash each NUL-separated command ------------------
        la   s4, cmdline
        li   t0, 0           # offset
        li   t5, 0           # command hash
    shell:
        add  t1, s4, t0
        lbu  t2, 0(t1)
        beqz t2, cmdend
        slli t3, t5, 5
        add  t5, t3, t2
        j    shnext
    cmdend:
        add  a0, a0, t5
        li   t5, 0
    shnext:
        addi t0, t0, 1
        li   t1, 16
        bne  t0, t1, shell
)" << kExit;
    return make("linuxboot", os.str(), 16'000'000);
}

Workload
gccLike(unsigned iterations)
{
    // "Compiler": tokenize expression statements, maintain a chained
    // hash symbol table, evaluate with a recursive-descent parser.
    // Source text: statements of the form "letter = digit-expression;".
    std::string text = "a=1+2*3;b=a+4;c=b*b-5;d=c/3+a;e=d*2+b;";
    std::vector<uint32_t> packed;
    for (size_t i = 0; i < text.size(); i += 4) {
        uint32_t w = 0;
        for (size_t k = 0; k < 4 && i + k < text.size(); ++k)
            w |= static_cast<uint32_t>(text[i + k]) << (8 * k);
        packed.push_back(w);
    }
    packed.push_back(0);

    std::ostringstream os;
    os << R"(
        j start
        .align 8
)" << wordTable("srctext", packed) << R"(
    symtab:
        .space 256           # 32 buckets x {key, value}
    start:
        li   sp, 0x20000
        li   a0, 0
        li   s10, )" << iterations << R"(  # whole-compile iterations
    compile:
        # clear symbol table
        la   s0, symtab
        li   t0, 0
    clr:
        slli t1, t0, 2
        add  t1, t1, s0
        sw   x0, 0(t1)
        addi t0, t0, 1
        li   t1, 64
        bne  t0, t1, clr
        la   s1, srctext     # cursor
    stmt:
        lbu  t0, 0(s1)
        beqz t0, stmtsdone
        # expect: var '=' expr ';'
        mv   s2, t0          # variable name
        addi s1, s1, 2       # skip var and '='
        call expr            # -> a1 value, s1 advanced
        addi s1, s1, 1       # skip ';'
        # store into hash table: bucket = name & 31
        andi t0, s2, 31
        slli t0, t0, 3
        add  t0, t0, s0
        sw   s2, 0(t0)
        sw   a1, 4(t0)
        add  a0, a0, a1
        j    stmt
    stmtsdone:
        # periodic "garbage collection": every 8th compile touches a
        # rotating 4 KiB heap region (gives gcc its phased, memory-bound
        # stretches - visible in the Figure-10 CPI timeline)
        andi t0, s10, 7
        bnez t0, nogc
        slli t1, s10, 12
        li   t2, 0x1ffff
        and  t1, t1, t2
        li   t2, 0x60000
        add  t1, t1, t2
        li   t3, 1024
    gcloop:
        lw   t4, 0(t1)
        addi t4, t4, 1
        sw   t4, 0(t1)
        addi t1, t1, 4
        addi t3, t3, -1
        bnez t3, gcloop
    nogc:
        addi s10, s10, -1
        bnez s10, compile
)" << kExit << R"(

    # expr := term (('+'|'-') term)*      result in a1
    expr:
        addi sp, sp, -8
        sw   ra, 4(sp)
        call term
        mv   t3, a1
    exprloop:
        lbu  t0, 0(s1)
        li   t1, 0x2b        # '+'
        beq  t0, t1, eadd
        li   t1, 0x2d        # '-'
        beq  t0, t1, esub
        mv   a1, t3
        lw   ra, 4(sp)
        addi sp, sp, 8
        ret
    eadd:
        addi s1, s1, 1
        sw   t3, 0(sp)
        call term
        lw   t3, 0(sp)
        add  t3, t3, a1
        j    exprloop
    esub:
        addi s1, s1, 1
        sw   t3, 0(sp)
        call term
        lw   t3, 0(sp)
        sub  t3, t3, a1
        j    exprloop

    # term := factor (('*'|'/') factor)*
    term:
        addi sp, sp, -8
        sw   ra, 4(sp)
        call factor
        mv   t4, a1
    termloop:
        lbu  t0, 0(s1)
        li   t1, 0x2a        # '*'
        beq  t0, t1, tmul
        li   t1, 0x2f        # '/'
        beq  t0, t1, tdiv
        mv   a1, t4
        lw   ra, 4(sp)
        addi sp, sp, 8
        ret
    tmul:
        addi s1, s1, 1
        sw   t4, 0(sp)
        call factor
        lw   t4, 0(sp)
        mul  t4, t4, a1
        j    termloop
    tdiv:
        addi s1, s1, 1
        sw   t4, 0(sp)
        call factor
        lw   t4, 0(sp)
        div  t4, t4, a1
        j    termloop

    # factor := digit | variable (symbol-table lookup)
    factor:
        lbu  t0, 0(s1)
        addi s1, s1, 1
        li   t1, 0x30
        blt  t0, t1, fvar
        li   t1, 0x3a
        bge  t0, t1, fvar
        addi a1, t0, -0x30
        ret
    fvar:
        andi t1, t0, 31
        slli t1, t1, 3
        la   t2, symtab
        add  t1, t1, t2
        lw   a1, 4(t1)       # value (0 when undefined)
        ret
)";
    return make("gcc", os.str(), 16'000'000);
}

std::vector<Workload>
caseStudies()
{
    return {coremarkLite(), linuxbootLike(), gccLike()};
}

Workload
byName(const std::string &name)
{
    for (Workload &w : microbenchmarks()) {
        if (w.name == name)
            return w;
    }
    for (Workload &w : caseStudies()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

Workload
pointerChase(uint32_t sizeBytes, uint32_t iterations)
{
    const uint32_t stride = 64;
    const uint32_t arrayBase = 0x40000; // away from code and stacks
    uint32_t nodes = sizeBytes / stride;
    if (nodes < 2)
        fatal("pointer chase needs at least two nodes");

    std::ostringstream os;
    os << R"(
        # Build the chase ring at runtime (sequential with 64 B stride),
        # then measure load-to-load latency with rdcycle (ccbench-style).
        li   s0, )" << arrayBase << R"(
        li   s1, )" << nodes << R"(
        li   t0, 0
    build:
        li   t1, )" << stride << R"(
        mul  t2, t0, t1
        add  t2, t2, s0      # node address
        addi t3, t0, 1
        rem  t3, t3, s1
        mul  t3, t3, t1
        add  t3, t3, s0      # next address
        sw   t3, 0(t2)
        addi t0, t0, 1
        bne  t0, s1, build
        # warm-up lap so the in-cache case starts warm
        mv   a0, s0
        mv   t0, s1
    warm:
        lw   a0, 0(a0)
        addi t0, t0, -1
        bnez t0, warm
        # timed chase
        li   s2, )" << iterations << R"(
        mv   t0, s2
        rdcycle s3
    chase:
        lw   a0, 0(a0)
        addi t0, t0, -1
        bnez t0, chase
        rdcycle s4
        sub  s4, s4, s3
        slli s4, s4, 4       # x16 fixed point
        divu a0, s4, s2      # latency per load (x16)
)" << kExit;
    Workload w = make("pointer_chase", os.str(), 200'000'000,
                      /*checkOnIss=*/false);
    return w;
}

} // namespace workloads
} // namespace strober
