/**
 * @file
 * Benchmark programs for the target SoCs, written in RV32IM assembly and
 * assembled at build time. These substitute for the paper's workloads:
 *
 *  - the six Rocket-Chip microbenchmarks used in the power validation
 *    (Table IV / Figure 8): vvadd, towers, dhrystone, qsort, spmv, dgemm
 *    — same kernels, scaled-down inputs;
 *  - the three case-study workloads (Table III / Figure 9): CoreMark,
 *    Linux-boot and SPECint 403.gcc are replaced by coremark-lite (list +
 *    matrix + state-machine mix), linuxboot-like (memory init, tree
 *    setup, branchy command loop, console output) and gcc-like
 *    (tokenizer + hash table + recursive-descent evaluation);
 *  - the ccbench pointer-chase kernel used for the DRAM timing
 *    validation (Figure 7).
 *
 * Every program ends by storing a checksum to the MMIO exit register so
 * both the ISS and the RTL/gate simulations self-check.
 */

#ifndef STROBER_WORKLOADS_WORKLOADS_H
#define STROBER_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.h"

namespace strober {
namespace workloads {

/** A named, assembled workload. */
struct Workload
{
    std::string name;
    isa::Program program;
    uint32_t expectedExit = 0;  //!< checksum the run must produce
    uint64_t maxCycles = 0;     //!< generous per-core cycle budget
};

// --- Validation microbenchmarks (Table IV / Figure 8) -------------------
Workload vvadd();
Workload towers();
Workload dhrystoneLike();
Workload qsortWl();
Workload spmv();
Workload dgemm();

/** All six, in the paper's order. */
std::vector<Workload> microbenchmarks();

// --- Case-study workloads (Table III / Figure 9) ------------------------
/** @p iterations scales run length (Table III uses longer runs). */
Workload coremarkLite(unsigned iterations = 3);
Workload linuxbootLike(unsigned bssKiB = 24);
Workload gccLike(unsigned iterations = 3);

std::vector<Workload> caseStudies();

/** Find any workload by name (fatal if unknown). */
Workload byName(const std::string &name);

/**
 * Pointer-chase kernel (Figure 7): a linked ring of @p sizeBytes with
 * node stride of 64 bytes is chased @p iterations times; the program
 * exits with the average load-to-load latency in cycles x16 (fixed
 * point), measured with rdcycle.
 */
Workload pointerChase(uint32_t sizeBytes, uint32_t iterations);

} // namespace workloads
} // namespace strober

#endif // STROBER_WORKLOADS_WORKLOADS_H
