/**
 * @file
 * Service-tier tests (src/service): the wire protocol framing, the
 * crash-only worker supervisor, and the strober-serve daemon itself —
 * admission control, deadlines, cancel, graceful drain, stats.
 *
 * Daemon tests use a *synthetic* JobExecutor and zero forked worker
 * processes, so the whole suite is a plain multithreaded process that
 * TSan can check end to end. Supervisor tests fork real children (the
 * gtest process is effectively single-threaded at that point, and the
 * children exec nothing but their body lambda). Integration with the
 * real farm executor is exercised by the CI service-smoke job against
 * the actual binaries.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <cstring>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/job_control.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/proto.h"
#include "service/supervisor.h"
#include "util/env.h"
#include "util/status.h"

namespace strober {
namespace service {
namespace {

namespace fs = std::filesystem;
using farm::wire::Reader;
using farm::wire::Writer;

// ---------------------------------------------------------------------------
// Protocol codec
// ---------------------------------------------------------------------------

Reader
sealedReader(const Writer &w, std::string &storage)
{
    storage = w.sealed();
    return Reader(storage);
}

TEST(ServiceProto, SubmitRequestRoundTrips)
{
    SubmitRequest req;
    req.coreName = "rocket";
    req.workloadName = "dhrystone";
    req.sampleSize = 30;
    req.replayLength = 128;
    req.deadlineMs = 90'000;
    req.workers = 4;

    Writer w;
    req.encode(w);
    std::string buf;
    Reader r = sealedReader(w, buf);
    EXPECT_EQ(r.u64(), static_cast<uint64_t>(MsgType::Submit));
    auto back = SubmitRequest::decode(r);
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back->coreName, req.coreName);
    EXPECT_EQ(back->workloadName, req.workloadName);
    EXPECT_EQ(back->sampleSize, req.sampleSize);
    EXPECT_EQ(back->replayLength, req.replayLength);
    EXPECT_EQ(back->deadlineMs, req.deadlineMs);
    EXPECT_EQ(back->workers, req.workers);
}

TEST(ServiceProto, SubmitRequestRejectsEmptyAndZero)
{
    SubmitRequest bad;
    bad.coreName = ""; // empty core
    bad.workloadName = "dhrystone";
    Writer w;
    bad.encode(w);
    std::string buf;
    Reader r = sealedReader(w, buf);
    r.u64(); // discard type
    EXPECT_FALSE(SubmitRequest::decode(r).isOk());

    SubmitRequest zero;
    zero.coreName = "rocket";
    zero.workloadName = "dhrystone";
    zero.sampleSize = 0;
    Writer w2;
    zero.encode(w2);
    Reader r2 = sealedReader(w2, buf);
    r2.u64();
    EXPECT_FALSE(SubmitRequest::decode(r2).isOk());
}

TEST(ServiceProto, JobStatusReplyRoundTrips)
{
    JobStatusReply rep;
    rep.jobId = 42;
    rep.state = JobState::Degraded;
    rep.exitCode = 1;
    rep.detail = "2 snapshot(s) dropped";
    rep.reportText = "population 99\nvalid 1 degraded 1\n";

    Writer w;
    rep.encode(w);
    std::string buf;
    Reader r = sealedReader(w, buf);
    EXPECT_EQ(r.u64(), static_cast<uint64_t>(MsgType::JobStatus));
    auto back = JobStatusReply::decode(r);
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back->jobId, rep.jobId);
    EXPECT_EQ(back->state, rep.state);
    EXPECT_EQ(back->exitCode, rep.exitCode);
    EXPECT_EQ(back->detail, rep.detail);
    EXPECT_EQ(back->reportText, rep.reportText);
}

TEST(ServiceProto, StatsVectorRoundTrips)
{
    StatsVector stats = {{"queue-depth", 3}, {"submitted", 17}};
    Writer w;
    encodeStats(w, stats);
    std::string buf;
    Reader r = sealedReader(w, buf);
    EXPECT_EQ(r.u64(), static_cast<uint64_t>(MsgType::StatsReply));
    auto back = decodeStats(r);
    ASSERT_TRUE(back.isOk());
    ASSERT_EQ(back->size(), 2u);
    EXPECT_EQ((*back)[0].first, "queue-depth");
    EXPECT_EQ((*back)[0].second, 3u);
    EXPECT_EQ((*back)[1].first, "submitted");
    EXPECT_EQ((*back)[1].second, 17u);
}

TEST(ServiceProto, JobStateNamesAndFinality)
{
    EXPECT_FALSE(jobStateFinal(JobState::Queued));
    EXPECT_FALSE(jobStateFinal(JobState::Running));
    EXPECT_TRUE(jobStateFinal(JobState::Done));
    EXPECT_TRUE(jobStateFinal(JobState::Degraded));
    EXPECT_TRUE(jobStateFinal(JobState::TimedOut));
    EXPECT_TRUE(jobStateFinal(JobState::Failed));
    EXPECT_TRUE(jobStateFinal(JobState::Canceled));
    EXPECT_STREQ(jobStateName(JobState::Queued), "queued");
    EXPECT_STREQ(jobStateName(JobState::TimedOut), "timed-out");
}

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

class FramePipe : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    }

    void
    TearDown() override
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        if (fds[1] >= 0)
            ::close(fds[1]);
    }

    int fds[2] = {-1, -1};
};

TEST_F(FramePipe, FrameRoundTrips)
{
    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Stats));
    w.str("payload");
    ASSERT_TRUE(writeFrame(fds[0], w).isOk());
    auto r = readFrame(fds[1]);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r->u64(), static_cast<uint64_t>(MsgType::Stats));
    EXPECT_EQ(r->str(), "payload");
    EXPECT_TRUE(r->atEnd());
}

TEST_F(FramePipe, CorruptPayloadFailsTheCrc)
{
    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Stats));
    std::string payload = w.sealed();
    payload[payload.size() / 2] ^= 0x40; // flip one bit mid-payload
    uint32_t len = static_cast<uint32_t>(payload.size());
    unsigned char hdr[4] = {
        static_cast<unsigned char>(len),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 24),
    };
    ASSERT_EQ(::write(fds[0], hdr, 4), 4);
    ASSERT_EQ(::write(fds[0], payload.data(), payload.size()),
              (ssize_t)payload.size());
    auto r = readFrame(fds[1]);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), util::ErrorCode::Corrupt);
}

TEST_F(FramePipe, OversizedFrameIsRefusedNotBuffered)
{
    // A length prefix past the cap must be rejected from the header
    // alone — the daemon never allocates or reads the claimed payload.
    uint32_t len = kMaxFrameBytes + 1;
    unsigned char hdr[4] = {
        static_cast<unsigned char>(len),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 24),
    };
    ASSERT_EQ(::write(fds[0], hdr, 4), 4);
    auto r = readFrame(fds[1]);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), util::ErrorCode::Corrupt);
}

TEST_F(FramePipe, ReadTimesOutOnASilentPeer)
{
    uint64_t t0 = util::monotonicMs();
    auto r = readFrame(fds[1], 50);
    uint64_t elapsed = util::monotonicMs() - t0;
    ASSERT_FALSE(r.isOk());
    EXPECT_GE(elapsed, 40u);
}

TEST_F(FramePipe, EofIsAnIoError)
{
    ::close(fds[0]);
    fds[0] = -1;
    auto r = readFrame(fds[1]);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), util::ErrorCode::IoError);
}

// ---------------------------------------------------------------------------
// Supervisor (forks real children; keep this process single-threaded)
// ---------------------------------------------------------------------------

class SupervisorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = fs::temp_directory_path() /
              ("strober_sup_" + std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
        fs::remove_all(dir);
        fs::create_directories(dir);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir);
    }

    std::string
    sub(const char *name) const
    {
        return (dir / name).string();
    }

    fs::path dir;
};

TEST_F(SupervisorTest, CleanWorkersRunToCompletion)
{
    std::vector<WorkerSpec> specs(3);
    for (int i = 0; i < 3; ++i) {
        std::string path = sub(("w" + std::to_string(i)).c_str());
        specs[i].body = [path] {
            std::ofstream(path) << "done";
            return 0;
        };
    }
    SupervisorConfig cfg;
    cfg.slots = 2; // fewer slots than workers: the pool must rotate
    cfg.pollIntervalMs = 5;
    SupervisionStats stats = superviseUntilDone(specs, cfg);
    EXPECT_EQ(stats.spawned, 3u);
    EXPECT_EQ(stats.cleanExits, 3u);
    EXPECT_EQ(stats.crashes, 0u);
    EXPECT_EQ(stats.givenUp, 0u);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(fs::exists(sub(("w" + std::to_string(i)).c_str())));
}

TEST_F(SupervisorTest, CrashingWorkerRetriesThenIsAbandoned)
{
    std::vector<WorkerSpec> specs(1);
    specs[0].body = [] { return 7; }; // always fails
    SupervisorConfig cfg;
    cfg.maxRetries = 2;
    cfg.backoffBaseMs = 1;
    cfg.pollIntervalMs = 2;
    SupervisionStats stats = superviseUntilDone(specs, cfg);
    EXPECT_EQ(stats.spawned, 3u); // first start + 2 retries
    EXPECT_EQ(stats.crashes, 3u);
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_EQ(stats.givenUp, 1u);
    EXPECT_EQ(stats.cleanExits, 0u);
}

TEST_F(SupervisorTest, FlakyWorkerSucceedsOnRetry)
{
    // Crash-once-then-succeed, communicated through the filesystem
    // (each attempt is a fresh child process).
    std::string sentinel = sub("crashed_once");
    std::vector<WorkerSpec> specs(1);
    specs[0].body = [sentinel] {
        if (!fs::exists(sentinel)) {
            std::ofstream(sentinel) << "x";
            ::raise(SIGKILL); // die exactly like a kill -9
        }
        return 0;
    };
    SupervisorConfig cfg;
    cfg.maxRetries = 2;
    cfg.backoffBaseMs = 1;
    cfg.pollIntervalMs = 2;
    SupervisionStats stats = superviseUntilDone(specs, cfg);
    EXPECT_EQ(stats.spawned, 2u);
    EXPECT_EQ(stats.crashes, 1u);
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_EQ(stats.cleanExits, 1u);
    EXPECT_EQ(stats.givenUp, 0u);
}

TEST_F(SupervisorTest, WallCapKillsAWedgedWorker)
{
    std::vector<WorkerSpec> specs(1);
    specs[0].body = [] {
        ::sleep(60); // wedged
        return 0;
    };
    SupervisorConfig cfg;
    cfg.wallCapMs = 50;
    cfg.maxRetries = 0; // one attempt: kill, don't respawn
    cfg.backoffBaseMs = 1;
    cfg.pollIntervalMs = 5;
    SupervisionStats stats = superviseUntilDone(specs, cfg);
    EXPECT_EQ(stats.wallKills, 1u);
    EXPECT_EQ(stats.crashes, 1u);
    EXPECT_EQ(stats.givenUp, 1u);
}

TEST_F(SupervisorTest, RssCapKillsAMemoryHog)
{
    std::vector<WorkerSpec> specs(1);
    specs[0].body = [] {
        // Touch ~64 MB so VmRSS genuinely grows, then wedge.
        size_t bytes = 64u << 20;
        char *p = static_cast<char *>(::malloc(bytes));
        if (p != nullptr) {
            for (size_t i = 0; i < bytes; i += 4096)
                p[i] = static_cast<char>(i);
        }
        ::sleep(60);
        ::free(p);
        return 0;
    };
    SupervisorConfig cfg;
    cfg.rssCapBytes = 16u << 20;
    cfg.wallCapMs = 30'000; // backstop so the test can't hang
    cfg.maxRetries = 0;
    cfg.pollIntervalMs = 5;
    SupervisionStats stats = superviseUntilDone(specs, cfg);
    EXPECT_EQ(stats.rssKills, 1u);
    EXPECT_EQ(stats.wallKills, 0u);
    EXPECT_EQ(stats.givenUp, 1u);
}

TEST_F(SupervisorTest, StopRequestDrainsThePool)
{
    std::vector<WorkerSpec> specs(2);
    for (int i = 0; i < 2; ++i) {
        specs[i].body = [] {
            ::sleep(60); // until SIGTERM (default action: terminate)
            return 0;
        };
    }
    std::atomic<int> polls{0};
    SupervisorConfig cfg;
    cfg.slots = 2;
    cfg.pollIntervalMs = 5;
    cfg.stopGraceMs = 500;
    cfg.stopRequested = [&polls] { return ++polls > 3; };
    uint64_t t0 = util::monotonicMs();
    SupervisionStats stats = superviseUntilDone(specs, cfg);
    EXPECT_EQ(stats.drained, 2u);
    EXPECT_EQ(stats.givenUp, 0u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_LT(util::monotonicMs() - t0, 30'000u);
}

// ---------------------------------------------------------------------------
// Daemon (synthetic executors, zero forks — TSan-clean)
// ---------------------------------------------------------------------------

class DaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = fs::temp_directory_path() /
              ("strober_svc_" + std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
        fs::remove_all(dir);
        fs::create_directories(dir);
        cfg.socketPath = (dir / "serve.sock").string();
        cfg.rootDir = (dir / "root").string();
    }

    void
    TearDown() override
    {
        fs::remove_all(dir);
    }

    /** Executor finishing instantly with a clean report. */
    static JobOutcome
    instantDone(const JobRequest &req, core::JobControl &)
    {
        JobOutcome out;
        out.state = JobState::Done;
        out.exitCode = 0;
        out.reportText =
            "report for " + req.submit.workloadName + "\n";
        return out;
    }

    fs::path dir;
    DaemonConfig cfg;
};

SubmitRequest
submitReq(const char *wl = "dhrystone")
{
    SubmitRequest req;
    req.coreName = "rocket";
    req.workloadName = wl;
    return req;
}

TEST_F(DaemonTest, SubmitWaitReturnsTheReport)
{
    cfg.executor = instantDone;
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());

    ServiceClient client(cfg.socketPath);
    auto sub = client.submit(submitReq());
    ASSERT_TRUE(sub.isOk()) << sub.status().toString();
    ASSERT_TRUE(sub->accepted) << sub->refusal;
    auto rep = client.wait(sub->jobId, 30'000);
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    EXPECT_EQ(rep->state, JobState::Done);
    EXPECT_EQ(rep->exitCode, 0);
    EXPECT_EQ(rep->reportText, "report for dhrystone\n");

    // A plain status query also sees the final state.
    auto st = client.status(sub->jobId);
    ASSERT_TRUE(st.isOk());
    EXPECT_EQ(st->state, JobState::Done);

    daemon.stop();
}

TEST_F(DaemonTest, UnknownJobAndBadFramesAreContained)
{
    cfg.executor = instantDone;
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());

    ServiceClient client(cfg.socketPath);
    auto st = client.status(999);
    EXPECT_FALSE(st.isOk()); // unknown job is an explicit error

    // A garbage frame (valid length prefix, CRC-failing payload)
    // poisons only its own connection.
    {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::connect(
                      fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)),
                  0);
        unsigned char junk[12] = {8, 0, 0, 0, // 8-byte payload claimed
                                  0xde, 0xad, 0xbe, 0xef,
                                  0xde, 0xad, 0xbe, 0xef};
        ASSERT_EQ(::write(fd, junk, sizeof(junk)), (ssize_t)sizeof(junk));
        char buf[16];
        // The daemon drops the connection without a reply frame.
        (void)!::read(fd, buf, sizeof(buf));
        ::close(fd);
    }
    for (int spin = 0; spin < 200; ++spin) {
        if (daemon.statsSnapshot().badFrames >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE(daemon.statsSnapshot().badFrames, 1u);

    // The daemon still serves good clients afterwards.
    auto sub = client.submit(submitReq());
    ASSERT_TRUE(sub.isOk());
    EXPECT_TRUE(sub->accepted);
    auto rep = client.wait(sub->jobId, 30'000);
    ASSERT_TRUE(rep.isOk());
    EXPECT_EQ(rep->state, JobState::Done);

    daemon.stop();
}

/** Executor that blocks until released (or canceled/deadline-hit). */
struct GatedExecutor
{
    std::mutex mtx;
    std::condition_variable cv;
    bool released = false;
    std::atomic<int> running{0};

    JobOutcome
    operator()(const JobRequest &, core::JobControl &control)
    {
        ++running;
        std::unique_lock<std::mutex> lock(mtx);
        while (!released && !control.stopRequested())
            cv.wait_for(lock, std::chrono::milliseconds(10));
        --running;
        JobOutcome out;
        if (control.canceled()) {
            out.state = JobState::Canceled;
            out.exitCode = 4;
            out.detail = "drained; checkpointed";
            return out;
        }
        if (control.deadlineExpired()) {
            // Report what a degraded farm run would: the daemon
            // relabels deadline-expired Degraded as TimedOut.
            out.state = JobState::Degraded;
            out.exitCode = 1;
            out.detail = "all snapshots timed out";
            out.reportText = "valid 1 degraded 1\n";
            return out;
        }
        out.state = JobState::Done;
        out.exitCode = 0;
        out.reportText = "gated done\n";
        return out;
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mtx);
        released = true;
        cv.notify_all();
    }
};

TEST_F(DaemonTest, AdmissionControlRejectsBeyondTheBound)
{
    auto gate = std::make_shared<GatedExecutor>();
    cfg.executor = [gate](const JobRequest &req, core::JobControl &c) {
        return (*gate)(req, c);
    };
    cfg.runners = 1;
    cfg.maxQueue = 2;
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());

    ServiceClient client(cfg.socketPath);
    // One running + two queued = at the bound.
    std::vector<uint64_t> ids;
    for (int i = 0; i < 3; ++i) {
        auto sub = client.submit(submitReq());
        ASSERT_TRUE(sub.isOk());
        ASSERT_TRUE(sub->accepted) << sub->refusal;
        ids.push_back(sub->jobId);
    }
    // Give the runner a beat to pull one job off the queue, then fill
    // the freed slot before testing the refusal.
    for (int spin = 0; spin < 200 && gate->running.load() == 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(gate->running.load(), 1);
    while (true) {
        auto sub = client.submit(submitReq());
        ASSERT_TRUE(sub.isOk());
        if (!sub->accepted) {
            // The refusal is explicit and names the bound.
            EXPECT_NE(sub->refusal.find("overloaded"), std::string::npos)
                << sub->refusal;
            break;
        }
        ids.push_back(sub->jobId);
        ASSERT_LE(ids.size(), 4u) << "admission bound never enforced";
    }

    auto stats = daemon.statsSnapshot();
    EXPECT_GE(stats.overloaded, 1u);

    gate->release();
    for (uint64_t id : ids) {
        auto rep = client.wait(id, 30'000);
        ASSERT_TRUE(rep.isOk()) << rep.status().toString();
        EXPECT_EQ(rep->state, JobState::Done);
    }
    daemon.stop();
}

TEST_F(DaemonTest, DeadlineExpiredJobIsRelabeledTimedOut)
{
    auto gate = std::make_shared<GatedExecutor>();
    cfg.executor = [gate](const JobRequest &req, core::JobControl &c) {
        return (*gate)(req, c);
    };
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());

    ServiceClient client(cfg.socketPath);
    SubmitRequest req = submitReq();
    req.deadlineMs = 30; // expires while the executor is gated
    auto sub = client.submit(req);
    ASSERT_TRUE(sub.isOk());
    ASSERT_TRUE(sub->accepted);

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    gate->release();
    auto rep = client.wait(sub->jobId, 30'000);
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    EXPECT_EQ(rep->state, JobState::TimedOut);
    EXPECT_EQ(rep->exitCode, 1); // degraded report convention
    EXPECT_FALSE(rep->reportText.empty());

    auto stats = daemon.statsSnapshot();
    EXPECT_EQ(stats.timedOut, 1u);
    EXPECT_EQ(stats.degradedReports, 1u);
    daemon.stop();
}

TEST_F(DaemonTest, CancelStopsARunningJob)
{
    auto gate = std::make_shared<GatedExecutor>();
    cfg.executor = [gate](const JobRequest &req, core::JobControl &c) {
        return (*gate)(req, c);
    };
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());

    ServiceClient client(cfg.socketPath);
    auto sub = client.submit(submitReq());
    ASSERT_TRUE(sub.isOk());
    ASSERT_TRUE(sub->accepted);
    for (int spin = 0; spin < 200 && gate->running.load() == 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(client.cancel(sub->jobId).isOk());
    auto rep = client.wait(sub->jobId, 30'000);
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    EXPECT_EQ(rep->state, JobState::Canceled);
    EXPECT_EQ(rep->exitCode, 4);
    daemon.stop();
}

TEST_F(DaemonTest, DrainCancelsQueuedRefusesNewAndCompletes)
{
    auto gate = std::make_shared<GatedExecutor>();
    cfg.executor = [gate](const JobRequest &req, core::JobControl &c) {
        return (*gate)(req, c);
    };
    cfg.runners = 1;
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());

    ServiceClient client(cfg.socketPath);
    auto running = client.submit(submitReq());
    ASSERT_TRUE(running.isOk() && running->accepted);
    for (int spin = 0; spin < 200 && gate->running.load() == 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    auto queued = client.submit(submitReq());
    ASSERT_TRUE(queued.isOk() && queued->accepted);

    daemon.requestDrain(); // what the SIGTERM handler calls

    // New admissions are refused with an explicit "draining" reason.
    util::Result<SubmitResult> refused(SubmitResult{});
    for (int spin = 0; spin < 200; ++spin) {
        refused = client.submit(submitReq());
        ASSERT_TRUE(refused.isOk());
        if (!refused->accepted)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_FALSE(refused->accepted);
    EXPECT_NE(refused->refusal.find("draining"), std::string::npos);

    // The queued job is canceled without ever running; the running one
    // observes its JobControl cancel and checkpoints.
    auto qrep = client.wait(queued->jobId, 30'000);
    ASSERT_TRUE(qrep.isOk()) << qrep.status().toString();
    EXPECT_EQ(qrep->state, JobState::Canceled);
    auto rrep = client.wait(running->jobId, 30'000);
    ASSERT_TRUE(rrep.isOk()) << rrep.status().toString();
    EXPECT_EQ(rrep->state, JobState::Canceled);
    EXPECT_EQ(rrep->detail, "drained; checkpointed");

    daemon.waitDrained(); // must return: all jobs are final

    auto stats = daemon.statsSnapshot();
    EXPECT_EQ(stats.canceled, 2u);
    EXPECT_GE(stats.drainRejected, 1u);
    daemon.stop();
}

TEST_F(DaemonTest, ShutdownRequestDrainsLikeSigterm)
{
    cfg.executor = instantDone;
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());
    ServiceClient client(cfg.socketPath);
    ASSERT_TRUE(client.shutdownDaemon().isOk());
    daemon.waitDrained();
    auto refused = client.submit(submitReq());
    ASSERT_TRUE(refused.isOk());
    EXPECT_FALSE(refused->accepted);
    daemon.stop();
}

TEST_F(DaemonTest, FourConcurrentClientsAllComplete)
{
    cfg.executor = instantDone;
    cfg.runners = 2;
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());

    std::atomic<int> ok{0};
    std::vector<std::thread> clients;
    for (int i = 0; i < 4; ++i) {
        clients.emplace_back([this, i, &ok] {
            ServiceClient client(cfg.socketPath);
            std::string wl = "wl" + std::to_string(i);
            auto sub = client.submit(submitReq(wl.c_str()));
            if (!sub.isOk() || !sub->accepted)
                return;
            auto rep = client.wait(sub->jobId, 30'000);
            if (rep.isOk() && rep->state == JobState::Done &&
                rep->reportText == "report for " + wl + "\n")
                ++ok;
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(ok.load(), 4);

    auto stats = daemon.statsSnapshot();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.completed, 4u);
    daemon.stop();
}

TEST_F(DaemonTest, ThrowingExecutorFailsTheJobNotTheDaemon)
{
    std::atomic<int> calls{0};
    cfg.executor = [&calls](const JobRequest &,
                            core::JobControl &) -> JobOutcome {
        if (calls++ == 0)
            throw std::runtime_error("executor bug");
        JobOutcome out;
        out.state = JobState::Done;
        out.exitCode = 0;
        out.reportText = "ok\n";
        return out;
    };
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());

    ServiceClient client(cfg.socketPath);
    auto first = client.submit(submitReq());
    ASSERT_TRUE(first.isOk() && first->accepted);
    auto rep1 = client.wait(first->jobId, 30'000);
    ASSERT_TRUE(rep1.isOk());
    EXPECT_EQ(rep1->state, JobState::Failed);
    EXPECT_NE(rep1->detail.find("executor threw"), std::string::npos);

    // The daemon survives and runs the next job normally.
    auto second = client.submit(submitReq());
    ASSERT_TRUE(second.isOk() && second->accepted);
    auto rep2 = client.wait(second->jobId, 30'000);
    ASSERT_TRUE(rep2.isOk());
    EXPECT_EQ(rep2->state, JobState::Done);
    daemon.stop();
}

TEST_F(DaemonTest, StatsEndpointExposesTheRequiredGauges)
{
    cfg.executor = instantDone;
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());
    ServiceClient client(cfg.socketPath);
    auto sub = client.submit(submitReq());
    ASSERT_TRUE(sub.isOk() && sub->accepted);
    auto rep = client.wait(sub->jobId, 30'000);
    ASSERT_TRUE(rep.isOk());

    auto stats = client.stats();
    ASSERT_TRUE(stats.isOk()) << stats.status().toString();
    auto find = [&](const char *name) -> const uint64_t * {
        for (const auto &kv : *stats)
            if (kv.first == name)
                return &kv.second;
        return nullptr;
    };
    for (const char *name :
         {"queue-depth", "queue-bound", "draining", "submitted",
          "overloaded-rejections", "completed", "degraded-reports",
          "cache-hits", "cache-misses", "cache-evictions",
          "worker-retries", "worker-kills", "bad-frames"}) {
        EXPECT_NE(find(name), nullptr) << "missing stat " << name;
    }
    EXPECT_EQ(*find("submitted"), 1u);
    EXPECT_EQ(*find("completed"), 1u);
    EXPECT_EQ(*find("queue-depth"), 0u);
    EXPECT_EQ(*find("draining"), 0u);
    daemon.stop();
}

TEST_F(DaemonTest, StopIsIdempotentAndSocketIsRemoved)
{
    cfg.executor = instantDone;
    ServiceDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start().isOk());
    EXPECT_TRUE(fs::exists(cfg.socketPath));
    daemon.stop();
    daemon.stop(); // second stop must be a no-op
    EXPECT_FALSE(fs::exists(cfg.socketPath));
}

} // namespace
} // namespace service
} // namespace strober
