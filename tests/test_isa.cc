/**
 * @file
 * Tests for the RV32IM encoder/decoder, the assembler, and the golden ISS.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/encoding.h"
#include "isa/iss.h"
#include "isa/memmap.h"
#include "stats/rng.h"
#include "util/logging.h"

namespace strober {
namespace isa {
namespace {

TEST(Encoding, RTypeRoundTrip)
{
    uint32_t raw = encodeR(0x20, 3, 2, 0, 1, 0x33); // sub x1, x2, x3
    DecodedInst d = decode(raw);
    EXPECT_EQ(d.op, Opcode::Sub);
    EXPECT_EQ(d.rd, 1);
    EXPECT_EQ(d.rs1, 2);
    EXPECT_EQ(d.rs2, 3);
}

TEST(Encoding, ITypeImmediateSignExtends)
{
    DecodedInst d = decode(encodeI(-4, 5, 0, 6, 0x13)); // addi x6, x5, -4
    EXPECT_EQ(d.op, Opcode::Addi);
    EXPECT_EQ(d.imm, -4);
    d = decode(encodeI(2047, 5, 0, 6, 0x13));
    EXPECT_EQ(d.imm, 2047);
    d = decode(encodeI(-2048, 5, 0, 6, 0x13));
    EXPECT_EQ(d.imm, -2048);
}

class BranchOffsetSweep : public ::testing::TestWithParam<int32_t> {};

TEST_P(BranchOffsetSweep, BTypeRoundTrip)
{
    int32_t off = GetParam();
    DecodedInst d = decode(encodeB(off, 2, 1, 0, 0x63));
    EXPECT_EQ(d.op, Opcode::Beq);
    EXPECT_EQ(d.imm, off);
}

INSTANTIATE_TEST_SUITE_P(Offsets, BranchOffsetSweep,
                         ::testing::Values(-4096, -2, 0, 2, 16, 2046, 4094));

class JalOffsetSweep : public ::testing::TestWithParam<int32_t> {};

TEST_P(JalOffsetSweep, JTypeRoundTrip)
{
    int32_t off = GetParam();
    DecodedInst d = decode(encodeJ(off, 1, 0x6f));
    EXPECT_EQ(d.op, Opcode::Jal);
    EXPECT_EQ(d.imm, off);
}

INSTANTIATE_TEST_SUITE_P(Offsets, JalOffsetSweep,
                         ::testing::Values(-(1 << 20), -2048, -2, 0, 2, 4096,
                                           (1 << 20) - 2));

TEST(Encoding, STypeRoundTrip)
{
    DecodedInst d = decode(encodeS(-12, 7, 8, 2, 0x23)); // sw x7, -12(x8)
    EXPECT_EQ(d.op, Opcode::Sw);
    EXPECT_EQ(d.imm, -12);
    EXPECT_EQ(d.rs1, 8);
    EXPECT_EQ(d.rs2, 7);
}

TEST(Encoding, UTypeRoundTrip)
{
    DecodedInst d = decode(encodeU(0xdeadb000, 3, 0x37));
    EXPECT_EQ(d.op, Opcode::Lui);
    EXPECT_EQ(static_cast<uint32_t>(d.imm), 0xdeadb000u);
}

TEST(Encoding, MulDivDecodes)
{
    DecodedInst d = decode(encodeR(0x01, 2, 1, 0, 3, 0x33));
    EXPECT_EQ(d.op, Opcode::Mul);
    EXPECT_TRUE(d.isMulDiv());
    d = decode(encodeR(0x01, 2, 1, 5, 3, 0x33));
    EXPECT_EQ(d.op, Opcode::Divu);
}

TEST(Encoding, PredicatesAndIllegal)
{
    EXPECT_TRUE(decode(encodeI(0, 1, 2, 3, 0x03)).isLoad());
    EXPECT_TRUE(decode(encodeS(0, 1, 2, 2, 0x23)).isStore());
    EXPECT_TRUE(decode(encodeB(0, 1, 2, 0, 0x63)).isBranch());
    EXPECT_EQ(decode(0xffffffff).op, Opcode::Illegal);
    EXPECT_EQ(decode(0).op, Opcode::Illegal);
    // x0-destination writes are suppressed.
    EXPECT_FALSE(decode(encodeI(0, 0, 0, 0, 0x13)).writesRd());
}

TEST(Encoding, Disassemble)
{
    EXPECT_EQ(disassemble(encodeI(-4, 2, 0, 1, 0x13)), "addi x1, x2, -4");
    EXPECT_EQ(disassemble(encodeR(0, 3, 2, 0, 1, 0x33)), "add x1, x2, x3");
    EXPECT_EQ(disassemble(encodeS(8, 5, 4, 2, 0x23)), "sw x5, 8(x4)");
    EXPECT_EQ(disassemble(0x00000073u), "ecall");
}

TEST(Assembler, MinimalProgram)
{
    Program p = assemble(R"(
        start:
            addi x1, x0, 5    # x1 = 5
            addi x2, x0, 7
            add  x3, x1, x2
        done:
            j done
    )");
    EXPECT_EQ(p.base, 0u);
    EXPECT_EQ(p.words.size(), 4u);
    EXPECT_EQ(p.symbol("start"), 0u);
    EXPECT_EQ(p.symbol("done"), 12u);
    EXPECT_EQ(decode(p.words[2]).op, Opcode::Add);
    // `j done` at address 12 targets itself: offset 0.
    DecodedInst j = decode(p.words[3]);
    EXPECT_EQ(j.op, Opcode::Jal);
    EXPECT_EQ(j.imm, 0);
    EXPECT_EQ(j.rd, 0);
}

TEST(Assembler, LiExpansion)
{
    Program small = assemble("li a0, 100\n");
    EXPECT_EQ(small.words.size(), 1u);
    Program big = assemble("li a0, 0x12345678\n");
    EXPECT_EQ(big.words.size(), 2u);
    Program neg = assemble("li a0, -1\n");
    EXPECT_EQ(neg.words.size(), 1u);

    // Verify the lui+addi pair reconstructs the value on the ISS.
    Iss iss;
    iss.loadProgram(big);
    iss.step();
    iss.step();
    EXPECT_EQ(iss.reg(10), 0x12345678u);
}

TEST(Assembler, LiHighBitPattern)
{
    // Values whose low 12 bits >= 0x800 need the +0x800 rounding trick.
    for (uint32_t v : {0x12345fffu, 0x80000000u, 0xfffff800u}) {
        Program p = assemble(strfmt("li a0, %d\n", static_cast<int32_t>(v)));
        Iss iss;
        iss.loadProgram(p);
        while (iss.instret() < p.words.size())
            iss.step();
        EXPECT_EQ(iss.reg(10), v);
    }
}

TEST(Assembler, DataDirectives)
{
    Program p = assemble(R"(
            j code
        table:
            .word 1, 2, 3
            .align 16
        aligned:
            .word 0xdeadbeef
            .space 8
        code:
            nop
    )");
    EXPECT_EQ(p.symbol("table"), 4u);
    EXPECT_EQ(p.symbol("aligned") % 16, 0u);
    uint32_t ai = p.symbol("aligned") / 4;
    EXPECT_EQ(p.words[ai], 0xdeadbeefu);
    EXPECT_EQ(p.words[1], 1u);
    EXPECT_EQ(p.symbol("code"), p.symbol("aligned") + 4 + 8);
}

TEST(Assembler, SymbolArithmetic)
{
    Program p = assemble(R"(
        base:
            .word 1, 2, 3, 4
        code:
            li a0, base+8
    )");
    Iss iss;
    iss.loadProgram(p);
    iss.setPc(p.symbol("code"));
    iss.step();
    iss.step();
    EXPECT_EQ(iss.reg(10), 8u);
}

TEST(Assembler, AbiRegisterNames)
{
    Program p = assemble("add sp, ra, t6\n");
    DecodedInst d = decode(p.words[0]);
    EXPECT_EQ(d.rd, 2);
    EXPECT_EQ(d.rs1, 1);
    EXPECT_EQ(d.rs2, 31);
}

TEST(AssemblerDeath, Errors)
{
    EXPECT_EXIT(assemble("frobnicate x1, x2\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
    EXPECT_EXIT(assemble("j nowhere\n"), ::testing::ExitedWithCode(1),
                "undefined symbol");
    EXPECT_EXIT(assemble("addi x1, x0, 5000\n"),
                ::testing::ExitedWithCode(1), "12-bit");
    EXPECT_EXIT(assemble("a:\na:\n nop\n"), ::testing::ExitedWithCode(1),
                "duplicate label");
    EXPECT_EXIT(assemble("lw x1, x2\n"), ::testing::ExitedWithCode(1),
                "imm\\(reg\\)");
}

TEST(Iss, SumLoopAndMmioExit)
{
    Program p = assemble(R"(
            li a0, 0          # sum
            li a1, 1          # i
            li a2, 11
        loop:
            add a0, a0, a1
            addi a1, a1, 1
            bne a1, a2, loop
            li t0, 0x40000000 # MMIO exit
            sw a0, 0(t0)
        spin:
            j spin
    )");
    Iss iss;
    iss.loadProgram(p);
    iss.run();
    EXPECT_TRUE(iss.halted());
    EXPECT_EQ(iss.exitCode(), 55u);
}

TEST(Iss, ConsoleOutput)
{
    Program p = assemble(R"(
            li t0, 0x40000004
            li t1, 72          # 'H'
            sw t1, 0(t0)
            li t1, 105         # 'i'
            sw t1, 0(t0)
            li a0, 0
            ecall
    )");
    Iss iss;
    iss.loadProgram(p);
    iss.run();
    EXPECT_EQ(iss.consoleOutput(), "Hi");
    EXPECT_EQ(iss.exitCode(), 0u);
}

TEST(Iss, ByteHalfwordAccess)
{
    Program p = assemble(R"(
        data:
            .word 0x80ff7f01
        code:
            la   t0, data
            lb   a0, 0(t0)    # 0x01
            lb   a1, 1(t0)    # 0x7f
            lb   a2, 2(t0)    # 0xff -> -1
            lbu  a3, 2(t0)    # 0xff
            lh   a4, 2(t0)    # 0x80ff -> sign-extended
            lhu  a5, 2(t0)    # 0x80ff
            sb   a1, 3(t0)
            lw   a6, 0(t0)    # 0x7fff7f01
            ecall
    )");
    Iss iss;
    iss.loadProgram(p);
    iss.setPc(p.symbol("code"));
    iss.run();
    EXPECT_EQ(iss.reg(10), 1u);
    EXPECT_EQ(iss.reg(11), 0x7fu);
    EXPECT_EQ(iss.reg(12), 0xffffffffu);
    EXPECT_EQ(iss.reg(13), 0xffu);
    EXPECT_EQ(iss.reg(14), 0xffff80ffu);
    EXPECT_EQ(iss.reg(15), 0x80ffu);
    EXPECT_EQ(iss.reg(16), 0x7fff7f01u);
}

TEST(Iss, MulDivCorners)
{
    Program p = assemble(R"(
            li   t0, -7
            li   t1, 3
            mul  a0, t0, t1     # -21
            mulh a1, t0, t1     # high of -21 = -1
            li   t2, 0
            div  a2, t0, t2     # div by zero -> -1
            rem  a3, t0, t2     # rem by zero -> rs1
            li   t3, 0x80000000
            li   t4, -1
            div  a4, t3, t4     # overflow -> 0x80000000
            rem  a5, t3, t4     # overflow -> 0
            divu a6, t0, t1     # large unsigned / 3
            ecall
    )");
    Iss iss;
    iss.loadProgram(p);
    iss.run();
    EXPECT_EQ(iss.reg(10), static_cast<uint32_t>(-21));
    EXPECT_EQ(iss.reg(11), UINT32_MAX);
    EXPECT_EQ(iss.reg(12), UINT32_MAX);
    EXPECT_EQ(iss.reg(13), static_cast<uint32_t>(-7));
    EXPECT_EQ(iss.reg(14), 0x80000000u);
    EXPECT_EQ(iss.reg(15), 0u);
    EXPECT_EQ(iss.reg(16), static_cast<uint32_t>(-7) / 3);
}

TEST(Iss, FunctionCallAndStack)
{
    Program p = assemble(R"(
            li   sp, 0x10000
            li   a0, 10
            call fact
            mv   s0, a0
            li   t0, 0x40000000
            sw   s0, 0(t0)
        hang:
            j hang

        # a0 = a0! (recursive)
        fact:
            addi sp, sp, -8
            sw   ra, 4(sp)
            sw   a0, 0(sp)
            li   t0, 2
            blt  a0, t0, fact_base
            addi a0, a0, -1
            call fact
            lw   t1, 0(sp)
            mul  a0, a0, t1
            lw   ra, 4(sp)
            addi sp, sp, 8
            ret
        fact_base:
            li   a0, 1
            lw   ra, 4(sp)
            addi sp, sp, 8
            ret
    )");
    Iss iss;
    iss.loadProgram(p);
    iss.run();
    EXPECT_EQ(iss.exitCode(), 3628800u); // 10!
}

TEST(Iss, CsrReadsInstret)
{
    Program p = assemble(R"(
            nop
            nop
            rdcycle a0
            rdinstret a1
            ecall
    )");
    Iss iss;
    iss.loadProgram(p);
    iss.run();
    EXPECT_EQ(iss.reg(10), 2u); // untimed: cycle == instret
    EXPECT_EQ(iss.reg(11), 3u);
}

TEST(Iss, CommitRecordsWrites)
{
    Program p = assemble("addi x5, x0, 9\nsw x5, 0(x0)\n ecall\n");
    Iss iss;
    iss.loadProgram(p);
    Commit c1 = iss.step();
    EXPECT_TRUE(c1.wroteRd);
    EXPECT_EQ(c1.rd, 5);
    EXPECT_EQ(c1.rdValue, 9u);
    Commit c2 = iss.step();
    EXPECT_FALSE(c2.wroteRd);
    EXPECT_EQ(iss.readWord(0) & 0xffffu, 9u & 0xffffu);
}

TEST(IssDeath, Traps)
{
    Program p = assemble(".word 0xffffffff\n");
    Iss iss;
    iss.loadProgram(p);
    EXPECT_EXIT(iss.step(), ::testing::ExitedWithCode(1), "illegal");

    Program mis = assemble("li t0, 2\nlw a0, 0(t0)\n");
    Iss iss2;
    iss2.loadProgram(mis);
    iss2.step();
    EXPECT_EXIT(iss2.step(), ::testing::ExitedWithCode(1), "misaligned");
}

/** Differential fuzz: random arithmetic instruction streams vs. C semantics
 *  would duplicate the ISS itself; instead check the ISS against encoded
 *  instruction round-trips for PC bookkeeping. */
TEST(Iss, PcAdvancesLinearly)
{
    std::string src;
    for (int i = 0; i < 50; ++i)
        src += "addi x1, x1, 1\n";
    src += "ecall\n";
    Program p = assemble(src);
    Iss iss;
    iss.loadProgram(p);
    for (int i = 0; i < 50; ++i) {
        Commit c = iss.step();
        EXPECT_EQ(c.pc, static_cast<uint32_t>(4 * i));
    }
    EXPECT_EQ(iss.reg(1), 50u);
}

} // namespace
} // namespace isa
} // namespace strober
