/**
 * @file
 * Streaming sampling pipeline tests (src/core/streaming.h plus the
 * fame::SampleObserver seam): replay overlapping the fast simulation
 * must never change the answer.
 *
 * Contracts under test:
 *  - The observer protocol: every capture published exactly once, in
 *    capture order; eviction notices precede the replacement capture;
 *    generations name captures uniquely; the trailing flush publishes a
 *    capture that completed exactly at the final cycle.
 *  - Bit-identity: with no early stop, estimateStreaming() produces the
 *    byte-identical report (deterministic rendering included) to
 *    run() + estimate(), for any worker count, with and without
 *    fault-injection degradation.
 *  - Eviction cancel semantics: superseded generations never reach the
 *    final report, and the superseded count is exactly the reservoir's
 *    replacement count.
 *  - Adaptive termination: a ci-bound stops the run early with a valid
 *    report over the completed subset.
 */

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/energy_sim.h"
#include "core/harness.h"
#include "farm/report.h"
#include "fame/sampler.h"
#include "inject/fault_injector.h"
#include "rtl/builder.h"
#include "stats/rng.h"

namespace strober {
namespace core {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::MemHandle;
using rtl::Scope;
using rtl::Signal;

/** Same small DUT the farm tests use: regs + async/sync memories. */
Design
makeDut()
{
    Builder b("dut");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Signal acc, back, tdata;
    {
        Scope core(b, "engine");
        acc = b.reg("acc", 16, 0);
        b.next(acc, acc + b.pad(in, 16));
        MemHandle scratch = b.mem("scratch", 8, 32, false);
        Signal ptr = b.reg("ptr", 5, 0);
        b.next(ptr, ptr + b.lit(1, 5), wen);
        b.memWrite(scratch, ptr, in, wen);
        back = b.memRead(scratch, ptr);
        MemHandle table = b.mem("table", 16, 16, true);
        tdata = b.memReadSync(table, acc.bits(3, 0));
        b.memWrite(table, acc.bits(3, 0), acc, wen);
    }
    b.output("acc", acc);
    b.output("back", back);
    b.output("tdata", tdata);
    return b.finish();
}

class NoiseDriver : public HostDriver
{
  public:
    NoiseDriver(uint64_t seed, uint64_t cycles) : rng(seed), budget(cycles)
    {
    }

    void
    drive(TargetHarness &h) override
    {
        h.setInput(0, rng.nextBounded(256));
        h.setInput(1, rng.nextBounded(2));
        --budget;
    }

    bool done() const override { return budget == 0; }

  private:
    stats::Rng rng;
    uint64_t budget;
};

EnergySimulator::Config
standardConfig()
{
    EnergySimulator::Config cfg;
    cfg.sampleSize = 10;
    cfg.replayLength = 64;
    return cfg;
}

EnergyReport
phasedReport(const Design &d, EnergySimulator::Config cfg,
             uint64_t cycles, RunStats *outRun = nullptr)
{
    EnergySimulator es(d, cfg);
    NoiseDriver driver(42, cycles);
    RunStats run = es.run(driver, UINT64_MAX);
    if (outRun)
        *outRun = run;
    return es.estimate();
}

// ---------------------------------------------------------------------------
// Observer protocol
// ---------------------------------------------------------------------------

/** Records every streamed event for later inspection. */
class RecordingObserver : public fame::SampleObserver
{
  public:
    struct Event
    {
        bool evict = false;
        size_t slot = 0;
        uint64_t generation = 0;
        std::shared_ptr<const fame::ReplayableSnapshot> snap;
    };
    std::vector<Event> events;

    void
    onSnapshotReady(size_t slot, uint64_t generation,
                    std::shared_ptr<const fame::ReplayableSnapshot>
                        snap) override
    {
        events.push_back(Event{false, slot, generation, std::move(snap)});
    }

    void
    onSlotEvicted(size_t slot, uint64_t generation) override
    {
        events.push_back(Event{true, slot, generation, nullptr});
    }
};

TEST(SampleObserver, PublishOnceEvictBeforeReplaceAndTrailingFlush)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    EnergySimulator es(d, cfg);
    RecordingObserver obs;
    es.sampler().setObserver(&obs);
    NoiseDriver driver(42, 10'000);
    RunStats run = es.run(driver, UINT64_MAX);
    es.sampler().flushPending();
    es.sampler().flushPending(); // idempotent
    es.sampler().setObserver(nullptr);

    // Every (slot, generation) published exactly once, every eviction
    // names a previously published capture, and generations per slot
    // count up from 1 without gaps.
    std::set<std::pair<size_t, uint64_t>> published, evicted;
    std::vector<uint64_t> lastGen;
    for (const RecordingObserver::Event &e : obs.events) {
        auto key = std::make_pair(e.slot, e.generation);
        if (e.evict) {
            EXPECT_TRUE(published.count(key))
                << "eviction of a never-published capture";
            EXPECT_TRUE(evicted.insert(key).second)
                << "double eviction of slot " << e.slot;
        } else {
            EXPECT_TRUE(published.insert(key).second)
                << "double publish of slot " << e.slot;
            EXPECT_TRUE(e.snap && e.snap->complete);
            if (lastGen.size() <= e.slot)
                lastGen.resize(e.slot + 1, 0);
            EXPECT_EQ(e.generation, lastGen[e.slot] + 1)
                << "generation gap in slot " << e.slot;
            lastGen[e.slot] = e.generation;
        }
    }

    // The set difference published - evicted is exactly the final
    // reservoir: same slots, same generations, complete snapshots.
    std::vector<size_t> slots = es.sampler().completeSlots();
    EXPECT_EQ(published.size() - evicted.size(), slots.size());
    for (size_t slot : slots) {
        auto key = std::make_pair(slot, es.sampler().generationOf(slot));
        EXPECT_TRUE(published.count(key));
        EXPECT_FALSE(evicted.count(key));
    }

    // Every record event was streamed (the trailing capture completed
    // at the final boundary and must have been flushed).
    EXPECT_EQ(published.size(), run.recordCount);
}

TEST(SampleObserver, EvictedSnapshotPointerStaysValid)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.sampleSize = 4; // high replacement pressure
    EnergySimulator es(d, cfg);
    RecordingObserver obs;
    es.sampler().setObserver(&obs);
    NoiseDriver driver(7, 6'000);
    es.run(driver, UINT64_MAX);
    es.sampler().flushPending();
    es.sampler().setObserver(nullptr);

    // A downstream consumer may hold a published snapshot long after
    // its slot was recaptured; the shared_ptr must still dereference to
    // the ORIGINAL complete capture.
    size_t evictions = 0;
    for (const RecordingObserver::Event &e : obs.events)
        evictions += e.evict;
    ASSERT_GT(evictions, 0u);
    for (const RecordingObserver::Event &e : obs.events) {
        if (!e.evict) {
            ASSERT_TRUE(e.snap);
            EXPECT_TRUE(e.snap->complete);
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-identity: streamed == phased
// ---------------------------------------------------------------------------

/** Field-by-field bit-identity, minus wall clocks (which always differ). */
void
expectBitIdentical(const EnergyReport &a, const EnergyReport &b)
{
    EXPECT_EQ(a.averagePower.mean, b.averagePower.mean);
    EXPECT_EQ(a.averagePower.halfWidth, b.averagePower.halfWidth);
    EXPECT_EQ(a.population, b.population);
    EXPECT_EQ(a.snapshots, b.snapshots);
    EXPECT_EQ(a.droppedSnapshots, b.droppedSnapshots);
    EXPECT_EQ(a.replayMismatches, b.replayMismatches);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.statusMessage, b.statusMessage);
    // The deterministic rendering is the real contract: it is what the
    // CI smoke `cmp`s between streamed and phased farm runs.
    EXPECT_EQ(farm::renderReportDeterministic(a),
              farm::renderReportDeterministic(b));
}

TEST(StreamingPipeline, BitIdenticalToPhasedForAnyWorkerCount)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    EnergyReport phased = phasedReport(d, cfg, 10'000);
    ASSERT_TRUE(phased.valid);

    for (unsigned workers : {1u, 2u, 8u}) {
        EnergySimulator::Config scfg = cfg;
        scfg.parallelReplays = workers;
        EnergySimulator es(d, scfg);
        NoiseDriver driver(42, 10'000);
        EnergyReport streamed = es.estimateStreaming(driver, UINT64_MAX);
        EXPECT_FALSE(streamed.earlyStopped);
        expectBitIdentical(phased, streamed);
    }
}

TEST(StreamingPipeline, BitIdenticalUnderFaultInjection)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    // Stall plan keyed by final sample index: the streamed path must
    // re-replay any record whose provisional (slot) index differs from
    // its final compacted index, or the reports diverge.
    inject::StallPlan plan;
    for (size_t i = 0; i < cfg.sampleSize; i += 3)
        plan.stallSnapshot(i, 100'000);
    cfg.stallPlan = &plan;
    cfg.replayTimeoutCycles = 2'000; // stalled replays time out -> degrade
    cfg.maxDroppedSnapshots = cfg.sampleSize;

    EnergyReport phased = phasedReport(d, cfg, 10'000);
    for (unsigned workers : {1u, 4u}) {
        EnergySimulator::Config scfg = cfg;
        scfg.parallelReplays = workers;
        EnergySimulator es(d, scfg);
        NoiseDriver driver(42, 10'000);
        EnergyReport streamed = es.estimateStreaming(driver, UINT64_MAX);
        expectBitIdentical(phased, streamed);
    }
}

// ---------------------------------------------------------------------------
// Eviction cancel semantics
// ---------------------------------------------------------------------------

TEST(StreamingPipeline, SupersededCountMatchesReservoirReplacements)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.parallelReplays = 2;
    EnergySimulator es(d, cfg);
    NoiseDriver driver(42, 10'000);
    RunStats run;
    EnergyReport streamed = es.estimateStreaming(driver, UINT64_MAX, &run);
    ASSERT_TRUE(streamed.valid);

    // Every capture is published (flushPending covers the final
    // boundary), so replacements == records - survivors; each one was
    // canceled in the queue or discarded after replay, never reported.
    EXPECT_GT(run.recordCount, streamed.snapshots);
    EXPECT_EQ(streamed.supersededReplays,
              run.recordCount - streamed.snapshots);

    // And cancellation never changed the answer.
    EnergyReport phased = phasedReport(d, cfg, 10'000);
    expectBitIdentical(phased, streamed);
}

// ---------------------------------------------------------------------------
// Adaptive termination
// ---------------------------------------------------------------------------

TEST(StreamingPipeline, CiBoundStopsEarlyWithValidSubsetReport)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.sampleSize = 40;     // above the Eq. 8 floor of 30
    // Short intervals + one worker: captures outpace replay, so the
    // bound is crossed while part of the reservoir is still unreplayed
    // — the decision set is a strict subset.
    cfg.replayLength = 32;
    cfg.parallelReplays = 1;
    cfg.ciBound = 0.95;      // loose: stop as soon as the floor is met
    EnergySimulator es(d, cfg);
    const uint64_t cycles = 400'000;
    NoiseDriver driver(42, cycles);
    RunStats run;
    EnergyReport rep = es.estimateStreaming(driver, UINT64_MAX, &run);

    ASSERT_TRUE(rep.earlyStopped);
    EXPECT_TRUE(rep.valid);
    // The decision set is the completed subset: at least the floor, at
    // most the configured reservoir. (A strict subset is not guaranteed
    // on a single-core host — the worker can burst from under the floor
    // to a fully-replayed reservoir within one scheduling quantum — so
    // the strict fewer-than-reservoir property is asserted by the farm
    // streaming smoke, where replay is heavyweight.)
    EXPECT_GE(rep.snapshots, 30u);
    EXPECT_LE(rep.snapshots, cfg.sampleSize);
    EXPECT_GT(rep.averagePower.mean, 0.0);
    EXPECT_LT(rep.averagePower.relativeError(), cfg.ciBound);
    // The fast sim stopped before the driver ran out.
    EXPECT_LT(run.targetCycles, cycles);
    // And the rendering records the stop.
    std::string text = farm::renderReportDeterministic(rep);
    EXPECT_NE(text.find("early-stopped 1"), std::string::npos);
}

TEST(StreamingPipeline, CiBoundZeroNeverStopsEarly)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.parallelReplays = 4;
    EnergySimulator es(d, cfg);
    NoiseDriver driver(42, 10'000);
    RunStats run;
    EnergyReport rep = es.estimateStreaming(driver, UINT64_MAX, &run);
    EXPECT_FALSE(rep.earlyStopped);
    // The driver ran to its budget.
    EXPECT_EQ(run.targetCycles, 10'000u);
    std::string text = farm::renderReportDeterministic(rep);
    EXPECT_NE(text.find("early-stopped 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Phase wall clocks
// ---------------------------------------------------------------------------

TEST(StreamingPipeline, ReportsPhaseWallClocks)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.parallelReplays = 2;
    EnergySimulator es(d, cfg);
    NoiseDriver driver(42, 10'000);
    EnergyReport streamed = es.estimateStreaming(driver, UINT64_MAX);
    EXPECT_GT(streamed.fastSimWallSeconds, 0.0);
    EXPECT_GT(streamed.replayWallSeconds, 0.0);
    EXPECT_GE(streamed.overlapWallSeconds, 0.0);
    EXPECT_LE(streamed.overlapWallSeconds,
              std::min(streamed.fastSimWallSeconds,
                       streamed.replayWallSeconds) +
                  1e-9);

    // The phased path fills its clocks too (no overlap by definition).
    EnergyReport phased = phasedReport(d, cfg, 10'000);
    EXPECT_GT(phased.fastSimWallSeconds, 0.0);
    EXPECT_GT(phased.replayWallSeconds, 0.0);
    EXPECT_EQ(phased.overlapWallSeconds, 0.0);

    // Wall clocks are excluded from the deterministic rendering.
    EXPECT_EQ(farm::renderReportDeterministic(phased),
              farm::renderReportDeterministic(streamed));
}

} // namespace
} // namespace core
} // namespace strober
