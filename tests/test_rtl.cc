/**
 * @file
 * Unit tests for the netlist IR and the builder EDSL.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "rtl/builder.h"
#include "rtl/ir.h"

namespace strober {
namespace rtl {
namespace {

Design
makeCounter()
{
    Builder b("counter");
    Signal en = b.input("en", 1);
    Signal cnt = b.reg("cnt", 8, 0);
    b.next(cnt, cnt + b.lit(1, 8), en);
    b.output("out", cnt);
    return b.finish();
}

TEST(Builder, CounterChecksOut)
{
    Design d = makeCounter();
    EXPECT_EQ(d.regs().size(), 1u);
    EXPECT_EQ(d.inputs().size(), 1u);
    EXPECT_EQ(d.outputs().size(), 1u);
    EXPECT_NE(d.findInput("en"), kNoNode);
    EXPECT_EQ(d.findReg("cnt"), 0);
    EXPECT_EQ(d.findOutput("out"), 0);
    EXPECT_EQ(d.stateBits(), 8u);
}

TEST(Builder, ScopedNames)
{
    Builder b("top");
    Signal r0;
    {
        Scope core(b, "core");
        Scope fetch(b, "fetch");
        r0 = b.reg("pc", 32, 0);
        b.next(r0, r0);
    }
    Design d = b.finish();
    EXPECT_EQ(d.node(r0.id()).name, "core/fetch/pc");
    EXPECT_EQ(d.findReg("core/fetch/pc"), 0);
}

TEST(Builder, WireForwardReference)
{
    Builder b("fw");
    Signal w = b.wire("loopback", 8);
    Signal r = b.reg("r", 8, 3);
    b.next(r, w);
    b.assign(w, r + b.lit(1, 8));
    b.output("o", w);
    Design d = b.finish();
    EXPECT_EQ(d.node(w.id()).op, Op::Pad);
    EXPECT_NE(d.node(w.id()).args[0], kNoNode);
}

TEST(BuilderDeath, UnassignedWire)
{
    Builder b("bad");
    Signal w = b.wire("w", 4);
    b.output("o", w);
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1), "never assigned");
}

TEST(BuilderDeath, DoubleDrivenRegister)
{
    Builder b("bad");
    Signal r = b.reg("r", 4, 0);
    b.next(r, r);
    EXPECT_EXIT(b.next(r, r), ::testing::ExitedWithCode(1), "driven twice");
}

TEST(BuilderDeath, UndrivenRegister)
{
    Builder b("bad");
    b.reg("r", 4, 0);
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1),
                "no next-state driver");
}

TEST(BuilderDeath, WidthMismatch)
{
    Builder b("bad");
    Signal r = b.reg("r", 8, 0);
    Signal x = b.lit(1, 4);
    b.next(r, x); // 4-bit next for an 8-bit register
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1), "next width");
}

TEST(BuilderDeath, CombinationalCycle)
{
    Builder b("bad");
    Signal w = b.wire("w", 1);
    Signal inv = ~w;
    b.assign(w, inv);
    b.output("o", w);
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1),
                "combinational cycle");
}

TEST(BuilderDeath, OversizedLiteral)
{
    Builder b("bad");
    EXPECT_EXIT(b.lit(256, 8), ::testing::ExitedWithCode(1),
                "does not fit");
}

TEST(Builder, MuxSelectAndCat)
{
    Builder b("m");
    Signal s = b.input("s", 2);
    Signal a = b.lit(0xa, 4);
    Signal c = b.lit(0xc, 4);
    Signal sel = b.select(s, {a, c, a ^ c, a & c});
    b.output("y", sel);
    Signal wide = b.cat(a, c);
    EXPECT_EQ(wide.width(), 8u);
    b.output("w", wide);
    Design d = b.finish();
    EXPECT_GT(d.numNodes(), 6u);
}

TEST(Builder, ResizeSemantics)
{
    Builder b("r");
    Signal a = b.input("a", 8);
    EXPECT_EQ(b.resize(a, 8).id(), a.id()); // no-op returns same node
    EXPECT_EQ(b.resize(a, 16).width(), 16u);
    EXPECT_EQ(b.resize(a, 3).width(), 3u);
    b.output("o", b.resize(a, 16));
    b.finish();
}

TEST(Levelize, ArgsPrecedeUsers)
{
    Design d = makeCounter();
    std::vector<NodeId> order = levelize(d);
    ASSERT_EQ(order.size(), d.numNodes());
    std::vector<size_t> pos(d.numNodes());
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    for (NodeId id = 0; id < d.numNodes(); ++id) {
        const Node &n = d.node(id);
        if (n.op == Op::Reg || n.op == Op::Input || n.op == Op::Const ||
            n.op == Op::MemRead) {
            continue;
        }
        for (unsigned i = 0; i < opArity(n.op); ++i)
            EXPECT_LT(pos[n.args[i]], pos[id]);
    }
}

TEST(Design, MemoryBookkeeping)
{
    Builder b("m");
    Signal addr = b.input("addr", 4);
    Signal data = b.input("data", 8);
    Signal wen = b.input("wen", 1);
    MemHandle m = b.mem("ram", 8, 16, /*syncRead=*/true);
    Signal q = b.memReadSync(m, addr);
    b.memWrite(m, addr, data, wen);
    b.output("q", q);
    Design d = b.finish();
    ASSERT_EQ(d.mems().size(), 1u);
    EXPECT_EQ(d.findMem("ram"), 0);
    EXPECT_TRUE(d.mems()[0].syncRead);
    // 16x8 contents + one 8-bit sync read register.
    EXPECT_EQ(d.stateBits(), 16u * 8 + 8);
}

TEST(DesignDeath, MemAddressWidthMismatch)
{
    Builder b("m");
    Signal addr = b.input("addr", 3); // needs 4 bits for depth 16
    MemHandle m = b.mem("ram", 8, 16, false);
    Signal q = b.memRead(m, addr);
    b.output("q", q);
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1), "address width");
}

TEST(Design, DumpMentionsNamedNodes)
{
    Design d = makeCounter();
    std::string text = d.dump();
    EXPECT_NE(text.find("cnt"), std::string::npos);
    EXPECT_NE(text.find("output out"), std::string::npos);
}

TEST(Design, RetimeAnnotation)
{
    Builder b("rt");
    Signal x = b.input("x", 16);
    Signal s1 = b.reg("s1", 16, 0);
    Signal s2 = b.reg("s2", 16, 0);
    b.next(s1, x);
    b.next(s2, s1);
    b.output("y", s2);
    b.annotateRetimed("pipe", 2, {x}, s2, {s1, s2});
    Design d = b.finish();
    ASSERT_EQ(d.retimeRegions().size(), 1u);
    EXPECT_EQ(d.retimeRegions()[0].latency, 2u);
    EXPECT_EQ(d.retimeRegions()[0].regs.size(), 2u);
}

TEST(Op, NamesAndArity)
{
    EXPECT_STREQ(opName(Op::Add), "add");
    EXPECT_STREQ(opName(Op::Mux), "mux");
    EXPECT_EQ(opArity(Op::Mux), 3u);
    EXPECT_EQ(opArity(Op::Not), 1u);
    EXPECT_EQ(opArity(Op::Input), 0u);
    EXPECT_EQ(opArity(Op::Cat), 2u);
}

} // namespace
} // namespace rtl
} // namespace strober
