/**
 * @file
 * Unit tests for the netlist IR and the builder EDSL.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "rtl/builder.h"
#include "rtl/ir.h"
#include "rtl/opt.h"

namespace strober {
namespace rtl {
namespace {

Design
makeCounter()
{
    Builder b("counter");
    Signal en = b.input("en", 1);
    Signal cnt = b.reg("cnt", 8, 0);
    b.next(cnt, cnt + b.lit(1, 8), en);
    b.output("out", cnt);
    return b.finish();
}

TEST(Builder, CounterChecksOut)
{
    Design d = makeCounter();
    EXPECT_EQ(d.regs().size(), 1u);
    EXPECT_EQ(d.inputs().size(), 1u);
    EXPECT_EQ(d.outputs().size(), 1u);
    EXPECT_NE(d.findInput("en"), kNoNode);
    EXPECT_EQ(d.findReg("cnt"), 0);
    EXPECT_EQ(d.findOutput("out"), 0);
    EXPECT_EQ(d.stateBits(), 8u);
}

TEST(Builder, ScopedNames)
{
    Builder b("top");
    Signal r0;
    {
        Scope core(b, "core");
        Scope fetch(b, "fetch");
        r0 = b.reg("pc", 32, 0);
        b.next(r0, r0);
    }
    Design d = b.finish();
    EXPECT_EQ(d.node(r0.id()).name, "core/fetch/pc");
    EXPECT_EQ(d.findReg("core/fetch/pc"), 0);
}

TEST(Builder, WireForwardReference)
{
    Builder b("fw");
    Signal w = b.wire("loopback", 8);
    Signal r = b.reg("r", 8, 3);
    b.next(r, w);
    b.assign(w, r + b.lit(1, 8));
    b.output("o", w);
    Design d = b.finish();
    EXPECT_EQ(d.node(w.id()).op, Op::Pad);
    EXPECT_NE(d.node(w.id()).args[0], kNoNode);
}

TEST(BuilderDeath, UnassignedWire)
{
    Builder b("bad");
    Signal w = b.wire("w", 4);
    b.output("o", w);
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1), "never assigned");
}

TEST(BuilderDeath, DoubleDrivenRegister)
{
    Builder b("bad");
    Signal r = b.reg("r", 4, 0);
    b.next(r, r);
    EXPECT_EXIT(b.next(r, r), ::testing::ExitedWithCode(1), "driven twice");
}

TEST(BuilderDeath, UndrivenRegister)
{
    Builder b("bad");
    b.reg("r", 4, 0);
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1),
                "no next-state driver");
}

TEST(BuilderDeath, WidthMismatch)
{
    Builder b("bad");
    Signal r = b.reg("r", 8, 0);
    Signal x = b.lit(1, 4);
    b.next(r, x); // 4-bit next for an 8-bit register
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1), "next width");
}

TEST(BuilderDeath, CombinationalCycle)
{
    Builder b("bad");
    Signal w = b.wire("w", 1);
    Signal inv = ~w;
    b.assign(w, inv);
    b.output("o", w);
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1),
                "combinational cycle");
}

TEST(BuilderDeath, OversizedLiteral)
{
    Builder b("bad");
    EXPECT_EXIT(b.lit(256, 8), ::testing::ExitedWithCode(1),
                "does not fit");
}

TEST(Builder, MuxSelectAndCat)
{
    Builder b("m");
    Signal s = b.input("s", 2);
    Signal a = b.lit(0xa, 4);
    Signal c = b.lit(0xc, 4);
    Signal sel = b.select(s, {a, c, a ^ c, a & c});
    b.output("y", sel);
    Signal wide = b.cat(a, c);
    EXPECT_EQ(wide.width(), 8u);
    b.output("w", wide);
    Design d = b.finish();
    EXPECT_GT(d.numNodes(), 6u);
}

TEST(Builder, ResizeSemantics)
{
    Builder b("r");
    Signal a = b.input("a", 8);
    EXPECT_EQ(b.resize(a, 8).id(), a.id()); // no-op returns same node
    EXPECT_EQ(b.resize(a, 16).width(), 16u);
    EXPECT_EQ(b.resize(a, 3).width(), 3u);
    b.output("o", b.resize(a, 16));
    b.finish();
}

TEST(Levelize, ArgsPrecedeUsers)
{
    Design d = makeCounter();
    std::vector<NodeId> order = levelize(d);
    ASSERT_EQ(order.size(), d.numNodes());
    std::vector<size_t> pos(d.numNodes());
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    for (NodeId id = 0; id < d.numNodes(); ++id) {
        const Node &n = d.node(id);
        if (n.op == Op::Reg || n.op == Op::Input || n.op == Op::Const ||
            n.op == Op::MemRead) {
            continue;
        }
        for (unsigned i = 0; i < opArity(n.op); ++i)
            EXPECT_LT(pos[n.args[i]], pos[id]);
    }
}

TEST(Design, MemoryBookkeeping)
{
    Builder b("m");
    Signal addr = b.input("addr", 4);
    Signal data = b.input("data", 8);
    Signal wen = b.input("wen", 1);
    MemHandle m = b.mem("ram", 8, 16, /*syncRead=*/true);
    Signal q = b.memReadSync(m, addr);
    b.memWrite(m, addr, data, wen);
    b.output("q", q);
    Design d = b.finish();
    ASSERT_EQ(d.mems().size(), 1u);
    EXPECT_EQ(d.findMem("ram"), 0);
    EXPECT_TRUE(d.mems()[0].syncRead);
    // 16x8 contents + one 8-bit sync read register.
    EXPECT_EQ(d.stateBits(), 16u * 8 + 8);
}

TEST(DesignDeath, MemAddressWidthMismatch)
{
    Builder b("m");
    Signal addr = b.input("addr", 3); // needs 4 bits for depth 16
    MemHandle m = b.mem("ram", 8, 16, false);
    Signal q = b.memRead(m, addr);
    b.output("q", q);
    EXPECT_EXIT(b.finish(), ::testing::ExitedWithCode(1), "address width");
}

TEST(Design, DumpMentionsNamedNodes)
{
    Design d = makeCounter();
    std::string text = d.dump();
    EXPECT_NE(text.find("cnt"), std::string::npos);
    EXPECT_NE(text.find("output out"), std::string::npos);
}

TEST(Design, RetimeAnnotation)
{
    Builder b("rt");
    Signal x = b.input("x", 16);
    Signal s1 = b.reg("s1", 16, 0);
    Signal s2 = b.reg("s2", 16, 0);
    b.next(s1, x);
    b.next(s2, s1);
    b.output("y", s2);
    b.annotateRetimed("pipe", 2, {x}, s2, {s1, s2});
    Design d = b.finish();
    ASSERT_EQ(d.retimeRegions().size(), 1u);
    EXPECT_EQ(d.retimeRegions()[0].latency, 2u);
    EXPECT_EQ(d.retimeRegions()[0].regs.size(), 2u);
}

TEST(Op, NamesAndArity)
{
    EXPECT_STREQ(opName(Op::Add), "add");
    EXPECT_STREQ(opName(Op::Mux), "mux");
    EXPECT_EQ(opArity(Op::Mux), 3u);
    EXPECT_EQ(opArity(Op::Not), 1u);
    EXPECT_EQ(opArity(Op::Input), 0u);
    EXPECT_EQ(opArity(Op::Cat), 2u);
}

// --- EvalPlan optimization passes (rtl/opt.h) ---------------------------

bool
hotProgramWritesSlot(const EvalPlan &plan, SlotId slot)
{
    for (const EvalStep &s : plan.hotProgram)
        if (s.dst == slot)
            return true;
    return false;
}

TEST(EvalPlan, ConstantConesFoldToPresetSlots)
{
    Builder b("fold");
    Signal k = (b.lit(3, 8) + b.lit(4, 8)) + b.lit(7, 8);
    b.output("k", k);
    Signal in = b.input("in", 8);
    b.output("sum", in + k);
    Design d = b.finish();

    EvalPlan plan = buildEvalPlan(d);
    EXPECT_GT(plan.stats.folded, 0u);
    // The folded output reads a preset constant slot: nothing in the
    // per-cycle program computes it, and the slot is initialized to 14.
    SlotId slot = plan.slotOf[d.outputs()[0].node];
    EXPECT_FALSE(hotProgramWritesSlot(plan, slot));
    bool found = false;
    for (const auto &init : plan.slotInit) {
        if (init.first == slot) {
            EXPECT_EQ(init.second, 14u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(plan.coldNode[d.outputs()[0].node], 0u);
}

TEST(EvalPlan, CseMergesDuplicateExpressions)
{
    Builder b("cse");
    Signal a = b.input("a", 16);
    Signal c = b.input("b", 16);
    b.output("x", a + c);
    b.output("y", a + c); // structurally identical: one representative
    b.output("z", c + a); // commutative: canonicalizes to the same rep
    Design d = b.finish();

    EvalPlan plan = buildEvalPlan(d);
    EXPECT_GE(plan.stats.aliased, 2u);
    SlotId sx = plan.slotOf[d.outputs()[0].node];
    EXPECT_EQ(plan.slotOf[d.outputs()[1].node], sx);
    EXPECT_EQ(plan.slotOf[d.outputs()[2].node], sx);
}

TEST(EvalPlan, WidthChangingAliasesDontConfuseCse)
{
    // RedAnd over a 4-bit value is NOT RedAnd over the same value
    // zero-padded to 8 bits (the padded one can never be all-ones).
    // Pad aliases to its source slot, so only the recorded operand
    // width can keep these apart.
    Builder b("redand");
    Signal a = b.input("a", 4);
    b.output("narrow", b.redAnd(a));
    b.output("wide", b.redAnd(b.pad(a, 8)));
    Design d = b.finish();

    EvalPlan plan = buildEvalPlan(d);
    EXPECT_NE(plan.slotOf[d.outputs()[0].node],
              plan.slotOf[d.outputs()[1].node]);
}

TEST(EvalPlan, DeadConesGoCold)
{
    Builder b("dead");
    Signal a = b.input("a", 32);
    Signal c = b.input("b", 32);
    Signal dead = (a ^ c) + b.lit(7, 32); // never used by any root
    Signal live = a + c;
    b.output("live", live);
    Design d = b.finish();

    EvalPlan plan = buildEvalPlan(d);
    EXPECT_GT(plan.stats.cold, 0u);
    EXPECT_NE(plan.coldNode[dead.id()], 0u);
    EXPECT_EQ(plan.coldNode[live.id()], 0u);
    // Cold nodes are scheduled in the cold program, not the hot one.
    EXPECT_FALSE(hotProgramWritesSlot(plan, plan.slotOf[dead.id()]));
}

TEST(EvalPlan, EveryNodeHasAValidSlotAndTopologicalHotOrder)
{
    Builder b("shape");
    Signal a = b.input("a", 16);
    Signal s = b.reg("s", 16, 1);
    b.next(s, s + a);
    MemHandle m = b.mem("m", 16, 8, /*syncRead=*/false);
    b.memWrite(m, a.bits(2, 0), s, b.lit(1, 1));
    b.output("o", b.memRead(m, a.bits(2, 0)) ^ s);
    Design d = b.finish();

    EvalPlan plan = buildEvalPlan(d);
    ASSERT_EQ(plan.slotOf.size(), d.numNodes());
    for (size_t n = 0; n < d.numNodes(); ++n)
        EXPECT_LT(plan.slotOf[n], plan.numSlots) << "node " << n;
    // Topological slot order within the hot program: each step writes a
    // slot strictly greater than any step before it (the property the
    // activity bitmap's ascending drain relies on).
    SlotId prev = 0;
    for (const EvalStep &step : plan.hotProgram) {
        EXPECT_GT(step.dst, prev);
        prev = step.dst;
    }
}

} // namespace
} // namespace rtl
} // namespace strober
