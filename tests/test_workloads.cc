/**
 * @file
 * Workload validation: every benchmark self-checks on the golden ISS at
 * construction; here each one also runs to completion on the in-order
 * RTL SoC under full commit-trace lockstep, and a sample runs on the
 * 2-wide OoO SoC. The pointer-chase kernel's latency behaviour (Figure 7
 * input) is sanity-checked against cache capacity.
 */

#include <gtest/gtest.h>

#include "core/harness.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "isa/iss.h"
#include "workloads/workloads.h"

namespace strober {
namespace workloads {
namespace {

const rtl::Design &
rocketDesign()
{
    static rtl::Design d = cores::buildSoc(cores::SocConfig::rocket());
    return d;
}

uint64_t
runOn(const rtl::Design &design, const Workload &w, uint32_t *exitCode,
      bool check = true)
{
    cores::SocDriver::Config cfg;
    cfg.checkCommits = check;
    cores::SocDriver driver(design, w.program, cfg);
    core::RtlHarness harness(design);
    core::runLoop(harness, driver, w.maxCycles);
    EXPECT_TRUE(driver.done()) << w.name << " did not finish";
    if (exitCode)
        *exitCode = driver.exitCode();
    return harness.cycles();
}

class MicrobenchOnRocket
    : public ::testing::TestWithParam<std::string> {};

TEST_P(MicrobenchOnRocket, CompletesWithExpectedChecksum)
{
    Workload w = byName(GetParam());
    EXPECT_NE(w.expectedExit, 0u) << "degenerate checksum";
    uint32_t exit = 0;
    uint64_t cycles = runOn(rocketDesign(), w, &exit);
    EXPECT_EQ(exit, w.expectedExit) << w.name;
    EXPECT_GT(cycles, 1000u);
    EXPECT_LT(cycles, w.maxCycles);
}

INSTANTIATE_TEST_SUITE_P(All, MicrobenchOnRocket,
                         ::testing::Values("vvadd", "towers", "dhrystone",
                                           "qsort", "spmv", "dgemm",
                                           "coremark", "linuxboot",
                                           "gcc"));

TEST(Workloads, CaseStudiesRunOnBoom2w)
{
    static rtl::Design boom2 = cores::buildSoc(cores::SocConfig::boom2w());
    for (const Workload &w : caseStudies()) {
        uint32_t exit = 0;
        runOn(boom2, w, &exit);
        EXPECT_EQ(exit, w.expectedExit) << w.name << " on boom2w";
    }
}

TEST(Workloads, ConsoleOutputFromLinuxboot)
{
    Workload w = linuxbootLike();
    cores::SocDriver driver(rocketDesign(), w.program);
    core::RtlHarness harness(rocketDesign());
    core::runLoop(harness, driver, w.maxCycles);
    // Six probes, each printing "boot\n".
    EXPECT_NE(driver.console().find("boot\nboot\n"), std::string::npos);
}

TEST(Workloads, NamesResolve)
{
    EXPECT_EQ(microbenchmarks().size(), 6u);
    EXPECT_EQ(caseStudies().size(), 3u);
    EXPECT_EQ(byName("vvadd").name, "vvadd");
    EXPECT_EXIT(byName("nope"), ::testing::ExitedWithCode(1), "unknown");
}

TEST(Workloads, PointerChaseLatencyGrowsPastCacheCapacity)
{
    // 4 KiB fits in the 16 KiB D$; 128 KiB does not.
    Workload small = pointerChase(4 * 1024, 400);
    Workload large = pointerChase(128 * 1024, 400);
    uint32_t smallLat = 0, largeLat = 0;
    runOn(rocketDesign(), small, &smallLat, /*check=*/true);
    runOn(rocketDesign(), large, &largeLat, /*check=*/true);
    // Fixed point x16: in-cache chase is a few cycles per load; DRAM
    // chase includes the ~140-cycle miss penalty.
    EXPECT_LT(smallLat, 16u * 24);
    EXPECT_GT(largeLat, 16u * 100);
}

} // namespace
} // namespace workloads
} // namespace strober
