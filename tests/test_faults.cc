/**
 * @file
 * Fault-injection matrix for the replay pipeline (ctest label
 * "fault-injection").
 *
 * The contract under test: every fault class — corrupted scan-chain
 * state, corrupted replay traces, hung gate-level replays, torn or
 * bit-rotted snapshot files — is either detected-and-quarantined or
 * cleanly degraded, never a crash and never a silently wrong estimate.
 * Both entry points are exercised: the in-memory
 * EnergySimulator::estimate() pipeline and the file-based farm flow
 * (writeSnapshotFile / readSnapshotFile / replayOnGate).
 *
 * All injection is seed-driven. The default seed is fixed; CI runs the
 * suite across a seed matrix via the STROBER_FAULT_SEED environment
 * variable. Assertions that depend on *where* a fault lands (e.g.
 * whether a flipped memory bit is observed within the replay window)
 * are only made for the default seed; invariant assertions (no crash,
 * quarantine accounting consistent, report flags truthful) hold for
 * every seed.
 */

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/energy_sim.h"
#include "core/harness.h"
#include "fame/snapshot_io.h"
#include "farm/farm.h"
#include "gate/replay.h"
#include "gate/synthesis.h"
#include "inject/fault_injector.h"
#include "power/power_analysis.h"
#include "rtl/builder.h"
#include "stats/rng.h"
#include "util/status.h"

namespace strober {
namespace core {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::MemHandle;
using rtl::Scope;
using rtl::Signal;

/** Seed for the injectors; CI sweeps it via STROBER_FAULT_SEED. */
uint64_t
faultSeed()
{
    const char *env = std::getenv("STROBER_FAULT_SEED");
    return env ? std::strtoull(env, nullptr, 0) : 0xf001f001ull;
}

/** True when running with the default (hardcoded-expectation) seed. */
bool
isDefaultSeed()
{
    return std::getenv("STROBER_FAULT_SEED") == nullptr;
}

Design
makeDut()
{
    Builder b("dut");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Signal acc, back, tdata;
    {
        Scope core(b, "engine");
        acc = b.reg("acc", 16, 0);
        b.next(acc, acc + b.pad(in, 16));
        MemHandle scratch = b.mem("scratch", 8, 32, false);
        Signal ptr = b.reg("ptr", 5, 0);
        b.next(ptr, ptr + b.lit(1, 5), wen);
        b.memWrite(scratch, ptr, in, wen);
        back = b.memRead(scratch, ptr);
        MemHandle table = b.mem("table", 16, 16, true);
        tdata = b.memReadSync(table, acc.bits(3, 0));
        b.memWrite(table, acc.bits(3, 0), acc, wen);
    }
    b.output("acc", acc);
    b.output("back", back);
    b.output("tdata", tdata);
    return b.finish();
}

class NoiseDriver : public HostDriver
{
  public:
    NoiseDriver(uint64_t seed, uint64_t cycles) : rng(seed), budget(cycles)
    {
    }

    void
    drive(TargetHarness &h) override
    {
        h.setInput(0, rng.nextBounded(256));
        h.setInput(1, rng.nextBounded(2));
        --budget;
    }

    bool done() const override { return budget == 0; }

  private:
    stats::Rng rng;
    uint64_t budget;
};

/** Run the standard workload and leave the simulator ready to estimate. */
std::unique_ptr<EnergySimulator>
runStandard(const Design &d, EnergySimulator::Config cfg,
            uint64_t cycles = 10'000)
{
    auto es = std::make_unique<EnergySimulator>(d, cfg);
    NoiseDriver driver(42, cycles);
    es->run(driver, UINT64_MAX);
    return es;
}

EnergySimulator::Config
standardConfig()
{
    EnergySimulator::Config cfg;
    cfg.sampleSize = 10;
    cfg.replayLength = 64;
    return cfg;
}

/**
 * Whatever a corrupted capture does, the pipeline must stay coherent:
 * crash-free, accounting consistent, flags truthful.
 */
void
expectCoherentReport(const EnergyReport &report, size_t expectedSnapshots)
{
    EXPECT_EQ(report.snapshots, expectedSnapshots);
    EXPECT_EQ(report.outcomes.size(), expectedSnapshots);
    size_t dropped = 0;
    for (const SnapshotOutcome &oc : report.outcomes) {
        if (!oc.replayed()) {
            ++dropped;
            EXPECT_FALSE(oc.detail.empty());
            EXPECT_GE(oc.attempts, 1u);
        }
    }
    EXPECT_EQ(report.droppedSnapshots, dropped);
    EXPECT_EQ(report.degraded, dropped > 0);
    if (dropped == 0) {
        EXPECT_TRUE(report.valid);
        EXPECT_EQ(report.replayMismatches, 0u);
    }
    if (!report.valid)
        EXPECT_FALSE(report.statusMessage.empty());
    if (report.valid)
        EXPECT_GT(report.averagePower.mean, 0.0);
}

// ---------------------------------------------------------------------------
// In-memory entry point: EnergySimulator::estimate()
// ---------------------------------------------------------------------------

TEST(FaultMatrix, StateBitFlipNeverCrashesAndNeverLies)
{
    Design d = makeDut();
    auto es = runStandard(d, standardConfig());
    auto snaps = es->sampler().mutableSnapshots();
    ASSERT_GE(snaps.size(), 3u);

    uint64_t bit = inject::flipSnapshotStateBit(
        *snaps[1], es->sampler().chains(), faultSeed());
    EXPECT_LT(bit, es->sampler().chains().totalBits());

    EnergyReport report = es->estimate();
    expectCoherentReport(report, snaps.size());
    // A flipped state bit either perturbs an output inside the replay
    // window (detected: diverged + quarantined) or is dead state for
    // these 64 cycles (harmless: replay verifies clean). Both are fine;
    // a crash or an unflagged wrong estimate is not.
    for (const SnapshotOutcome &oc : report.outcomes) {
        if (oc.index != 1)
            EXPECT_TRUE(oc.replayed()) << "collateral quarantine of "
                                       << oc.index << ": " << oc.detail;
    }
    if (isDefaultSeed()) {
        // The default seed is chosen to land in live state.
        EXPECT_EQ(report.droppedSnapshots, 1u);
        EXPECT_EQ(report.outcomes[1].status, SnapshotStatus::Diverged);
        EXPECT_TRUE(report.degraded);
        EXPECT_TRUE(report.valid);
    }
}

TEST(FaultMatrix, CorruptedOutputTraceIsQuarantined)
{
    Design d = makeDut();
    auto es = runStandard(d, standardConfig());
    auto snaps = es->sampler().mutableSnapshots();
    ASSERT_GE(snaps.size(), 3u);

    // An output-trace fault is guaranteed to surface as divergence.
    inject::perturbOutputToken(*snaps[2], faultSeed());

    EnergyReport report = es->estimate();
    expectCoherentReport(report, snaps.size());
    EXPECT_EQ(report.droppedSnapshots, 1u);
    EXPECT_TRUE(report.degraded);
    EXPECT_TRUE(report.valid); // survivors still clear the floor
    EXPECT_GT(report.replayMismatches, 0u);
    const SnapshotOutcome &oc = report.outcomes[2];
    EXPECT_EQ(oc.status, SnapshotStatus::Diverged);
    // The bounded retry ran (and could not help: the trace itself is
    // corrupt) before quarantine.
    EXPECT_EQ(oc.attempts, 2u);
    EXPECT_TRUE(oc.retriedOnAlternateLoader);
    EXPECT_NE(report.statusMessage.find("degraded"), std::string::npos);
}

TEST(FaultMatrix, CorruptedInputTraceNeverCrashes)
{
    Design d = makeDut();
    auto es = runStandard(d, standardConfig());
    auto snaps = es->sampler().mutableSnapshots();
    ASSERT_GE(snaps.size(), 2u);
    inject::perturbInputToken(*snaps[0], faultSeed());
    EnergyReport report = es->estimate();
    expectCoherentReport(report, snaps.size());
}

TEST(FaultMatrix, HungReplayTripsWatchdogAndIsQuarantined)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    inject::StallPlan plan;
    plan.stallSnapshot(0, 1u << 30); // far past any watchdog budget
    cfg.stallPlan = &plan;
    auto es = runStandard(d, cfg);
    size_t n = es->sampler().snapshots().size();
    ASSERT_GE(n, 3u);

    EnergyReport report = es->estimate();
    expectCoherentReport(report, n);
    EXPECT_EQ(report.droppedSnapshots, 1u);
    const SnapshotOutcome &oc = report.outcomes[0];
    EXPECT_EQ(oc.status, SnapshotStatus::TimedOut);
    EXPECT_EQ(oc.attempts, 2u); // the retry also stalls
    EXPECT_NE(oc.detail.find("timeout"), std::string::npos);
    EXPECT_TRUE(report.valid);
    EXPECT_TRUE(report.degraded);
}

TEST(FaultMatrix, ExplicitTimeoutBudgetIsHonored)
{
    // A budget smaller than one healthy replay must quarantine
    // everything and invalidate the report — loudly, not silently.
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.replayTimeoutCycles = 3; // < warm-up + 64 trace cycles
    auto es = runStandard(d, cfg);
    size_t n = es->sampler().snapshots().size();
    ASSERT_GE(n, 1u);

    EnergyReport report = es->estimate();
    EXPECT_EQ(report.droppedSnapshots, n);
    EXPECT_FALSE(report.valid);
    for (const SnapshotOutcome &oc : report.outcomes)
        EXPECT_EQ(oc.status, SnapshotStatus::TimedOut);
    EXPECT_NE(report.statusMessage.find("quarantined"), std::string::npos);
}

TEST(FaultMatrix, DropCeilingInvalidatesReport)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.maxDroppedSnapshots = 0; // zero tolerance
    auto es = runStandard(d, cfg);
    auto snaps = es->sampler().mutableSnapshots();
    ASSERT_GE(snaps.size(), 3u);
    inject::perturbOutputToken(*snaps[1], faultSeed());

    EnergyReport report = es->estimate();
    EXPECT_EQ(report.droppedSnapshots, 1u);
    EXPECT_FALSE(report.valid);
    EXPECT_NE(report.statusMessage.find("ceiling"), std::string::npos);
    // The degraded numbers are still reported for inspection.
    EXPECT_GT(report.averagePower.mean, 0.0);
}

TEST(FaultMatrix, MinimumSampleFloorInvalidatesReport)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.sampleSize = 3;
    cfg.minSurvivingSamples = 3;
    auto es = runStandard(d, cfg);
    auto snaps = es->sampler().mutableSnapshots();
    ASSERT_EQ(snaps.size(), 3u);
    inject::perturbOutputToken(*snaps[0], faultSeed());

    EnergyReport report = es->estimate();
    EXPECT_EQ(report.droppedSnapshots, 1u);
    EXPECT_FALSE(report.valid);
    EXPECT_NE(report.statusMessage.find("floor"), std::string::npos);
}

TEST(FaultMatrix, RetryDisabledQuarantinesOnFirstFailure)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.retryFaultySnapshots = false;
    auto es = runStandard(d, cfg);
    auto snaps = es->sampler().mutableSnapshots();
    ASSERT_GE(snaps.size(), 2u);
    inject::perturbOutputToken(*snaps[1], faultSeed());

    EnergyReport report = es->estimate();
    const SnapshotOutcome &oc = report.outcomes[1];
    EXPECT_EQ(oc.status, SnapshotStatus::Diverged);
    EXPECT_EQ(oc.attempts, 1u);
    EXPECT_FALSE(oc.retriedOnAlternateLoader);
}

// ---------------------------------------------------------------------------
// File-based entry point: the snapshot farm flow
// ---------------------------------------------------------------------------

class FarmFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        namespace fs = std::filesystem;
        dir = fs::temp_directory_path() /
              ("strober_faults_" + std::to_string(faultSeed()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
        fs::remove_all(dir);
        fs::create_directories(dir);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir);
    }

    std::filesystem::path dir;
};

TEST_F(FarmFixture, EveryFileFaultClassIsDetectedAtLoad)
{
    namespace fs = std::filesystem;
    Design d = makeDut();
    auto es = runStandard(d, standardConfig());
    const fame::ScanChains &chains = es->sampler().chains();
    auto snaps = es->sampler().snapshots();
    ASSERT_GE(snaps.size(), 4u);

    std::vector<fs::path> files;
    for (const fame::ReplayableSnapshot *s : snaps) {
        fs::path f = dir / ("snap_" + std::to_string(s->cycle()) + ".strb");
        ASSERT_TRUE(fame::writeSnapshotFile(f.string(), chains, *s).isOk());
        // Atomic write: no temp residue next to the final file.
        EXPECT_FALSE(fs::exists(f.string() + ".tmp"));
        files.push_back(f);
    }

    // One file per fault class, the rest left healthy.
    const inject::FileFault kinds[] = {inject::FileFault::BitFlip,
                                       inject::FileFault::Truncate,
                                       inject::FileFault::HeaderGarbage};
    for (size_t k = 0; k < 3; ++k) {
        ASSERT_TRUE(inject::corruptFile(files[k].string(), kinds[k],
                                        faultSeed() + k)
                        .isOk());
    }

    // Farm phase: load + replay every file; corrupted ones quarantine.
    gate::SynthesisResult synth = gate::synthesize(d);
    gate::MatchTable table = gate::matchDesigns(d, synth.netlist,
                                                synth.guide);
    gate::GateSimulator gsim(synth.netlist);
    size_t quarantined = 0, survived = 0;
    for (size_t i = 0; i < files.size(); ++i) {
        util::Result<fame::ReplayableSnapshot> snap =
            fame::readSnapshotFile(files[i].string(), chains);
        if (i < 3) {
            EXPECT_FALSE(snap.isOk())
                << inject::fileFaultName(kinds[i]) << " not detected";
            if (!snap.isOk()) {
                EXPECT_FALSE(snap.status().message().empty());
                // The quarantine diagnostic names the bad file.
                EXPECT_NE(snap.status().message().find(
                              files[i].filename().string()),
                          std::string::npos);
            }
            ++quarantined;
            continue;
        }
        ASSERT_TRUE(snap.isOk()) << snap.status().toString();
        util::Result<gate::GateReplayResult> r =
            gate::replayOnGate(gsim, d, table, *snap);
        ASSERT_TRUE(r.isOk()) << r.status().toString();
        EXPECT_TRUE(r->ok()) << r->firstMismatch;
        ++survived;
    }
    EXPECT_EQ(quarantined, 3u);
    EXPECT_EQ(survived, files.size() - 3);
}

TEST_F(FarmFixture, SerializedCorruptionDetectedForManySeeds)
{
    // Denser sweep at the bytes level: whatever bit the fault lands on,
    // the reader must reject the image — the CRC sections leave no
    // unprotected bytes.
    Design d = makeDut();
    auto es = runStandard(d, standardConfig());
    const fame::ScanChains &chains = es->sampler().chains();
    auto snaps = es->sampler().snapshots();
    ASSERT_GE(snaps.size(), 1u);

    std::stringstream buf;
    ASSERT_TRUE(fame::writeSnapshot(buf, chains, *snaps[0]).isOk());
    std::string good = buf.str();

    for (uint64_t s = 0; s < 32; ++s) {
        for (inject::FileFault kind : {inject::FileFault::BitFlip,
                                       inject::FileFault::Truncate}) {
            std::string bad =
                inject::corruptBytes(good, kind, faultSeed() + s);
            ASSERT_NE(bad, good);
            std::istringstream in(bad);
            util::Result<fame::ReplayableSnapshot> r =
                fame::readSnapshot(in, chains);
            EXPECT_FALSE(r.isOk())
                << inject::fileFaultName(kind) << " seed "
                << faultSeed() + s << " escaped detection";
        }
    }
}

TEST_F(FarmFixture, WriteToUnwritablePathReportsIoError)
{
    Design d = makeDut();
    auto es = runStandard(d, standardConfig());
    auto snaps = es->sampler().snapshots();
    ASSERT_GE(snaps.size(), 1u);
    std::string bad = (dir / "missing" / "deep" / "snap.strb").string();
    util::Status st = fame::writeSnapshotFile(
        bad, es->sampler().chains(), *snaps[0]);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), util::ErrorCode::IoError);
    EXPECT_FALSE(std::filesystem::exists(bad));
    EXPECT_FALSE(std::filesystem::exists(bad + ".tmp"));
}

// ---------------------------------------------------------------------------
// Determinism and degradation semantics
// ---------------------------------------------------------------------------

void
expectReportsBitIdentical(const EnergyReport &a, const EnergyReport &b)
{
    EXPECT_EQ(a.averagePower.mean, b.averagePower.mean);
    EXPECT_EQ(a.averagePower.halfWidth, b.averagePower.halfWidth);
    EXPECT_EQ(a.population, b.population);
    EXPECT_EQ(a.snapshots, b.snapshots);
    EXPECT_EQ(a.droppedSnapshots, b.droppedSnapshots);
    EXPECT_EQ(a.replayMismatches, b.replayMismatches);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.valid, b.valid);
    ASSERT_EQ(a.groups.size(), b.groups.size());
    for (size_t i = 0; i < a.groups.size(); ++i) {
        EXPECT_EQ(a.groups[i].group, b.groups[i].group);
        EXPECT_EQ(a.groups[i].power.mean, b.groups[i].power.mean);
        EXPECT_EQ(a.groups[i].power.halfWidth, b.groups[i].power.halfWidth);
    }
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].status, b.outcomes[i].status);
        EXPECT_EQ(a.outcomes[i].mismatches, b.outcomes[i].mismatches);
    }
}

TEST(FaultTolerance, ReportBitIdenticalAcrossWorkerCounts)
{
    // The satellite guarantee: 1, 2 and 8 replay workers produce the
    // same report bit for bit — including under degradation, so a
    // farm's numbers do not depend on its parallelism.
    Design d = makeDut();
    std::vector<EnergyReport> reports;
    for (unsigned workers : {1u, 2u, 8u}) {
        EnergySimulator::Config cfg = standardConfig();
        cfg.parallelReplays = workers;
        auto es = runStandard(d, cfg);
        auto snaps = es->sampler().mutableSnapshots();
        ASSERT_GE(snaps.size(), 3u);
        inject::perturbOutputToken(*snaps[1], faultSeed());
        reports.push_back(es->estimate());
    }
    EXPECT_TRUE(reports[0].degraded);
    expectReportsBitIdentical(reports[0], reports[1]);
    expectReportsBitIdentical(reports[0], reports[2]);
}

TEST(FaultTolerance, FaultFreeRunIsUnaffectedByToleranceMachinery)
{
    // Zero injected faults: the hardened pipeline must produce exactly
    // the report the simple pipeline would have — retries, watchdogs and
    // quarantine accounting must be invisible on the happy path.
    Design d = makeDut();
    EnergySimulator::Config plain = standardConfig();
    plain.retryFaultySnapshots = false;
    EnergySimulator::Config hardened = standardConfig();
    hardened.retryFaultySnapshots = true;
    hardened.replayTimeoutCycles = 1u << 20;
    hardened.maxDroppedSnapshots = 0;
    hardened.minSurvivingSamples = 5;

    auto esPlain = runStandard(d, plain);
    auto esHard = runStandard(d, hardened);
    EnergyReport a = esPlain->estimate();
    EnergyReport b = esHard->estimate();
    EXPECT_FALSE(a.degraded);
    EXPECT_TRUE(a.valid);
    EXPECT_EQ(a.droppedSnapshots, 0u);
    EXPECT_TRUE(a.statusMessage.empty());
    expectReportsBitIdentical(a, b);
    for (const SnapshotOutcome &oc : a.outcomes) {
        EXPECT_TRUE(oc.replayed());
        EXPECT_EQ(oc.attempts, 1u);
    }
}

TEST(FaultTolerance, ShortRunReportsConditionInsteadOfGarbageCI)
{
    // population = floor(cycles / L) truncates to zero for a run
    // shorter than one replay interval; the old code divided through
    // anyway. Now the condition is reported.
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    cfg.replayLength = 128;
    auto es = runStandard(d, cfg, 100); // 100 < L = 128
    EnergyReport report = es->estimate();
    EXPECT_FALSE(report.valid);
    EXPECT_TRUE(report.degraded);
    EXPECT_NE(report.statusMessage.find("shorter than one replay"),
              std::string::npos);
    EXPECT_EQ(report.population, 0u);
    EXPECT_EQ(report.droppedSnapshots, 0u);

    // Boundary: exactly one interval is an estimate over one snapshot —
    // a mean exists but no variance, so the report is still invalid.
    EnergySimulator::Config cfg1 = standardConfig();
    cfg1.replayLength = 128;
    auto es1 = runStandard(d, cfg1, 128);
    EnergyReport r1 = es1->estimate();
    EXPECT_EQ(r1.population, 1u);
    EXPECT_FALSE(r1.valid);
    EXPECT_GT(r1.averagePower.mean, 0.0);
    EXPECT_NE(r1.statusMessage.find("floor"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cache poisoning: the content-addressed result store (src/farm)
// ---------------------------------------------------------------------------

TEST_F(FarmFixture, PoisonedCacheEntryDegradesToMissNeverQuarantine)
{
    Design d = makeDut();
    std::string cacheDir = (dir / "cache").string();

    EnergyReport cold;
    {
        farm::CachingReplayExecutor exec(cacheDir);
        EnergySimulator::Config cfg = standardConfig();
        cfg.replayExecutor = &exec;
        auto es = runStandard(d, cfg);
        cold = es->estimate();
        ASSERT_FALSE(cold.degraded);
        ASSERT_GE(cold.snapshots, 3u);
        ASSERT_EQ(exec.cache().entryCount(), cold.snapshots);
    }

    for (inject::FileFault kind : {inject::FileFault::BitFlip,
                                   inject::FileFault::Truncate,
                                   inject::FileFault::HeaderGarbage}) {
        auto victim =
            inject::corruptOneFileIn(cacheDir, ".strbres", kind,
                                     faultSeed());
        ASSERT_TRUE(victim.isOk()) << victim.status().toString();

        farm::CachingReplayExecutor exec(cacheDir);
        EnergySimulator::Config cfg = standardConfig();
        cfg.replayExecutor = &exec;
        auto es = runStandard(d, cfg);
        EnergyReport warm = es->estimate();
        // Whatever the fault did to the entry, it costs exactly one
        // recompute — never a wrong number, never a quarantine.
        EXPECT_EQ(exec.replaysExecuted(), 1u)
            << inject::fileFaultName(kind);
        EXPECT_EQ(exec.cacheStats().corruptEntries, 1u)
            << inject::fileFaultName(kind);
        EXPECT_EQ(warm.cacheMisses, 1u);
        EXPECT_EQ(warm.cacheHits, warm.snapshots - 1);
        EXPECT_EQ(warm.droppedSnapshots, 0u);
        EXPECT_FALSE(warm.degraded);
        expectReportsBitIdentical(cold, warm);
        // The recompute healed the store for the next round.
        EXPECT_EQ(exec.cache().entryCount(), cold.snapshots)
            << inject::fileFaultName(kind);
    }
}

TEST_F(FarmFixture, PoisonedManifestIsRejectedAsCorrupt)
{
    // The work queue never trusts torn bytes: any fault class applied to
    // a shard manifest surfaces as ErrorCode::Corrupt, and the farm
    // replans instead of replaying against a garbage queue.
    farm::ShardManifest m;
    m.shard = 0;
    m.shards = 1;
    m.population = 156;
    m.sampleCount = 1;
    m.coreName = "dut";
    m.workloadName = "noise";
    m.mirrorFrom(standardConfig());
    farm::ManifestEntry e;
    e.snapshotFile = "snap_00000.strb";
    m.entries.push_back(e);
    std::string path = (dir / farm::shardManifestName(0)).string();

    for (inject::FileFault kind : {inject::FileFault::BitFlip,
                                   inject::FileFault::Truncate,
                                   inject::FileFault::HeaderGarbage}) {
        ASSERT_TRUE(farm::writeManifestFile(path, m).isOk());
        auto victim = inject::corruptOneFileIn(dir.string(), ".strbfarm",
                                               kind, faultSeed());
        ASSERT_TRUE(victim.isOk()) << victim.status().toString();
        EXPECT_EQ(*victim, path);
        auto r = farm::readManifestFile(path, true);
        ASSERT_FALSE(r.isOk()) << inject::fileFaultName(kind);
        EXPECT_EQ(r.status().code(), util::ErrorCode::Corrupt)
            << inject::fileFaultName(kind) << ": "
            << r.status().toString();
    }
}

TEST(Injector, SameSeedSameFault)
{
    Design d = makeDut();
    auto es = runStandard(d, standardConfig());
    auto snaps = es->sampler().snapshots();
    ASSERT_GE(snaps.size(), 1u);
    std::stringstream buf;
    ASSERT_TRUE(fame::writeSnapshot(buf, es->sampler().chains(),
                                    *snaps[0])
                    .isOk());
    std::string bytes = buf.str();

    for (inject::FileFault kind : {inject::FileFault::BitFlip,
                                   inject::FileFault::Truncate,
                                   inject::FileFault::HeaderGarbage}) {
        std::string a = inject::corruptBytes(bytes, kind, faultSeed());
        std::string b = inject::corruptBytes(bytes, kind, faultSeed());
        EXPECT_EQ(a, b) << inject::fileFaultName(kind);
        EXPECT_NE(a, bytes) << inject::fileFaultName(kind);
    }

    std::vector<uint64_t> w1{0, 0, 0}, w2{0, 0, 0};
    uint64_t b1 = inject::flipBitstreamBit(w1, 170, faultSeed());
    uint64_t b2 = inject::flipBitstreamBit(w2, 170, faultSeed());
    EXPECT_EQ(b1, b2);
    EXPECT_LT(b1, 170u);
    EXPECT_EQ(w1, w2);
}

} // namespace
} // namespace core
} // namespace strober
