/**
 * @file
 * Replay-farm orchestration tests (src/farm): the content-addressed
 * result cache, the durable sharded work queue, the multi-process
 * worker pool, and incremental re-estimation.
 *
 * The contract under test is the determinism guarantee the whole
 * subsystem leans on: a replay record is a pure function of (snapshot,
 * design products, replay-relevant config), so the final report must be
 * bit-identical for any worker count, any shard assignment, any cache
 * hit pattern, and any kill/resume history — and a warm cache must
 * serve a re-estimate of an unchanged design with ZERO gate-level
 * replays.
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/energy_sim.h"
#include "core/harness.h"
#include "core/job_control.h"
#include "farm/farm.h"
#include "farm/manifest.h"
#include "farm/report.h"
#include "farm/result_cache.h"
#include "farm/stream.h"
#include "inject/fault_injector.h"
#include "rtl/builder.h"
#include "stats/rng.h"
#include "util/env.h"
#include "util/status.h"

namespace strober {
namespace farm {
namespace {

namespace fs = std::filesystem;
using core::EnergyReport;
using core::EnergySimulator;
using core::ReplayRecord;
using core::SnapshotOutcome;
using core::SnapshotStatus;
using rtl::Builder;
using rtl::Design;
using rtl::MemHandle;
using rtl::Scope;
using rtl::Signal;

uint64_t
faultSeed()
{
    const char *env = std::getenv("STROBER_FAULT_SEED");
    return env ? std::strtoull(env, nullptr, 0) : 0xf001f001ull;
}

/** Same small DUT the fault matrix uses: regs + async/sync memories. */
Design
makeDut()
{
    Builder b("dut");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Signal acc, back, tdata;
    {
        Scope core(b, "engine");
        acc = b.reg("acc", 16, 0);
        b.next(acc, acc + b.pad(in, 16));
        MemHandle scratch = b.mem("scratch", 8, 32, false);
        Signal ptr = b.reg("ptr", 5, 0);
        b.next(ptr, ptr + b.lit(1, 5), wen);
        b.memWrite(scratch, ptr, in, wen);
        back = b.memRead(scratch, ptr);
        MemHandle table = b.mem("table", 16, 16, true);
        tdata = b.memReadSync(table, acc.bits(3, 0));
        b.memWrite(table, acc.bits(3, 0), acc, wen);
    }
    b.output("acc", acc);
    b.output("back", back);
    b.output("tdata", tdata);
    return b.finish();
}

class NoiseDriver : public core::HostDriver
{
  public:
    NoiseDriver(uint64_t seed, uint64_t cycles) : rng(seed), budget(cycles)
    {
    }

    void
    drive(core::TargetHarness &h) override
    {
        h.setInput(0, rng.nextBounded(256));
        h.setInput(1, rng.nextBounded(2));
        --budget;
    }

    bool done() const override { return budget == 0; }

  private:
    stats::Rng rng;
    uint64_t budget;
};

EnergySimulator::Config
standardConfig()
{
    EnergySimulator::Config cfg;
    cfg.sampleSize = 10;
    cfg.replayLength = 64;
    return cfg;
}

struct Standard
{
    std::unique_ptr<EnergySimulator> es;
    uint64_t population = 0;
};

/** Run the deterministic standard workload; sampling is seed-fixed, so
 *  every call reproduces the identical snapshot reservoir. */
Standard
runStandard(const Design &d, EnergySimulator::Config cfg,
            uint64_t cycles = 10'000)
{
    Standard s;
    s.es = std::make_unique<EnergySimulator>(d, cfg);
    NoiseDriver driver(42, cycles);
    core::RunStats run = s.es->run(driver, UINT64_MAX);
    s.population = run.targetCycles / cfg.replayLength;
    return s;
}

/** Field-by-field bit-identity, minus wall clocks and cache counters
 *  (which legitimately differ between cold, warm and resumed runs). */
void
expectReportsBitIdentical(const EnergyReport &a, const EnergyReport &b)
{
    EXPECT_EQ(a.averagePower.mean, b.averagePower.mean);
    EXPECT_EQ(a.averagePower.halfWidth, b.averagePower.halfWidth);
    EXPECT_EQ(a.averagePower.confidence, b.averagePower.confidence);
    EXPECT_EQ(a.population, b.population);
    EXPECT_EQ(a.snapshots, b.snapshots);
    EXPECT_EQ(a.droppedSnapshots, b.droppedSnapshots);
    EXPECT_EQ(a.replayMismatches, b.replayMismatches);
    EXPECT_EQ(a.modeledLoadSeconds, b.modeledLoadSeconds);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.statusMessage, b.statusMessage);
    ASSERT_EQ(a.groups.size(), b.groups.size());
    for (size_t i = 0; i < a.groups.size(); ++i) {
        EXPECT_EQ(a.groups[i].group, b.groups[i].group);
        EXPECT_EQ(a.groups[i].power.mean, b.groups[i].power.mean);
        EXPECT_EQ(a.groups[i].power.halfWidth,
                  b.groups[i].power.halfWidth);
    }
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].index, b.outcomes[i].index);
        EXPECT_EQ(a.outcomes[i].cycle, b.outcomes[i].cycle);
        EXPECT_EQ(a.outcomes[i].status, b.outcomes[i].status);
        EXPECT_EQ(a.outcomes[i].attempts, b.outcomes[i].attempts);
        EXPECT_EQ(a.outcomes[i].mismatches, b.outcomes[i].mismatches);
        EXPECT_EQ(a.outcomes[i].detail, b.outcomes[i].detail);
    }
}

class FarmTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = fs::temp_directory_path() /
              ("strober_farm_" + std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
        fs::remove_all(dir);
        fs::create_directories(dir);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir);
    }

    std::string
    sub(const char *name) const
    {
        return (dir / name).string();
    }

    fs::path dir;
};

// ---------------------------------------------------------------------------
// Content addressing
// ---------------------------------------------------------------------------

TEST(CacheKey, HexRoundTripAndRejection)
{
    CacheKey key{0x0123456789abcdefull, 0xfedcba9876543210ull};
    std::string hex = key.hex();
    EXPECT_EQ(hex.size(), 32u);
    auto back = CacheKey::fromHex(hex);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == key);
    EXPECT_FALSE(CacheKey::fromHex("short").has_value());
    EXPECT_FALSE(
        CacheKey::fromHex(std::string(32, 'g')).has_value());
}

TEST(CacheKey, ReplayRelevantConfigChangesTheFingerprint)
{
    EnergySimulator::Config base = standardConfig();
    uint64_t fp = replayConfigFingerprint(base);

    EnergySimulator::Config c = base;
    c.replayLength = 128;
    EXPECT_NE(replayConfigFingerprint(c), fp);
    c = base;
    c.loader = gate::alternateLoader(base.loader);
    EXPECT_NE(replayConfigFingerprint(c), fp);
    c = base;
    c.replayTimeoutCycles = 12345;
    EXPECT_NE(replayConfigFingerprint(c), fp);
    c = base;
    c.retryFaultySnapshots = !base.retryFaultySnapshots;
    EXPECT_NE(replayConfigFingerprint(c), fp);

    // Aggregation-level knobs must NOT invalidate cached replays: that
    // is the incremental re-estimation path.
    c = base;
    c.confidence = 0.5;
    c.minSurvivingSamples = 9;
    c.maxDroppedSnapshots = 1;
    c.sampleSize = 99;
    c.parallelReplays = 7;
    EXPECT_EQ(replayConfigFingerprint(c), fp);
}

TEST_F(FarmTest, ResultCacheRoundTripsRecordsBitExactly)
{
    ResultCache cache(sub("cache"));
    CacheKey key{1, 2};

    ReplayRecord rec;
    rec.outcome.cycle = 777;
    rec.outcome.status = SnapshotStatus::Replayed;
    rec.outcome.attempts = 1;
    rec.modeledLoadSeconds = 0.125;
    rec.totalWatts = 0.0123456789;
    rec.groups = {{"engine", 0.001}, {"engine/table", 2e-5}};

    EXPECT_FALSE(cache.lookup(key).has_value()); // cold miss
    ASSERT_TRUE(cache.store(key, rec).isOk());
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->fromCache);
    EXPECT_EQ(hit->outcome.cycle, rec.outcome.cycle);
    EXPECT_EQ(hit->outcome.status, SnapshotStatus::Replayed);
    EXPECT_EQ(hit->modeledLoadSeconds, rec.modeledLoadSeconds);
    EXPECT_EQ(hit->totalWatts, rec.totalWatts);
    ASSERT_EQ(hit->groups.size(), rec.groups.size());
    for (size_t i = 0; i < rec.groups.size(); ++i) {
        EXPECT_EQ(hit->groups[i].first, rec.groups[i].first);
        EXPECT_EQ(hit->groups[i].second, rec.groups[i].second);
    }
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.entryCount(), 1u);

    // Failures are never cacheable: a corrupt/transient fault must not
    // be laundered into a persistent quarantine.
    ReplayRecord failed = rec;
    failed.outcome.status = SnapshotStatus::Diverged;
    util::Status st = cache.store(CacheKey{3, 4}, failed);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), util::ErrorCode::InvalidArgument);
}

TEST_F(FarmTest, ResultCacheTrimKeepsNewest)
{
    ResultCache cache(sub("cache"));
    ReplayRecord rec;
    rec.outcome.status = SnapshotStatus::Replayed;
    for (uint64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(cache.store(CacheKey{i, i}, rec).isOk());
    EXPECT_EQ(cache.entryCount(), 8u);
    EXPECT_EQ(cache.trim(3), 5u);
    EXPECT_EQ(cache.entryCount(), 3u);
    EXPECT_EQ(cache.trim(3), 0u);
}

TEST_F(FarmTest, TrimPolicyWarmEntriesSurviveStaleEntriesGo)
{
    ResultCache cache(sub("cache"));
    ReplayRecord rec;
    rec.outcome.status = SnapshotStatus::Replayed;
    for (uint64_t i = 0; i < 6; ++i)
        ASSERT_TRUE(cache.store(CacheKey{i, i}, rec).isOk());

    // Age three entries past the cutoff by backdating their mtime; the
    // other three stay warm.
    namespace ch = std::chrono;
    auto stale = fs::file_time_type::clock::now() - ch::hours(2);
    size_t aged = 0;
    for (const auto &ent : fs::directory_iterator(sub("cache"))) {
        if (aged >= 3)
            break;
        fs::last_write_time(ent.path(), stale);
        ++aged;
    }
    ASSERT_EQ(aged, 3u);

    ResultCache::TrimPolicy policy;
    policy.maxAgeSeconds = 3600; // 1h: the backdated three are stale
    ResultCache::TrimResult res = cache.trim(policy);
    EXPECT_EQ(res.examined, 6u);
    EXPECT_EQ(res.evicted, 3u);
    EXPECT_GT(res.bytesEvicted, 0u);
    EXPECT_EQ(cache.entryCount(), 3u);
    EXPECT_EQ(cache.stats().evictions, 3u);

    // Warm survivors are untouched by a repeat sweep.
    res = cache.trim(policy);
    EXPECT_EQ(res.evicted, 0u);
    EXPECT_EQ(cache.stats().evictions, 3u);
}

TEST_F(FarmTest, TrimPolicySizeBudgetEvictsOldestFirst)
{
    ResultCache cache(sub("cache"));
    ReplayRecord rec;
    rec.outcome.status = SnapshotStatus::Replayed;
    rec.groups = {{"engine", 0.001}};
    for (uint64_t i = 0; i < 4; ++i)
        ASSERT_TRUE(cache.store(CacheKey{i, i}, rec).isOk());

    uint64_t total = 0;
    uint64_t one = 0;
    for (const auto &ent : fs::directory_iterator(sub("cache"))) {
        one = fs::file_size(ent.path());
        total += one;
    }
    ASSERT_GT(one, 0u);

    // Budget for roughly two entries: the two oldest must go, newest
    // survive, and the byte accounting must add up.
    ResultCache::TrimPolicy policy;
    policy.maxTotalBytes = 2 * one;
    ResultCache::TrimResult res = cache.trim(policy);
    EXPECT_EQ(res.examined, 4u);
    EXPECT_EQ(res.evicted, 2u);
    EXPECT_EQ(res.bytesKept + res.bytesEvicted, total);
    EXPECT_LE(res.bytesKept, policy.maxTotalBytes);
    EXPECT_EQ(cache.entryCount(), 2u);
}

// ---------------------------------------------------------------------------
// Manifest durability
// ---------------------------------------------------------------------------

ShardManifest
sampleManifest()
{
    ShardManifest m;
    m.shard = 1;
    m.shards = 3;
    m.population = 156;
    m.sampleCount = 10;
    m.netlistFingerprint = 0xabcdef;
    m.configFingerprint = 0x123456;
    m.powerModelVersion = 1;
    m.coreName = "dut";
    m.workloadName = "noise";
    m.mirrorFrom(standardConfig());
    for (uint64_t i = 0; i < 4; ++i) {
        ManifestEntry e;
        e.index = 1 + 3 * i;
        e.cycle = 64 * e.index;
        e.snapshotFile = "snap_" + std::to_string(e.index) + ".strb";
        e.key = CacheKey{i, ~i};
        e.state = static_cast<EntryState>(i); // one entry per state
        e.injectedStallCycles = i == 2 ? 1000 : 0;
        if (e.state == EntryState::Quarantined) {
            e.failStatus =
                static_cast<uint32_t>(SnapshotStatus::Diverged);
            e.failAttempts = 2;
            e.failRetried = 1;
            e.failMismatches = 7;
            e.failLoadSeconds = 0.5;
            e.failDetail = "output 2 mismatched";
        }
        m.entries.push_back(e);
    }
    return m;
}

TEST_F(FarmTest, ManifestRoundTripsAllFields)
{
    ShardManifest m = sampleManifest();
    std::string path = sub("shard_1.strbfarm");
    ASSERT_TRUE(writeManifestFile(path, m).isOk());

    auto r = readManifestFile(path, /*reclaimLeases=*/false);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r->shard, m.shard);
    EXPECT_EQ(r->shards, m.shards);
    EXPECT_EQ(r->population, m.population);
    EXPECT_EQ(r->sampleCount, m.sampleCount);
    EXPECT_EQ(r->netlistFingerprint, m.netlistFingerprint);
    EXPECT_EQ(r->configFingerprint, m.configFingerprint);
    EXPECT_EQ(r->coreName, m.coreName);
    EXPECT_EQ(r->workloadName, m.workloadName);
    EXPECT_EQ(r->replayLength, m.replayLength);
    EXPECT_EQ(r->clockHz, m.clockHz);
    ASSERT_EQ(r->entries.size(), m.entries.size());
    for (size_t i = 0; i < m.entries.size(); ++i) {
        const ManifestEntry &a = m.entries[i];
        const ManifestEntry &b = r->entries[i];
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(a.cycle, b.cycle);
        EXPECT_EQ(a.snapshotFile, b.snapshotFile);
        EXPECT_TRUE(a.key == b.key);
        EXPECT_EQ(a.state, b.state);
        EXPECT_EQ(a.injectedStallCycles, b.injectedStallCycles);
        EXPECT_EQ(a.failStatus, b.failStatus);
        EXPECT_EQ(a.failAttempts, b.failAttempts);
        EXPECT_EQ(a.failRetried, b.failRetried);
        EXPECT_EQ(a.failMismatches, b.failMismatches);
        EXPECT_EQ(a.failLoadSeconds, b.failLoadSeconds);
        EXPECT_EQ(a.failDetail, b.failDetail);
    }

    // Resume semantics: a lease only means something while its worker
    // lives; reclaiming demotes Leased back to Pending.
    auto rr = readManifestFile(path, /*reclaimLeases=*/true);
    ASSERT_TRUE(rr.isOk());
    EXPECT_EQ(rr->count(EntryState::Leased), 0u);
    EXPECT_EQ(rr->count(EntryState::Pending), 2u);
    EXPECT_EQ(rr->count(EntryState::Done), 1u);
    EXPECT_EQ(rr->count(EntryState::Quarantined), 1u);
}

TEST_F(FarmTest, CorruptManifestIsRejectedNotTrusted)
{
    for (inject::FileFault kind : {inject::FileFault::BitFlip,
                                   inject::FileFault::Truncate,
                                   inject::FileFault::HeaderGarbage}) {
        std::string path =
            sub(("shard_" + std::string(inject::fileFaultName(kind)) +
                 ".strbfarm")
                    .c_str());
        ASSERT_TRUE(writeManifestFile(path, sampleManifest()).isOk());
        ASSERT_TRUE(
            inject::corruptFile(path, kind, faultSeed()).isOk());
        auto r = readManifestFile(path, false);
        ASSERT_FALSE(r.isOk()) << inject::fileFaultName(kind);
        EXPECT_EQ(r.status().code(), util::ErrorCode::Corrupt)
            << inject::fileFaultName(kind) << ": "
            << r.status().toString();
    }
}

TEST_F(FarmTest, ReclaimLeasesExpiredVersusLiveBoundary)
{
    ShardManifest m;
    m.shard = 0;
    m.shards = 1;
    m.mirrorFrom(standardConfig());
    const uint64_t now = 1'000'000;
    // Four leases straddling the boundary: long-expired, expired at
    // exactly `now` (counts as expired), still live, and a v1-style
    // lease with no recorded deadline (always reclaimable — the old
    // format cannot prove the holder is alive).
    for (uint64_t deadline : {now - 1, now, now + 1000, uint64_t(0)}) {
        ManifestEntry e;
        e.index = m.entries.size();
        e.state = EntryState::Leased;
        e.leaseDeadlineUnixMs = deadline;
        m.entries.push_back(e);
    }
    ManifestEntry done;
    done.index = 4;
    done.state = EntryState::Done;
    done.leaseDeadlineUnixMs = now - 1; // ignored: not Leased
    m.entries.push_back(done);

    EXPECT_EQ(reclaimLeases(m, now), 3u);
    EXPECT_EQ(m.entries[0].state, EntryState::Pending);
    EXPECT_EQ(m.entries[1].state, EntryState::Pending);
    EXPECT_EQ(m.entries[2].state, EntryState::Leased); // still live
    EXPECT_EQ(m.entries[2].leaseDeadlineUnixMs, now + 1000);
    EXPECT_EQ(m.entries[3].state, EntryState::Pending);
    EXPECT_EQ(m.entries[4].state, EntryState::Done);
    // Reclaimed leases have their deadline cleared.
    EXPECT_EQ(m.entries[0].leaseDeadlineUnixMs, 0u);
    // Idempotent: a second sweep at the same instant reclaims nothing.
    EXPECT_EQ(reclaimLeases(m, now), 0u);
}

TEST_F(FarmTest, ManifestPersistsLeaseDeadlines)
{
    ShardManifest m = sampleManifest();
    m.entries[1].leaseDeadlineUnixMs = 0xdeadbeef; // the Leased entry
    std::string path = sub("shard_1.strbfarm");
    ASSERT_TRUE(writeManifestFile(path, m).isOk());
    auto r = readManifestFile(path, /*reclaimLeases=*/false);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r->entries[1].leaseDeadlineUnixMs, 0xdeadbeefu);
}

// ---------------------------------------------------------------------------
// Incremental re-estimation (CachingReplayExecutor)
// ---------------------------------------------------------------------------

TEST_F(FarmTest, WarmCacheReestimateIsReplayFreeAndBitIdentical)
{
    Design d = makeDut();

    // Cold run: everything misses, is replayed and stored.
    EnergyReport cold;
    size_t n = 0;
    {
        CachingReplayExecutor exec(sub("cache"));
        EnergySimulator::Config cfg = standardConfig();
        cfg.replayExecutor = &exec;
        Standard s = runStandard(d, cfg);
        cold = s.es->estimate();
        n = cold.snapshots;
        ASSERT_GE(n, 3u);
        EXPECT_EQ(exec.replaysExecuted(), n);
        EXPECT_EQ(cold.cacheMisses, n);
        EXPECT_EQ(cold.cacheHits, 0u);
        EXPECT_EQ(exec.cache().entryCount(), n);
    }

    // Warm re-estimates: ZERO gate-level replays, bit-identical report,
    // for any worker count (the tentpole acceptance criterion).
    for (unsigned workers : {1u, 2u, 8u}) {
        CachingReplayExecutor exec(sub("cache"));
        EnergySimulator::Config cfg = standardConfig();
        cfg.replayExecutor = &exec;
        cfg.parallelReplays = workers;
        Standard s = runStandard(d, cfg);
        EnergyReport warm = s.es->estimate();
        EXPECT_EQ(exec.replaysExecuted(), 0u)
            << workers << " workers replayed on a warm cache";
        EXPECT_EQ(warm.cacheHits, n);
        EXPECT_EQ(warm.cacheMisses, 0u);
        expectReportsBitIdentical(cold, warm);
    }
}

TEST_F(FarmTest, AggregationKnobChangeReaggregatesWithoutReplaying)
{
    Design d = makeDut();
    EnergyReport cold;
    {
        CachingReplayExecutor exec(sub("cache"));
        EnergySimulator::Config cfg = standardConfig();
        cfg.replayExecutor = &exec;
        Standard s = runStandard(d, cfg);
        cold = s.es->estimate();
    }
    // Same replays, different confidence: served entirely by the cache,
    // same mean, different (re-aggregated) interval width.
    CachingReplayExecutor exec(sub("cache"));
    EnergySimulator::Config cfg = standardConfig();
    cfg.replayExecutor = &exec;
    cfg.confidence = 0.90;
    Standard s = runStandard(d, cfg);
    EnergyReport narrow = s.es->estimate();
    EXPECT_EQ(exec.replaysExecuted(), 0u);
    EXPECT_EQ(narrow.cacheHits, cold.snapshots);
    EXPECT_EQ(narrow.averagePower.mean, cold.averagePower.mean);
    EXPECT_LT(narrow.averagePower.halfWidth,
              cold.averagePower.halfWidth);
}

TEST_F(FarmTest, ReplayKnobChangeMissesCleanly)
{
    Design d = makeDut();
    {
        CachingReplayExecutor exec(sub("cache"));
        EnergySimulator::Config cfg = standardConfig();
        cfg.replayExecutor = &exec;
        Standard s = runStandard(d, cfg);
        (void)s.es->estimate();
    }
    // A different replay length is a different experiment: every lookup
    // must miss (stale results must never be served).
    CachingReplayExecutor exec(sub("cache"));
    EnergySimulator::Config cfg = standardConfig();
    cfg.replayLength = 32;
    cfg.replayExecutor = &exec;
    Standard s = runStandard(d, cfg);
    EnergyReport rep = s.es->estimate();
    EXPECT_EQ(rep.cacheHits, 0u);
    EXPECT_EQ(exec.replaysExecuted(), rep.snapshots);
}

TEST_F(FarmTest, CachingExecutorPreservesDegradedReports)
{
    // Quarantines are never cached: the failing snapshot is re-replayed
    // on the warm run and reaches the identical verdict, while the
    // survivors come from the cache — and the report stays bit-identical.
    Design d = makeDut();
    EnergyReport cold, warm;
    for (int round = 0; round < 2; ++round) {
        CachingReplayExecutor exec(sub("cache"));
        EnergySimulator::Config cfg = standardConfig();
        cfg.replayExecutor = &exec;
        Standard s = runStandard(d, cfg);
        auto snaps = s.es->sampler().mutableSnapshots();
        ASSERT_GE(snaps.size(), 3u);
        inject::perturbOutputToken(*snaps[1], faultSeed());
        EnergyReport rep = s.es->estimate();
        ASSERT_TRUE(rep.degraded);
        if (round == 0) {
            cold = rep;
            EXPECT_EQ(rep.cacheHits, 0u);
        } else {
            warm = rep;
            // Only the quarantined snapshot was replayed again.
            EXPECT_EQ(exec.replaysExecuted(), 1u);
            EXPECT_EQ(warm.cacheHits, warm.snapshots - 1);
        }
    }
    expectReportsBitIdentical(cold, warm);
}

// ---------------------------------------------------------------------------
// The farm: plan / work / steal / collect
// ---------------------------------------------------------------------------

FarmConfig
farmConfig(const std::string &dir, unsigned shards,
           EnergySimulator::Config sim)
{
    FarmConfig fcfg;
    fcfg.dir = dir;
    fcfg.shards = shards;
    fcfg.sim = sim;
    fcfg.coreName = "dut";
    fcfg.workloadName = "noise";
    return fcfg;
}

TEST_F(FarmTest, FarmReportMatchesInProcessIncludingDegraded)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    Standard s = runStandard(d, cfg);
    auto snaps = s.es->sampler().mutableSnapshots();
    ASSERT_GE(snaps.size(), 3u);
    inject::perturbOutputToken(*snaps[1], faultSeed());

    EnergyReport inProcess = s.es->estimate();
    ASSERT_TRUE(inProcess.degraded);

    FarmOrchestrator orch(d, farmConfig(sub("run"), 2, cfg));
    ASSERT_TRUE(
        orch.plan(s.es->sampler().snapshots(), s.population).isOk());
    ASSERT_TRUE(orch.workShard(0).isOk());
    ASSERT_TRUE(orch.workShard(1).isOk());
    auto rep = orch.collect();
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    expectReportsBitIdentical(inProcess, *rep);

    // Quarantines live in the manifest, not the cache.
    auto progress = orch.progress();
    ASSERT_TRUE(progress.isOk());
    EXPECT_EQ(progress->quarantined, 1u);
    EXPECT_EQ(progress->done, progress->total - 1);
    EXPECT_EQ(orch.cache().entryCount(), progress->done);
}

TEST_F(FarmTest, WorkStealingDrainsEveryShardFromOneWorker)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    Standard s = runStandard(d, cfg);
    EnergyReport inProcess = s.es->estimate();

    FarmOrchestrator orch(d, farmConfig(sub("run"), 4, cfg));
    ASSERT_TRUE(
        orch.plan(s.es->sampler().snapshots(), s.population).isOk());
    // One worker, four shards: it drains its own shard, then steals the
    // other three (publishing to the cache only).
    ASSERT_TRUE(orch.workShard(0).isOk());

    auto mid = orch.progress();
    ASSERT_TRUE(mid.isOk());
    EXPECT_GT(mid->pending, 0u); // stolen work is not marked by thieves
    EXPECT_EQ(orch.cache().entryCount(), inProcess.snapshots);

    auto rep = orch.collect();
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    // Every record was served by the cache: the collector performed
    // zero inline replays even though three shards never ran a worker.
    EXPECT_EQ(rep->cacheHits, inProcess.snapshots);
    EXPECT_EQ(rep->cacheMisses, 0u);
    expectReportsBitIdentical(inProcess, *rep);

    auto after = orch.progress();
    ASSERT_TRUE(after.isOk());
    EXPECT_EQ(after->done, after->total); // collect marked them done
}

TEST_F(FarmTest, KillAndResumeReproducesTheUninterruptedReport)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();

    // The uninterrupted reference run, in its own directory.
    Standard ref = runStandard(d, cfg);
    FarmOrchestrator refOrch(d, farmConfig(sub("ref"), 2, cfg));
    ASSERT_TRUE(
        refOrch.plan(ref.es->sampler().snapshots(), ref.population)
            .isOk());
    ASSERT_TRUE(refOrch.workShard(0).isOk());
    ASSERT_TRUE(refOrch.workShard(1).isOk());
    auto refRep = refOrch.collect();
    ASSERT_TRUE(refRep.isOk());

    // The "killed" run: shard 0 completed, shard 1 died mid-lease (its
    // manifest still says Leased — exactly what a SIGKILL leaves).
    Standard s1 = runStandard(d, cfg);
    {
        FarmOrchestrator orch(d, farmConfig(sub("run"), 2, cfg));
        ASSERT_TRUE(
            orch.plan(s1.es->sampler().snapshots(), s1.population)
                .isOk());
        ASSERT_TRUE(orch.workShard(0).isOk());
        std::string path = sub("run") + "/" + shardManifestName(1);
        auto m = readManifestFile(path, false);
        ASSERT_TRUE(m.isOk());
        ASSERT_FALSE(m->entries.empty());
        m->entries[0].state = EntryState::Leased;
        ASSERT_TRUE(writeManifestFile(path, *m).isOk());
    }

    // Resume: a fresh process re-plans (harvesting Done states and
    // reclaiming the orphaned lease), works, collects.
    Standard s2 = runStandard(d, cfg);
    FarmOrchestrator resumed(d, farmConfig(sub("run"), 2, cfg));
    ASSERT_TRUE(
        resumed.plan(s2.es->sampler().snapshots(), s2.population).isOk());
    auto mid = resumed.progress();
    ASSERT_TRUE(mid.isOk());
    EXPECT_GT(mid->done, 0u);   // completed work survived the replan
    EXPECT_EQ(mid->leased, 0u); // the orphaned lease was reclaimed
    ASSERT_TRUE(resumed.workShard(0).isOk());
    ASSERT_TRUE(resumed.workShard(1).isOk());
    auto rep = resumed.collect();
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    expectReportsBitIdentical(*refRep, *rep);
}

TEST_F(FarmTest, DrainMidShardCheckpointsAndResumesBitIdentically)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();

    // Uninterrupted reference.
    Standard ref = runStandard(d, cfg);
    FarmOrchestrator refOrch(d, farmConfig(sub("ref"), 1, cfg));
    ASSERT_TRUE(
        refOrch.plan(ref.es->sampler().snapshots(), ref.population)
            .isOk());
    ASSERT_TRUE(refOrch.workShard(0).isOk());
    auto refRep = refOrch.collect();
    ASSERT_TRUE(refRep.isOk());

    // The drained run: a SIGTERM-style cancel lands right after the
    // second lease is taken (the entryHook models the signal arriving
    // mid-replay). workShard must checkpoint — revert the lease, stop,
    // return ok — exactly what a draining worker process does.
    Standard s = runStandard(d, cfg);
    core::JobControl job;
    FarmConfig fcfg = farmConfig(sub("run"), 1, cfg);
    fcfg.sim.job = &job;
    unsigned leased = 0;
    fcfg.entryHook = [&](unsigned, const ManifestEntry &) {
        if (++leased == 2)
            job.cancel.store(true, std::memory_order_relaxed);
    };
    {
        FarmOrchestrator orch(d, fcfg);
        ASSERT_TRUE(
            orch.plan(s.es->sampler().snapshots(), s.population).isOk());
        ASSERT_TRUE(orch.workShard(0).isOk());
        auto mid = orch.progress();
        ASSERT_TRUE(mid.isOk());
        EXPECT_EQ(mid->done, 1u);   // first entry finished before the
        EXPECT_EQ(mid->leased, 0u); // drain; the second was reverted
        EXPECT_EQ(mid->quarantined, 0u); // a drain is never a failure
        EXPECT_EQ(mid->pending, mid->total - 1);

        // collect() under a drain refuses to produce a report and says
        // the run is checkpointed instead.
        auto rep = orch.collect();
        ASSERT_FALSE(rep.isOk());
        EXPECT_EQ(rep.status().code(), util::ErrorCode::Canceled);
    }

    // Resume without the cancel: only the unfinished work is redone and
    // the report is bit-identical to the uninterrupted reference.
    Standard s2 = runStandard(d, cfg);
    FarmOrchestrator resumed(d, farmConfig(sub("run"), 1, cfg));
    ASSERT_TRUE(
        resumed.plan(s2.es->sampler().snapshots(), s2.population).isOk());
    ASSERT_TRUE(resumed.workShard(0).isOk());
    auto rep = resumed.collect();
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    expectReportsBitIdentical(*refRep, *rep);
}

TEST_F(FarmTest, ExpiredDeadlineYieldsDeterministicTimedOutReport)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    Standard s = runStandard(d, cfg);

    core::JobControl job;
    job.deadlineUnixMs.store(1, std::memory_order_relaxed); // long past
    FarmConfig fcfg = farmConfig(sub("run"), 1, cfg);
    fcfg.sim.job = &job;
    fcfg.sim.maxDroppedSnapshots = 100; // keep the report valid
    FarmOrchestrator orch(d, fcfg);
    ASSERT_TRUE(
        orch.plan(s.es->sampler().snapshots(), s.population).isOk());
    ASSERT_TRUE(orch.workShard(0).isOk());

    auto rep = orch.collect();
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    EXPECT_TRUE(rep->degraded);
    EXPECT_EQ(rep->droppedSnapshots, rep->outcomes.size());
    for (const SnapshotOutcome &oc : rep->outcomes) {
        EXPECT_EQ(oc.status, SnapshotStatus::TimedOut);
        // The deadline early-out is deterministic: fixed detail, zero
        // attempts — NOT a function of how far the replay got.
        EXPECT_EQ(oc.attempts, 0u);
        EXPECT_EQ(oc.detail, "job deadline exceeded before replay");
    }

    // Degradation is an artifact of the deadline, not the work queue: a
    // fresh run of the same directory without the deadline heals every
    // quarantine (plan resets them to Pending) and reports cleanly.
    Standard s2 = runStandard(d, cfg);
    FarmOrchestrator healed(d, farmConfig(sub("run"), 1, cfg));
    ASSERT_TRUE(
        healed.plan(s2.es->sampler().snapshots(), s2.population).isOk());
    ASSERT_TRUE(healed.workShard(0).isOk());
    auto rep2 = healed.collect();
    ASSERT_TRUE(rep2.isOk());
    EXPECT_FALSE(rep2->degraded);
}

TEST_F(FarmTest, ExpiredLeaseIsStolenByPeersLiveLeaseIsNot)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    Standard s = runStandard(d, cfg);
    EnergyReport inProcess = s.es->estimate();

    FarmConfig fcfg = farmConfig(sub("run"), 2, cfg);
    FarmOrchestrator orch(d, fcfg);
    ASSERT_TRUE(
        orch.plan(s.es->sampler().snapshots(), s.population).isOk());

    // Wedge shard 1: mark every entry Leased. Half with a deadline far
    // in the future (a live worker), half long expired (a dead one).
    std::string path = sub("run") + "/" + shardManifestName(1);
    auto m = readManifestFile(path, false);
    ASSERT_TRUE(m.isOk());
    ASSERT_GE(m->entries.size(), 2u);
    uint64_t now = util::nowUnixMs();
    for (size_t i = 0; i < m->entries.size(); ++i) {
        m->entries[i].state = EntryState::Leased;
        m->entries[i].leaseDeadlineUnixMs =
            i % 2 == 0 ? now - 60'000 : now + 60 * 60 * 1000;
    }
    ASSERT_TRUE(writeManifestFile(path, *m).isOk());

    // Worker 0 drains its shard then steals: expired leases are redone
    // (published to the cache), live leases are left to their holder.
    ASSERT_TRUE(orch.workShard(0).isOk());
    size_t ownShard = inProcess.snapshots - m->entries.size();
    size_t expired = (m->entries.size() + 1) / 2;
    EXPECT_EQ(orch.cache().entryCount(), ownShard + expired);

    // The foreign manifest was never written by the thief.
    auto after = readManifestFile(path, false);
    ASSERT_TRUE(after.isOk());
    EXPECT_EQ(after->count(EntryState::Leased), after->entries.size());

    // collect() still completes everything (inline for the "live"
    // leaseholder's work) and the report is bit-identical.
    auto rep = orch.collect();
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    expectReportsBitIdentical(inProcess, *rep);
}

TEST_F(FarmTest, MultiProcessWorkersMatchInProcessEstimate)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    Standard s = runStandard(d, cfg);
    EnergyReport inProcess = s.es->estimate();

    FarmOrchestrator orch(d, farmConfig(sub("run"), 2, cfg));
    ASSERT_TRUE(
        orch.plan(s.es->sampler().snapshots(), s.population).isOk());

    // Real worker processes, like `strober-farm run -j 2`: each child
    // builds its own orchestrator on the shared directory.
    std::vector<pid_t> kids;
    for (unsigned k = 0; k < 2; ++k) {
        pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            FarmOrchestrator worker(d, farmConfig(sub("run"), 2, cfg));
            _exit(worker.workShard(k).isOk() ? 0 : 1);
        }
        kids.push_back(pid);
    }
    for (pid_t pid : kids) {
        int wstatus = 0;
        ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
        ASSERT_TRUE(WIFEXITED(wstatus));
        EXPECT_EQ(WEXITSTATUS(wstatus), 0);
    }

    auto rep = orch.collect();
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    EXPECT_EQ(rep->cacheMisses, 0u); // workers published everything
    expectReportsBitIdentical(inProcess, *rep);
}

TEST_F(FarmTest, DesignDriftIsRefusedByWorkers)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    Standard s = runStandard(d, cfg);
    FarmOrchestrator orch(d, farmConfig(sub("run"), 1, cfg));
    ASSERT_TRUE(
        orch.plan(s.es->sampler().snapshots(), s.population).isOk());

    // A worker holding a different netlist must refuse the queue:
    // mixing results from different designs would be silent garbage.
    Builder b("other");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Signal acc = b.reg("acc", 24, 0);
    b.next(acc, acc + b.pad(in, 24), wen);
    b.output("acc", acc);
    Design other = b.finish();

    FarmOrchestrator drifted(other, farmConfig(sub("run"), 1, cfg));
    util::Status st = drifted.workShard(0);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), util::ErrorCode::GeometryMismatch);
}

TEST_F(FarmTest, ConfigDriftDiscardsStaleResultsOnReplan)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();
    Standard s = runStandard(d, cfg);
    FarmOrchestrator orch(d, farmConfig(sub("run"), 1, cfg));
    ASSERT_TRUE(
        orch.plan(s.es->sampler().snapshots(), s.population).isOk());
    ASSERT_TRUE(orch.workShard(0).isOk());

    // Re-planning with a different replay length is a new experiment:
    // the harvested manifests carry a stale config fingerprint, so
    // every completed entry is discarded instead of mixed in.
    EnergySimulator::Config other = standardConfig();
    other.replayLength = 32;
    Standard s2 = runStandard(d, other);
    FarmOrchestrator replanned(d, farmConfig(sub("run"), 1, other));
    ASSERT_TRUE(
        replanned.plan(s2.es->sampler().snapshots(), s2.population)
            .isOk());
    auto progress = replanned.progress();
    ASSERT_TRUE(progress.isOk());
    EXPECT_EQ(progress->done, 0u);
    EXPECT_EQ(progress->pending, progress->total);
}

// ---------------------------------------------------------------------------
// Streamed farm runs (farm/stream.h)
// ---------------------------------------------------------------------------

/** Publish the standard workload's captures into @p feed exactly as a
 *  streamed producer does, and return the run's simulator. */
Standard
runStandardStreamed(const Design &d, EnergySimulator::Config cfg,
                    StreamFeed &feed, core::RunStats *outRun = nullptr,
                    uint64_t cycles = 10'000)
{
    Standard s;
    s.es = std::make_unique<EnergySimulator>(d, cfg);
    s.es->sampler().setObserver(&feed);
    NoiseDriver driver(42, cycles);
    core::RunStats run = s.es->run(driver, UINT64_MAX);
    s.es->sampler().flushPending();
    s.es->sampler().setObserver(nullptr);
    s.population = run.targetCycles / cfg.replayLength;
    if (outRun)
        *outRun = run;
    return s;
}

TEST_F(FarmTest, StreamedRunIsBitIdenticalToPhasedAndWarmsCache)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();

    // Phased reference: plan everything after the fast sim ends.
    Standard ref = runStandard(d, cfg);
    FarmOrchestrator phased(d, farmConfig(sub("phased"), 1, cfg));
    ASSERT_TRUE(
        phased.plan(ref.es->sampler().snapshots(), ref.population).isOk());
    ASSERT_TRUE(phased.workShard(0).isOk());
    auto phasedRep = phased.collect();
    ASSERT_TRUE(phasedRep.isOk()) << phasedRep.status().toString();

    // Streamed run: captures publish into the feed as they happen.
    FarmOrchestrator producer(d, farmConfig(sub("stream"), 1, cfg));
    auto feed = producer.openStreamFeed();
    ASSERT_TRUE(feed.isOk()) << feed.status().toString();
    core::RunStats run;
    Standard s = runStandardStreamed(d, cfg, **feed, &run);
    ASSERT_TRUE((*feed)->finish(false).isOk());
    EXPECT_TRUE((*feed)->status().isOk());

    // Every record event was published; evictions superseded the rest.
    size_t survivors = s.es->sampler().snapshots().size();
    EXPECT_EQ((*feed)->published(), run.recordCount);
    EXPECT_EQ((*feed)->superseded(), run.recordCount - survivors);
    ASSERT_GT((*feed)->superseded(), 0u);

    // Worker drain: superseded entries are tombstoned and never
    // replayed — eviction cancels streamed work.
    FarmOrchestrator worker(d, farmConfig(sub("stream"), 1, cfg));
    auto out = worker.drainStream(0, 1, /*pollMs=*/1);
    ASSERT_TRUE(out.isOk()) << out.status().toString();
    EXPECT_TRUE(out->sawDoneMarker);
    EXPECT_FALSE(out->earlyStop);
    EXPECT_FALSE(out->canceled);
    EXPECT_EQ(out->tombstoned, (*feed)->superseded());
    EXPECT_EQ(out->replayed, survivors);
    EXPECT_EQ(out->cacheHits, 0u);

    // A second sweep finds every live result already published: the
    // drain is idempotent and eviction never poisoned the cache.
    FarmOrchestrator worker2(d, farmConfig(sub("stream"), 1, cfg));
    auto again = worker2.drainStream(0, 1, /*pollMs=*/1);
    ASSERT_TRUE(again.isOk()) << again.status().toString();
    EXPECT_EQ(again->replayed, 0u);
    EXPECT_EQ(again->cacheHits, survivors);
    EXPECT_EQ(again->tombstoned, (*feed)->superseded());

    // The plan marker gates workers' manifest phase.
    EXPECT_FALSE(planMarkerExists(sub("stream")));
    ASSERT_TRUE(writePlanMarker(sub("stream")).isOk());
    EXPECT_TRUE(planMarkerExists(sub("stream")));

    // The ordinary plan/collect flow now finds the cache fully warm
    // and the final report is bit-identical to the phased farm run.
    ASSERT_TRUE(
        producer.plan(s.es->sampler().snapshots(), s.population).isOk());
    ASSERT_TRUE(producer.workShard(0).isOk());
    EXPECT_EQ(producer.replaysExecuted(), 0u)
        << "streamed drain should have pre-paid every replay";
    auto rep = producer.collect();
    ASSERT_TRUE(rep.isOk()) << rep.status().toString();
    expectReportsBitIdentical(*phasedRep, *rep);
    EXPECT_EQ(renderReportDeterministic(*phasedRep),
              renderReportDeterministic(*rep));
}

TEST_F(FarmTest, EarlyStopMarkerAbandonsPendingStreamWork)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();

    FarmOrchestrator producer(d, farmConfig(sub("run"), 1, cfg));
    auto feed = producer.openStreamFeed();
    ASSERT_TRUE(feed.isOk()) << feed.status().toString();
    Standard s = runStandardStreamed(d, cfg, **feed);
    ASSERT_TRUE((*feed)->finish(/*earlyStop=*/true).isOk());

    // The marker arrives before the worker replays anything: the whole
    // backlog is abandoned, not finished.
    FarmOrchestrator worker(d, farmConfig(sub("run"), 1, cfg));
    auto out = worker.drainStream(0, 1, /*pollMs=*/1);
    ASSERT_TRUE(out.isOk()) << out.status().toString();
    EXPECT_TRUE(out->sawDoneMarker);
    EXPECT_TRUE(out->earlyStop);
    EXPECT_EQ(out->replayed, 0u);
    EXPECT_EQ(worker.replaysExecuted(), 0u);
    (void)s;
}

TEST_F(FarmTest, CollectStreamEarlyAggregatesCompletedLiveSubset)
{
    Design d = makeDut();
    EnergySimulator::Config cfg = standardConfig();

    FarmOrchestrator producer(d, farmConfig(sub("run"), 1, cfg));
    auto feed = producer.openStreamFeed();
    ASSERT_TRUE(feed.isOk()) << feed.status().toString();
    Standard s = runStandardStreamed(d, cfg, **feed);
    ASSERT_TRUE((*feed)->finish(false).isOk());

    FarmOrchestrator worker(d, farmConfig(sub("run"), 1, cfg));
    auto out = worker.drainStream(0, 1, /*pollMs=*/1);
    ASSERT_TRUE(out.isOk()) << out.status().toString();
    size_t survivors = s.es->sampler().snapshots().size();
    ASSERT_EQ(out->replayed, survivors);

    // With every live entry completed, the CI check trivially passes
    // for a loose bound and never for an unattainable one.
    EXPECT_TRUE((*feed)->ciBoundMet(producer.cache(), /*bound=*/10.0,
                                    cfg.confidence, s.population,
                                    cfg.sampleSize));
    EXPECT_FALSE((*feed)->ciBoundMet(producer.cache(), /*bound=*/1e-12,
                                     cfg.confidence, s.population,
                                     cfg.sampleSize));

    // The early aggregate over the complete live set is the same
    // Section III-A estimate the in-process path computes.
    auto early = producer.collectStreamEarly(**feed, s.population);
    ASSERT_TRUE(early.isOk()) << early.status().toString();
    EXPECT_TRUE(early->valid);
    EXPECT_TRUE(early->earlyStopped);
    EXPECT_EQ(early->snapshots, survivors);
    EXPECT_EQ(early->supersededReplays,
              static_cast<size_t>((*feed)->superseded()));
    EXPECT_NE(renderReportDeterministic(*early)
                  .find("early-stopped 1"),
              std::string::npos);

    Standard ref = runStandard(d, cfg);
    EnergyReport inProcess = ref.es->estimate();
    EXPECT_EQ(early->averagePower.mean, inProcess.averagePower.mean);
    EXPECT_EQ(early->averagePower.halfWidth,
              inProcess.averagePower.halfWidth);
    EXPECT_EQ(early->population, inProcess.population);
}

} // namespace
} // namespace farm
} // namespace strober
