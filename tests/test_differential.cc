/**
 * @file
 * Differential tests between the Simulator backends — the lock-down
 * for the activity-driven optimization, the compiled backend, and the
 * partitioned compiled-parallel backend.
 * Backend::InterpretedFull is the naive reference sweep;
 * Backend::InterpretedActivity, Backend::Compiled and
 * Backend::CompiledParallel must be observationally equivalent on
 * *every* design and stimulus:
 *   - 50 randomized designs (shared fuzz generator, tests/fuzz_designs.h)
 *     driven for 1000+ cycles of random pokes, with cycle-by-cycle output
 *     equality and periodic whole-state sweeps (every node value, every
 *     register, every memory word, every sync read latch) — four-way,
 *     all backends in lockstep;
 *   - reset() mid-run, repeated evalComb(), and partially-driven cycles
 *     (undriven inputs hold their values, creating the low-activity
 *     cycles the optimization exists for);
 *   - end-to-end: full Strober flows on the Rocket and BOOM SoCs, one
 *     per backend, must produce identical run statistics, identical
 *     sampled snapshots and *identical* energy estimates;
 *   - thread independence: the compiled-parallel backend's boom2w
 *     energy report is byte-identical across a {1,2,4,8}-thread matrix
 *     and to the single-threaded compiled backend (the same property
 *     also runs as a ctest $STROBER_SIM_THREADS env matrix, see
 *     tests/CMakeLists.txt).
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"
#include "workloads/workloads.h"

#include "fuzz_designs.h"

namespace strober {
namespace {

using rtl::Design;
using sim::Backend;
using sim::Simulator;
using strober::testing::randomDesign;

/** Assert every piece of observable state matches the reference. */
void
expectStateEqual(const Design &d, Simulator &ref, Simulator &alt,
                 uint64_t seed, int cycle)
{
    const char *name = sim::backendName(alt.requestedBackend());
    for (size_t n = 0; n < d.numNodes(); ++n) {
        rtl::NodeId id = static_cast<rtl::NodeId>(n);
        ASSERT_EQ(alt.peek(id), ref.peek(id))
            << name << " seed " << seed << " cycle " << cycle << " node "
            << n;
    }
    for (size_t r = 0; r < d.regs().size(); ++r)
        ASSERT_EQ(alt.regValue(r), ref.regValue(r))
            << name << " seed " << seed << " cycle " << cycle << " reg "
            << r;
    for (size_t m = 0; m < d.mems().size(); ++m) {
        const rtl::MemInfo &mem = d.mems()[m];
        for (uint64_t a = 0; a < mem.depth; ++a)
            ASSERT_EQ(alt.memWord(m, a), ref.memWord(m, a))
                << name << " seed " << seed << " cycle " << cycle
                << " mem " << m << " addr " << a;
        if (mem.syncRead) {
            for (size_t p = 0; p < mem.reads.size(); ++p)
                ASSERT_EQ(alt.syncReadData(m, p), ref.syncReadData(m, p))
                    << name << " seed " << seed << " cycle " << cycle
                    << " mem " << m << " port " << p;
        }
    }
}

class Differential : public ::testing::TestWithParam<uint64_t> {};

/**
 * The core equivalence property: under identical random stimulus, the
 * activity-driven, compiled and compiled-parallel simulators are
 * cycle-for-cycle indistinguishable from the full sweep — a four-way
 * lockstep.
 * Roughly a quarter of the pokes are withheld each cycle so inputs
 * frequently hold their values — the low-activity condition the
 * dirty-propagation machinery actually optimizes — and a burst of
 * completely undriven cycles exercises the near-zero activity path.
 */
TEST_P(Differential, RandomDesignLockstep)
{
    const uint64_t seed = GetParam();
    Design d = randomDesign(seed);
    // The reference sweep runs on the *unstrengthened* plan (dataflow
    // folding disabled), so every seed also differentially checks the
    // known-bits EvalPlan strengthening the other three backends use
    // by default against a plan that never consulted the facts.
    setenv("STROBER_SIM_NO_DATAFLOW", "1", 1);
    Simulator full(d, Backend::InterpretedFull);
    unsetenv("STROBER_SIM_NO_DATAFLOW");
    Simulator act(d, Backend::InterpretedActivity);
    Simulator comp(d, Backend::Compiled);
    Simulator par(d, Backend::CompiledParallel);
    ASSERT_EQ(full.backend(), Backend::InterpretedFull);
    ASSERT_EQ(act.backend(), Backend::InterpretedActivity);
    ASSERT_EQ(comp.requestedBackend(), Backend::Compiled);
    ASSERT_EQ(par.requestedBackend(), Backend::CompiledParallel);

    Simulator *sims[] = {&full, &act, &comp, &par};
    stats::Rng rng(seed * 7919 + 13);
    for (int cycle = 0; cycle < 1000; ++cycle) {
        bool quiet = cycle >= 600 && cycle < 620;
        for (rtl::NodeId in : d.inputs()) {
            // Withhold ~1/4 of the pokes (and all of them during the
            // quiet burst): undriven inputs hold their previous value.
            if (quiet || rng.nextBounded(4) == 0)
                continue;
            uint64_t v = rng.next();
            for (Simulator *s : sims)
                s->poke(in, v);
        }
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            uint64_t refv = full.peek(d.outputs()[o].node);
            ASSERT_EQ(act.peek(d.outputs()[o].node), refv)
                << "activity seed " << seed << " cycle " << cycle
                << " output " << o;
            ASSERT_EQ(comp.peek(d.outputs()[o].node), refv)
                << "compiled seed " << seed << " cycle " << cycle
                << " output " << o;
            ASSERT_EQ(par.peek(d.outputs()[o].node), refv)
                << "compiled-parallel seed " << seed << " cycle "
                << cycle << " output " << o;
        }
        if (cycle % 97 == 0) {
            ASSERT_NO_FATAL_FAILURE(
                expectStateEqual(d, full, act, seed, cycle));
            ASSERT_NO_FATAL_FAILURE(
                expectStateEqual(d, full, comp, seed, cycle));
            ASSERT_NO_FATAL_FAILURE(
                expectStateEqual(d, full, par, seed, cycle));
        }
        for (Simulator *s : sims)
            s->step();
    }
    ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, act, seed, 1000));
    ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, comp, seed, 1000));
    ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, par, seed, 1000));
    EXPECT_EQ(full.cycle(), act.cycle());
    EXPECT_EQ(full.cycle(), comp.cycle());
    EXPECT_EQ(full.cycle(), par.cycle());
    EXPECT_EQ(full.nodeEvalsSkipped(), 0u);
}

/** reset() must restore every backend to the same initial state. */
TEST_P(Differential, ResetMidRunStaysEquivalent)
{
    const uint64_t seed = GetParam();
    Design d = randomDesign(seed);
    Simulator full(d, Backend::InterpretedFull);
    Simulator act(d, Backend::InterpretedActivity);
    // Every fifth seed also resets the compiled backend mid-run (and
    // a different fifth the compiled-parallel one); bounding the JIT
    // invocations keeps the suite fast while still covering reset()
    // on compiled state across varied designs.
    std::unique_ptr<Simulator> comp;
    if (seed % 5 == 0)
        comp = std::make_unique<Simulator>(d, Backend::Compiled);
    else if (seed % 5 == 2)
        comp = std::make_unique<Simulator>(d, Backend::CompiledParallel);
    stats::Rng rng(seed + 0xabcd);

    auto drive = [&](int cycles) {
        for (int c = 0; c < cycles; ++c) {
            for (rtl::NodeId in : d.inputs()) {
                uint64_t v = rng.next();
                full.poke(in, v);
                act.poke(in, v);
                if (comp)
                    comp->poke(in, v);
            }
            // Repeated evalComb() between pokes must be idempotent.
            if (c % 13 == 0) {
                full.evalComb();
                act.evalComb();
                if (comp)
                    comp->evalComb();
            }
            for (const rtl::OutputPort &out : d.outputs()) {
                ASSERT_EQ(act.peek(out.node), full.peek(out.node))
                    << "seed " << seed << " cycle " << c;
                if (comp)
                    ASSERT_EQ(comp->peek(out.node), full.peek(out.node))
                        << "compiled seed " << seed << " cycle " << c;
            }
            full.step();
            act.step();
            if (comp)
                comp->step();
        }
    };
    drive(80);
    full.reset();
    act.reset();
    if (comp)
        comp->reset();
    ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, act, seed, -1));
    if (comp) {
        ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, *comp, seed, -1));
    }
    drive(80);
    ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, act, seed, -2));
    if (comp) {
        ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, *comp, seed, -2));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<uint64_t>(1, 51));

/**
 * $STROBER_SIM_NO_DATAFLOW pins the exact property the known-bits
 * strengthening must preserve: two interpreters differing *only* in
 * whether buildEvalPlan consulted the dataflow facts are
 * observationally indistinguishable — every node peek, every register,
 * every memory word — while the strengthened plan really is smaller
 * on a design with provably-constant logic.
 */
TEST(Differential, DataflowStrengtheningIsObservationallyInvisible)
{
    rtl::Builder b("df_invisible");
    rtl::Signal in = b.input("in", 4);
    rtl::Signal wide = b.pad(in, 16);
    // Provably dead logic: high bits of a 4-bit value, an always-true
    // bound check steering a mux.
    rtl::Signal hi = shru(wide, b.lit(4, 16));
    rtl::Signal inBounds = ltu(wide, b.lit(100, 16));
    b.output("sum", b.mux(inBounds, wide + b.lit(3, 16), hi));
    b.output("hi", hi);
    rtl::Signal acc = b.reg("acc", 16, 0);
    b.next(acc, acc + wide);
    b.output("acc", acc);
    Design d = b.finish();

    setenv("STROBER_SIM_NO_DATAFLOW", "1", 1);
    Simulator plain(d, Backend::InterpretedFull);
    unsetenv("STROBER_SIM_NO_DATAFLOW");
    Simulator strong(d, Backend::InterpretedFull);
    EXPECT_GT(plain.plan().hotProgram.size(),
              strong.plan().hotProgram.size());
    EXPECT_GT(strong.plan().stats.dfFolded + strong.plan().stats.dfAliased +
                  strong.plan().stats.dfMuxPruned,
              0u);
    EXPECT_EQ(plain.plan().stats.dfFolded, 0u);

    stats::Rng rng(20260808);
    for (int cycle = 0; cycle < 200; ++cycle) {
        uint64_t v = rng.nextBounded(16);
        plain.poke("in", v);
        strong.poke("in", v);
        ASSERT_NO_FATAL_FAILURE(
            expectStateEqual(d, plain, strong, 0, cycle));
        plain.step();
        strong.step();
    }
}

/**
 * The whole point of InterpretedActivity: combinational cones whose
 * inputs are stable are not re-evaluated. A deep pure-input cone plus a
 * free running counter makes the skip guaranteed and deterministic: with
 * the input held, only the counter's cone re-evaluates each cycle.
 */
TEST(Differential, ActivitySkipsStableCones)
{
    rtl::Builder b("skip");
    rtl::Signal in = b.input("in", 32);
    rtl::Signal x = in;
    for (unsigned i = 0; i < 16; ++i)
        x = x + b.lit(i + 1, 32);
    b.output("cone", x);
    rtl::Signal cnt = b.reg("cnt", 8, 0);
    b.next(cnt, cnt + b.lit(1, 8));
    b.output("cnt", cnt);
    Design d = b.finish();

    Simulator sim(d, Backend::InterpretedActivity);
    sim.poke("in", 5);
    sim.step(); // first sweep after reset is a full one
    uint64_t skippedAfterFirst = sim.nodeEvalsSkipped();
    sim.step(10); // input stable: the 16-adder cone must be skipped
    EXPECT_GT(sim.nodeEvalsSkipped(), skippedAfterFirst);
    EXPECT_LT(sim.activityFactor(), 1.0);
    // ...while results stay exact.
    EXPECT_EQ(sim.peek("cnt"), 11u);
    EXPECT_EQ(sim.peek("cone"), 5u + 136u); // 5 + sum(1..16)

    // The reference backend never skips and reports unit activity.
    Simulator ref(d, Backend::InterpretedFull);
    ref.poke("in", 5);
    ref.step(11);
    EXPECT_EQ(ref.nodeEvalsSkipped(), 0u);
    EXPECT_EQ(ref.activityFactor(), 1.0);
    EXPECT_EQ(std::string(sim::backendName(sim.backend())), "activity");
    EXPECT_EQ(std::string(sim::backendName(ref.backend())), "full");
}

/** Shared body: run the full Strober flow once per backend on one SoC
 *  and require bit-identical estimates. */
void
expectFlowIdenticalAcrossBackends(const rtl::Design &soc,
                                  const workloads::Workload &wl,
                                  size_t sampleSize)
{
    struct FlowResult
    {
        core::RunStats run;
        core::EnergyReport rep;
        std::vector<uint64_t> snapCycles;
        bool done = false;
        int exitCode = -1;
    };
    auto runFlow = [&](Backend backend) {
        core::EnergySimulator::Config cfg;
        cfg.sampleSize = sampleSize;
        cfg.replayLength = 64;
        cfg.backend = backend;
        core::EnergySimulator strober(soc, cfg);
        cores::SocDriver driver(soc, wl.program);
        FlowResult r;
        r.run = strober.run(driver, wl.maxCycles);
        r.done = driver.done();
        r.exitCode = driver.exitCode();
        for (const fame::ReplayableSnapshot *s :
             strober.sampler().snapshots())
            r.snapCycles.push_back(s->cycle());
        r.rep = strober.estimate();
        return r;
    };

    FlowResult full = runFlow(Backend::InterpretedFull);
    for (Backend backend :
         {Backend::InterpretedActivity, Backend::Compiled,
          Backend::CompiledParallel}) {
        SCOPED_TRACE(sim::backendName(backend));
        FlowResult alt = runFlow(backend);

        // Phase 1 behaved identically...
        EXPECT_TRUE(full.done);
        EXPECT_TRUE(alt.done);
        EXPECT_EQ(full.exitCode, alt.exitCode);
        EXPECT_EQ(full.run.targetCycles, alt.run.targetCycles);
        EXPECT_EQ(full.run.hostCycles, alt.run.hostCycles);
        EXPECT_EQ(full.run.recordCount, alt.run.recordCount);
        EXPECT_EQ(full.run.intervalsSeen, alt.run.intervalsSeen);
        EXPECT_EQ(full.snapCycles, alt.snapCycles);

        // ...and the estimates are bit-identical, not merely close.
        ASSERT_EQ(full.rep.replayMismatches, 0u);
        ASSERT_EQ(alt.rep.replayMismatches, 0u);
        EXPECT_EQ(full.rep.snapshots, alt.rep.snapshots);
        EXPECT_EQ(full.rep.population, alt.rep.population);
        EXPECT_EQ(full.rep.averagePower.mean, alt.rep.averagePower.mean);
        EXPECT_EQ(full.rep.averagePower.halfWidth,
                  alt.rep.averagePower.halfWidth);
        ASSERT_EQ(full.rep.groups.size(), alt.rep.groups.size());
        for (size_t g = 0; g < full.rep.groups.size(); ++g) {
            EXPECT_EQ(full.rep.groups[g].group, alt.rep.groups[g].group);
            EXPECT_EQ(full.rep.groups[g].power.mean,
                      alt.rep.groups[g].power.mean)
                << "group " << full.rep.groups[g].group;
        }
    }
}

/**
 * End-to-end: the complete Strober flow (FAME1 fast sim + reservoir
 * sampling -> replay -> power aggregation) on the Rocket SoC must
 * produce identical results whichever simulator backend drives phase 1.
 * Everything downstream of phase 1 consumes only the sampled snapshots,
 * so equality here means the backends agreed on every sampled state bit
 * and every I/O trace word across the whole workload.
 */
TEST(Differential, RocketEnergyEstimateIdenticalAcrossBackends)
{
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    expectFlowIdenticalAcrossBackends(soc, workloads::towers(), 10);
}

/** Same property on the superscalar BOOM variants: wider datapaths,
 *  more retiming regions, bigger compiled translation units. */
TEST(Differential, BoomEnergyEstimateIdenticalAcrossBackends)
{
    for (const char *core : {"boom1w", "boom2w"}) {
        SCOPED_TRACE(core);
        cores::SocConfig cfg = std::string(core) == "boom1w"
                                   ? cores::SocConfig::boom1w()
                                   : cores::SocConfig::boom2w();
        rtl::Design soc = cores::buildSoc(cfg);
        expectFlowIdenticalAcrossBackends(soc, workloads::vvadd(), 5);
    }
}

/**
 * Serialize every field of a flow result to exact bytes — doubles in
 * hex-float form, so two reports compare equal iff they are
 * bit-identical, not merely close.
 */
std::string
serializeReport(const core::RunStats &run, const core::EnergyReport &rep,
                const std::vector<uint64_t> &snapCycles)
{
    std::string out;
    char buf[128];
    auto num = [&](const char *k, double v) {
        std::snprintf(buf, sizeof buf, "%s=%a\n", k, v);
        out += buf;
    };
    auto u64 = [&](const char *k, unsigned long long v) {
        std::snprintf(buf, sizeof buf, "%s=%llu\n", k, v);
        out += buf;
    };
    u64("targetCycles", run.targetCycles);
    u64("hostCycles", run.hostCycles);
    u64("recordCount", run.recordCount);
    u64("intervalsSeen", run.intervalsSeen);
    for (uint64_t c : snapCycles)
        u64("snapCycle", c);
    num("mean", rep.averagePower.mean);
    num("halfWidth", rep.averagePower.halfWidth);
    num("confidence", rep.averagePower.confidence);
    u64("population", rep.population);
    u64("snapshots", rep.snapshots);
    u64("dropped", rep.droppedSnapshots);
    u64("mismatches", rep.replayMismatches);
    num("modeledLoadSeconds", rep.modeledLoadSeconds);
    u64("cacheHits", rep.cacheHits);
    u64("cacheMisses", rep.cacheMisses);
    u64("degraded", rep.degraded ? 1 : 0);
    u64("valid", rep.valid ? 1 : 0);
    out += "status=" + rep.statusMessage + "\n";
    for (const core::GroupEstimate &g : rep.groups) {
        out += "group=" + g.group + "\n";
        num("groupMean", g.power.mean);
        num("groupHalfWidth", g.power.halfWidth);
    }
    for (const core::SnapshotOutcome &oc : rep.outcomes) {
        u64("ocIndex", oc.index);
        u64("ocCycle", oc.cycle);
        out += std::string("ocStatus=") +
               core::snapshotStatusName(oc.status) + "\n";
        u64("ocAttempts", oc.attempts);
        u64("ocRetried", oc.retriedOnAlternateLoader ? 1 : 0);
        u64("ocMismatches", oc.mismatches);
        out += "ocDetail=" + oc.detail + "\n";
    }
    return out;
}

/** Scoped thread-count override + zero dispatch grain (forcing every
 *  dirty level through the worker pool), restored on scope exit —
 *  including any grain the surrounding ctest env matrix exported. */
class SimThreadsGuard
{
  public:
    explicit SimThreadsGuard(unsigned threads)
    {
        const char *prev = std::getenv("STROBER_SIM_PARALLEL_GRAIN");
        hadGrain = prev != nullptr;
        if (hadGrain)
            prevGrain = prev;
        sim::setSimThreads(threads);
        ::setenv("STROBER_SIM_PARALLEL_GRAIN", "0", 1);
    }
    ~SimThreadsGuard()
    {
        sim::setSimThreads(0);
        if (hadGrain)
            ::setenv("STROBER_SIM_PARALLEL_GRAIN", prevGrain.c_str(), 1);
        else
            ::unsetenv("STROBER_SIM_PARALLEL_GRAIN");
    }

  private:
    bool hadGrain = false;
    std::string prevGrain;
};

/**
 * Thread-scheduling independence, the property the partition design
 * argues for (fixed clusters, level barriers, OR-published dirty
 * bits): the boom2w energy report from the compiled-parallel backend
 * is byte-identical — every double bit-for-bit — across a
 * {1,2,4,8}-thread matrix, and identical to the single-threaded
 * compiled backend's report. The dispatch grain is forced to zero so
 * every dirty level actually crosses the worker pool. The same
 * property runs cross-process as a ctest $STROBER_SIM_THREADS env
 * matrix (tests/CMakeLists.txt).
 */
TEST(Differential, Boom2wEnergyReportByteIdenticalAcrossThreadCounts)
{
    rtl::Design soc = cores::buildSoc(cores::SocConfig::boom2w());
    workloads::Workload wl = workloads::vvadd();

    auto runFlow = [&](Backend backend) {
        core::EnergySimulator::Config cfg;
        cfg.sampleSize = 5;
        cfg.replayLength = 64;
        cfg.backend = backend;
        core::EnergySimulator strober(soc, cfg);
        cores::SocDriver driver(soc, wl.program);
        core::RunStats run = strober.run(driver, wl.maxCycles);
        EXPECT_TRUE(driver.done());
        std::vector<uint64_t> snapCycles;
        for (const fame::ReplayableSnapshot *s :
             strober.sampler().snapshots())
            snapCycles.push_back(s->cycle());
        return serializeReport(run, strober.estimate(), snapCycles);
    };

    std::string compiled = runFlow(Backend::Compiled);
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(threads);
        SimThreadsGuard guard(threads);
        EXPECT_EQ(runFlow(Backend::CompiledParallel), compiled)
            << "compiled-parallel report diverged at " << threads
            << " thread(s)";
    }
}

} // namespace
} // namespace strober
