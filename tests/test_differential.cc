/**
 * @file
 * Differential tests between the two Simulator evaluation modes — the
 * lock-down for the activity-driven optimization. SimulatorMode::Full is
 * the naive reference sweep; SimulatorMode::ActivityDriven must be
 * observationally equivalent on *every* design and stimulus:
 *   - 50 randomized designs (shared fuzz generator, tests/fuzz_designs.h)
 *     driven for 1000+ cycles of random pokes, with cycle-by-cycle output
 *     equality and periodic whole-state sweeps (every node value, every
 *     register, every memory word, every sync read latch);
 *   - reset() mid-run, repeated evalComb(), and partially-driven cycles
 *     (undriven inputs hold their values, creating the low-activity
 *     cycles the optimization exists for);
 *   - end-to-end: two full Strober flows on the Rocket SoC, one per
 *     mode, must produce identical run statistics, identical sampled
 *     snapshots and *identical* energy estimates.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"
#include "workloads/workloads.h"

#include "fuzz_designs.h"

namespace strober {
namespace {

using rtl::Design;
using sim::Simulator;
using sim::SimulatorMode;
using strober::testing::randomDesign;

/** Assert every piece of observable state matches between the modes. */
void
expectStateEqual(const Design &d, Simulator &full, Simulator &act,
                 uint64_t seed, int cycle)
{
    for (size_t n = 0; n < d.numNodes(); ++n) {
        rtl::NodeId id = static_cast<rtl::NodeId>(n);
        ASSERT_EQ(act.peek(id), full.peek(id))
            << "seed " << seed << " cycle " << cycle << " node " << n;
    }
    for (size_t r = 0; r < d.regs().size(); ++r)
        ASSERT_EQ(act.regValue(r), full.regValue(r))
            << "seed " << seed << " cycle " << cycle << " reg " << r;
    for (size_t m = 0; m < d.mems().size(); ++m) {
        const rtl::MemInfo &mem = d.mems()[m];
        for (uint64_t a = 0; a < mem.depth; ++a)
            ASSERT_EQ(act.memWord(m, a), full.memWord(m, a))
                << "seed " << seed << " cycle " << cycle << " mem " << m
                << " addr " << a;
        if (mem.syncRead) {
            for (size_t p = 0; p < mem.reads.size(); ++p)
                ASSERT_EQ(act.syncReadData(m, p), full.syncReadData(m, p))
                    << "seed " << seed << " cycle " << cycle << " mem "
                    << m << " port " << p;
        }
    }
}

class Differential : public ::testing::TestWithParam<uint64_t> {};

/**
 * The core equivalence property: under identical random stimulus, the
 * activity-driven simulator is cycle-for-cycle indistinguishable from
 * the full sweep. Roughly a quarter of the pokes are withheld each
 * cycle so inputs frequently hold their values — the low-activity
 * condition the dirty-propagation machinery actually optimizes — and
 * a burst of completely undriven cycles exercises the near-zero
 * activity path.
 */
TEST_P(Differential, RandomDesignLockstep)
{
    const uint64_t seed = GetParam();
    Design d = randomDesign(seed);
    Simulator full(d, SimulatorMode::Full);
    Simulator act(d, SimulatorMode::ActivityDriven);
    ASSERT_EQ(full.mode(), SimulatorMode::Full);
    ASSERT_EQ(act.mode(), SimulatorMode::ActivityDriven);

    stats::Rng rng(seed * 7919 + 13);
    for (int cycle = 0; cycle < 1000; ++cycle) {
        bool quiet = cycle >= 600 && cycle < 620;
        for (rtl::NodeId in : d.inputs()) {
            // Withhold ~1/4 of the pokes (and all of them during the
            // quiet burst): undriven inputs hold their previous value.
            if (quiet || rng.nextBounded(4) == 0)
                continue;
            uint64_t v = rng.next();
            full.poke(in, v);
            act.poke(in, v);
        }
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            ASSERT_EQ(act.peek(d.outputs()[o].node),
                      full.peek(d.outputs()[o].node))
                << "seed " << seed << " cycle " << cycle << " output "
                << o;
        }
        if (cycle % 97 == 0)
            ASSERT_NO_FATAL_FAILURE(
                expectStateEqual(d, full, act, seed, cycle));
        full.step();
        act.step();
    }
    ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, act, seed, 1000));
    EXPECT_EQ(full.cycle(), act.cycle());
    EXPECT_EQ(full.nodeEvalsSkipped(), 0u);
}

/** reset() must restore both modes to the same initial state. */
TEST_P(Differential, ResetMidRunStaysEquivalent)
{
    const uint64_t seed = GetParam();
    Design d = randomDesign(seed);
    Simulator full(d, SimulatorMode::Full);
    Simulator act(d, SimulatorMode::ActivityDriven);
    stats::Rng rng(seed + 0xabcd);

    auto drive = [&](int cycles) {
        for (int c = 0; c < cycles; ++c) {
            for (rtl::NodeId in : d.inputs()) {
                uint64_t v = rng.next();
                full.poke(in, v);
                act.poke(in, v);
            }
            // Repeated evalComb() between pokes must be idempotent.
            if (c % 13 == 0) {
                full.evalComb();
                act.evalComb();
            }
            for (const rtl::OutputPort &out : d.outputs())
                ASSERT_EQ(act.peek(out.node), full.peek(out.node))
                    << "seed " << seed << " cycle " << c;
            full.step();
            act.step();
        }
    };
    drive(80);
    full.reset();
    act.reset();
    ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, act, seed, -1));
    drive(80);
    ASSERT_NO_FATAL_FAILURE(expectStateEqual(d, full, act, seed, -2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<uint64_t>(1, 51));

/**
 * The whole point of ActivityDriven: combinational cones whose inputs
 * are stable are not re-evaluated. A deep pure-input cone plus a free
 * running counter makes the skip guaranteed and deterministic: with the
 * input held, only the counter's cone re-evaluates each cycle.
 */
TEST(Differential, ActivitySkipsStableCones)
{
    rtl::Builder b("skip");
    rtl::Signal in = b.input("in", 32);
    rtl::Signal x = in;
    for (unsigned i = 0; i < 16; ++i)
        x = x + b.lit(i + 1, 32);
    b.output("cone", x);
    rtl::Signal cnt = b.reg("cnt", 8, 0);
    b.next(cnt, cnt + b.lit(1, 8));
    b.output("cnt", cnt);
    Design d = b.finish();

    Simulator sim(d, SimulatorMode::ActivityDriven);
    sim.poke("in", 5);
    sim.step(); // first sweep after reset is a full one
    uint64_t skippedAfterFirst = sim.nodeEvalsSkipped();
    sim.step(10); // input stable: the 16-adder cone must be skipped
    EXPECT_GT(sim.nodeEvalsSkipped(), skippedAfterFirst);
    EXPECT_LT(sim.activityFactor(), 1.0);
    // ...while results stay exact.
    EXPECT_EQ(sim.peek("cnt"), 11u);
    EXPECT_EQ(sim.peek("cone"), 5u + 136u); // 5 + sum(1..16)

    // The reference mode never skips and reports unit activity.
    Simulator ref(d, SimulatorMode::Full);
    ref.poke("in", 5);
    ref.step(11);
    EXPECT_EQ(ref.nodeEvalsSkipped(), 0u);
    EXPECT_EQ(ref.activityFactor(), 1.0);
    EXPECT_EQ(std::string(sim::simulatorModeName(sim.mode())), "activity");
    EXPECT_EQ(std::string(sim::simulatorModeName(ref.mode())), "full");
}

/**
 * End-to-end: the complete Strober flow (FAME1 fast sim + reservoir
 * sampling -> replay -> power aggregation) on the Rocket SoC must
 * produce identical results whichever simulator mode drives phase 1.
 * Everything downstream of phase 1 consumes only the sampled snapshots,
 * so equality here means the modes agreed on every sampled state bit
 * and every I/O trace word across the whole workload.
 */
TEST(Differential, RocketEnergyEstimateIdenticalAcrossModes)
{
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::towers();

    struct FlowResult
    {
        core::RunStats run;
        core::EnergyReport rep;
        std::vector<uint64_t> snapCycles;
        bool done = false;
        int exitCode = -1;
    };
    auto runFlow = [&](SimulatorMode mode) {
        core::EnergySimulator::Config cfg;
        cfg.sampleSize = 10;
        cfg.replayLength = 64;
        cfg.simMode = mode;
        core::EnergySimulator strober(soc, cfg);
        cores::SocDriver driver(soc, wl.program);
        FlowResult r;
        r.run = strober.run(driver, wl.maxCycles);
        r.done = driver.done();
        r.exitCode = driver.exitCode();
        for (const fame::ReplayableSnapshot *s :
             strober.sampler().snapshots())
            r.snapCycles.push_back(s->cycle());
        r.rep = strober.estimate();
        return r;
    };

    FlowResult full = runFlow(SimulatorMode::Full);
    FlowResult act = runFlow(SimulatorMode::ActivityDriven);

    // Phase 1 behaved identically...
    EXPECT_TRUE(full.done);
    EXPECT_TRUE(act.done);
    EXPECT_EQ(full.exitCode, act.exitCode);
    EXPECT_EQ(full.run.targetCycles, act.run.targetCycles);
    EXPECT_EQ(full.run.hostCycles, act.run.hostCycles);
    EXPECT_EQ(full.run.recordCount, act.run.recordCount);
    EXPECT_EQ(full.run.intervalsSeen, act.run.intervalsSeen);
    EXPECT_EQ(full.snapCycles, act.snapCycles);

    // ...and the estimates are bit-identical, not merely close.
    ASSERT_EQ(full.rep.replayMismatches, 0u);
    ASSERT_EQ(act.rep.replayMismatches, 0u);
    EXPECT_EQ(full.rep.snapshots, act.rep.snapshots);
    EXPECT_EQ(full.rep.population, act.rep.population);
    EXPECT_EQ(full.rep.averagePower.mean, act.rep.averagePower.mean);
    EXPECT_EQ(full.rep.averagePower.halfWidth,
              act.rep.averagePower.halfWidth);
    ASSERT_EQ(full.rep.groups.size(), act.rep.groups.size());
    for (size_t g = 0; g < full.rep.groups.size(); ++g) {
        EXPECT_EQ(full.rep.groups[g].group, act.rep.groups[g].group);
        EXPECT_EQ(full.rep.groups[g].power.mean,
                  act.rep.groups[g].power.mean)
            << "group " << full.rep.groups[g].group;
    }
}

} // namespace
} // namespace strober
