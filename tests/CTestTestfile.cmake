# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/test_util[1]_include.cmake")
include("/root/repo/tests/test_stats[1]_include.cmake")
include("/root/repo/tests/test_rtl[1]_include.cmake")
include("/root/repo/tests/test_lint[1]_include.cmake")
include("/root/repo/tests/test_sim[1]_include.cmake")
include("/root/repo/tests/test_codegen[1]_include.cmake")
include("/root/repo/tests/test_isa[1]_include.cmake")
include("/root/repo/tests/test_fame[1]_include.cmake")
include("/root/repo/tests/test_gate[1]_include.cmake")
include("/root/repo/tests/test_dram[1]_include.cmake")
include("/root/repo/tests/test_core[1]_include.cmake")
include("/root/repo/tests/test_cores_rocket[1]_include.cmake")
include("/root/repo/tests/test_cores_boom[1]_include.cmake")
include("/root/repo/tests/test_workloads[1]_include.cmake")
include("/root/repo/tests/test_power[1]_include.cmake")
include("/root/repo/tests/test_fuzz[1]_include.cmake")
include("/root/repo/tests/test_differential[1]_include.cmake")
include("/root/repo/tests/test_integration[1]_include.cmake")
include("/root/repo/tests/test_timed_sim[1]_include.cmake")
include("/root/repo/tests/test_export[1]_include.cmake")
include("/root/repo/tests/test_faults[1]_include.cmake")
include("/root/repo/tests/test_farm[1]_include.cmake")
include("/root/repo/tests/test_torture[1]_include.cmake")
include("/root/repo/tests/test_configs[1]_include.cmake")
