/**
 * @file
 * Tests for the end-to-end Strober flow (EnergySimulator), the target
 * harnesses, and the Section IV-E analytic performance model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/energy_sim.h"
#include "core/harness.h"
#include "core/perf_model.h"
#include "rtl/builder.h"
#include "stats/rng.h"

namespace strober {
namespace core {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::MemHandle;
using rtl::Scope;
using rtl::Signal;

Design
makeDut()
{
    Builder b("dut");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Signal acc, back, tdata;
    {
        Scope core(b, "engine");
        acc = b.reg("acc", 16, 0);
        b.next(acc, acc + b.pad(in, 16));
        MemHandle scratch = b.mem("scratch", 8, 32, false);
        Signal ptr = b.reg("ptr", 5, 0);
        b.next(ptr, ptr + b.lit(1, 5), wen);
        b.memWrite(scratch, ptr, in, wen);
        back = b.memRead(scratch, ptr);
        MemHandle table = b.mem("table", 16, 16, true);
        tdata = b.memReadSync(table, acc.bits(3, 0));
        b.memWrite(table, acc.bits(3, 0), acc, wen);
    }
    b.output("acc", acc);
    b.output("back", back);
    b.output("tdata", tdata);
    return b.finish();
}

/** Feeds a deterministic pseudo-random stimulus for a fixed cycle count. */
class NoiseDriver : public HostDriver
{
  public:
    NoiseDriver(uint64_t seed, uint64_t cycles) : rng(seed), budget(cycles)
    {
    }

    void
    drive(TargetHarness &h) override
    {
        h.setInput(0, rng.nextBounded(256));
        h.setInput(1, rng.nextBounded(2));
        --budget;
    }

    bool done() const override { return budget == 0; }

  private:
    stats::Rng rng;
    uint64_t budget;
};

TEST(Harness, RtlAndGateAgreeUnderSameDriver)
{
    Design d = makeDut();
    gate::SynthesisResult synth = gate::synthesize(d);

    RtlHarness rtl(d);
    GateHarness gsim(synth.netlist);
    NoiseDriver d1(5, 300), d2(5, 300);
    runLoop(rtl, d1, 1000);
    runLoop(gsim, d2, 1000);
    EXPECT_EQ(rtl.cycles(), 300u);
    EXPECT_EQ(gsim.cycles(), 300u);
    for (size_t o = 0; o < d.outputs().size(); ++o)
        EXPECT_EQ(rtl.getOutput(o), gsim.getOutput(o)) << "output " << o;
}

TEST(Harness, FameMatchesRtlCycleForCycle)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    FameHarness fameH(fd, nullptr);
    RtlHarness rtlH(d);
    stats::Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        uint64_t in = rng.nextBounded(256), wen = rng.nextBounded(2);
        fameH.setInput(0, in);
        fameH.setInput(1, wen);
        rtlH.setInput(0, in);
        rtlH.setInput(1, wen);
        fameH.clock();
        rtlH.clock();
        for (size_t o = 0; o < d.outputs().size(); ++o)
            ASSERT_EQ(fameH.getOutput(o), rtlH.getOutput(o))
                << "cycle " << i << " output " << o;
    }
}

TEST(EnergySimulator, EndToEndEstimateWithVerifiedReplays)
{
    Design d = makeDut();
    EnergySimulator::Config cfg;
    cfg.sampleSize = 20;
    cfg.replayLength = 64;
    cfg.confidence = 0.99;
    EnergySimulator es(d, cfg);

    NoiseDriver driver(42, 40'000);
    RunStats rs = es.run(driver, UINT64_MAX);
    EXPECT_EQ(rs.targetCycles, 40'000u);
    EXPECT_GT(rs.hostCycles, rs.targetCycles); // scan + service stalls
    EXPECT_EQ(rs.intervalsSeen, 40'000u / 64);
    EXPECT_GE(rs.recordCount, 20u);
    EXPECT_GT(rs.simulatedHz, 0.0);

    EnergyReport report = es.estimate();
    EXPECT_EQ(report.snapshots, 20u);
    EXPECT_EQ(report.replayMismatches, 0u);
    EXPECT_GT(report.averagePower.mean, 0.0);
    EXPECT_GT(report.averagePower.halfWidth, 0.0);
    EXPECT_LT(report.averagePower.relativeError(), 0.5);
    EXPECT_EQ(report.population, 40'000u / 64);
    EXPECT_FALSE(report.groups.empty());
    EXPECT_GT(report.modeledLoadSeconds, 0.0);

    // Group means must add up to the total mean.
    double groupSum = 0;
    for (const GroupEstimate &g : report.groups)
        groupSum += g.power.mean;
    EXPECT_NEAR(groupSum, report.averagePower.mean,
                report.averagePower.mean * 1e-9);
}

TEST(EnergySimulator, EstimateTracksGroundTruth)
{
    Design d = makeDut();
    EnergySimulator::Config cfg;
    cfg.sampleSize = 25;
    cfg.replayLength = 64;
    cfg.confidence = 0.99;
    EnergySimulator es(d, cfg);

    const uint64_t cycles = 20'000;
    NoiseDriver sampleDriver(7, cycles);
    es.run(sampleDriver, UINT64_MAX);
    EnergyReport report = es.estimate();

    NoiseDriver truthDriver(7, cycles);
    power::PowerReport truth = measureGroundTruth(es, truthDriver, cycles);

    double actualError = std::abs(report.averagePower.mean -
                                  truth.totalWatts()) /
                         truth.totalWatts();
    // The paper's validation: errors are small (<5%) and usually inside
    // the CI. Random stimulus is near-stationary, so 5% is generous.
    EXPECT_LT(actualError, 0.05)
        << "estimate " << report.averagePower.mean << " truth "
        << truth.totalWatts();
}

TEST(EnergySimulator, ResetSamplingAllowsSecondWorkload)
{
    Design d = makeDut();
    EnergySimulator::Config cfg;
    cfg.sampleSize = 5;
    cfg.replayLength = 32;
    EnergySimulator es(d, cfg);

    NoiseDriver w1(1, 5'000);
    es.run(w1, UINT64_MAX);
    EnergyReport r1 = es.estimate();

    es.resetSampling();
    NoiseDriver w2(2, 5'000);
    RunStats rs2 = es.run(w2, UINT64_MAX);
    EXPECT_EQ(rs2.targetCycles, 5'000u);
    EnergyReport r2 = es.estimate();
    EXPECT_GT(r2.averagePower.mean, 0.0);
    EXPECT_EQ(r2.replayMismatches, 0u);
    (void)r1;
}

TEST(EnergySimulator, EstimateWithoutRunReportsInvalid)
{
    // Calling estimate() before any run used to abort the process; a
    // farm frontend aggregating many runs must instead get a report it
    // can inspect and skip.
    Design d = makeDut();
    EnergySimulator::Config cfg;
    EnergySimulator es(d, cfg);
    EnergyReport report = es.estimate();
    EXPECT_FALSE(report.valid);
    EXPECT_TRUE(report.degraded);
    EXPECT_NE(report.statusMessage.find("zero complete intervals"),
              std::string::npos);
    EXPECT_EQ(report.snapshots, 0u);
}

TEST(PerfModel, ReproducesPaperWorkedExample)
{
    PerfModelParams p; // defaults ARE the paper's example
    PerfModelResult r = evaluatePerfModel(p);

    // Paper Section IV-E: Trun = 27778 s, Tsample = 3592 s.
    EXPECT_NEAR(r.tRun, 27778, 1.0);
    EXPECT_NEAR(r.tSample, 3592, 5.0);
    EXPECT_NEAR(r.expectedRecords, 2763, 5.0);
    // Treplay = 100 * (3 + 1000/12 + 150) / 10 (the paper prints 2333).
    EXPECT_NEAR(r.tReplay, 2363, 2.0);
    // Overall lands near the paper's ~9.4 hours.
    EXPECT_GT(r.tOverall / 3600, 9.0);
    EXPECT_LT(r.tOverall / 3600, 11.0);
    // ~3.86 days of microarchitectural simulation.
    EXPECT_NEAR(r.tMicroarchSim / 86400, 3.86, 0.05);
    // ~264 years of gate-level simulation.
    EXPECT_NEAR(r.tGateLevelSim / (365.25 * 86400), 264, 5.0);
    // Four-plus orders of magnitude vs gate level.
    EXPECT_GT(r.speedupVsGateLevel, 1e5);
    EXPECT_GT(r.speedupVsMicroarch, 5.0);
}

TEST(PerfModel, SamplingOverheadShrinksRelativelyWithRunLength)
{
    PerfModelParams shortRun;
    shortRun.totalCycles = 1'000'000'000ull;
    PerfModelParams longRun;
    longRun.totalCycles = 1'000'000'000'000ull;
    PerfModelResult a = evaluatePerfModel(shortRun);
    PerfModelResult b = evaluatePerfModel(longRun);
    EXPECT_LT(b.tSample / b.tFpgaSim, a.tSample / a.tFpgaSim);
}

TEST(PerfModelDeath, RejectsZeroParams)
{
    PerfModelParams p;
    p.sampleSize = 0;
    EXPECT_EXIT(evaluatePerfModel(p), ::testing::ExitedWithCode(1),
                "positive");
}

} // namespace
} // namespace core
} // namespace strober
