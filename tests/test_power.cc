/**
 * @file
 * Tests for the power-analysis details (clock network, duty tracking),
 * SAIF emission, VCD emission, and parallel snapshot replay.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/energy_sim.h"
#include "gate/gate_sim.h"
#include "gate/saif.h"
#include "gate/synthesis.h"
#include "power/power_analysis.h"
#include "rtl/builder.h"
#include "sim/vcd.h"
#include "stats/rng.h"

namespace strober {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::Scope;
using rtl::Signal;

Design
makeToggler()
{
    Builder b("toggler");
    Signal en = b.input("en", 1);
    Signal cnt;
    {
        Scope unit(b, "unit");
        cnt = b.reg("cnt", 8, 0);
        b.next(cnt, cnt + b.lit(1, 8), en);
    }
    b.output("o", cnt);
    return b.finish();
}

TEST(Power, ClockPowerPresentEvenWhenIdle)
{
    Design d = makeToggler();
    gate::SynthesisResult synth = gate::synthesize(d);
    gate::Placement pl = gate::place(synth.netlist);
    gate::GateSimulator gs(synth.netlist);
    gs.pokePort(0, 0); // disabled: no data switching at all
    gs.clearActivity();
    gs.step(200);
    gate::ActivityReport act{gs.toggleCounts(), gs.macroStats(),
                             gs.activityCycles()};
    power::PowerReport rep =
        power::analyzePower(synth.netlist, pl, act, 1e9);
    double clock = 0, switching = 0;
    for (const power::GroupPower &g : rep.groups) {
        clock += g.clock;
        switching += g.switching + g.internal;
    }
    EXPECT_GT(clock, 0.0);
    // 8 DFFs x 2.4 fF x 1V^2 x 1GHz = 19.2 uW.
    EXPECT_NEAR(clock, 8 * 2.4e-15 * 1e9, 1e-9);
    EXPECT_LT(switching, clock * 0.5); // idle: clock dominates
    EXPECT_NE(rep.table().find("clock(mW)"), std::string::npos);
}

TEST(Power, DutyTrackingAccumulates)
{
    Design d = makeToggler();
    gate::SynthesisResult synth = gate::synthesize(d);
    gate::GateSimulator gs(synth.netlist);
    gs.enableDutyTracking();
    gs.pokePort(0, 1);
    gs.clearActivity();
    gs.step(256);
    // Counter bit 0 alternates: high half the time.
    gate::NetId bit0 =
        synth.netlist.findDff(synth.guide.regDffNames[0][0]);
    ASSERT_NE(bit0, gate::kNoNet);
    EXPECT_NEAR(static_cast<double>(gs.highCycles()[bit0]), 128.0, 2.0);
    // Bit 7: high for the upper half of the count range.
    gate::NetId bit7 =
        synth.netlist.findDff(synth.guide.regDffNames[0][7]);
    EXPECT_NEAR(static_cast<double>(gs.highCycles()[bit7]), 128.0, 2.0);
}

TEST(Saif, WellFormedAndConsistent)
{
    Design d = makeToggler();
    gate::SynthesisResult synth = gate::synthesize(d);
    gate::GateSimulator gs(synth.netlist);
    gs.enableDutyTracking();
    gs.pokePort(0, 1);
    gs.clearActivity();
    gs.step(100);
    gate::ActivityReport act{gs.toggleCounts(), gs.macroStats(),
                             gs.activityCycles()};

    gate::SaifOptions opt;
    opt.designName = "toggler";
    opt.clockHz = 1e9;
    opt.highCycles = &gs.highCycles();
    std::string saif = gate::writeSaif(synth.netlist, act, opt);

    EXPECT_NE(saif.find("(SAIFILE"), std::string::npos);
    EXPECT_NE(saif.find("(SAIFVERSION \"2.0\")"), std::string::npos);
    EXPECT_NE(saif.find("(DESIGN \"toggler\")"), std::string::npos);
    // Duration: 100 cycles at 1 GHz = 100000 ps.
    EXPECT_NE(saif.find("(DURATION 100000)"), std::string::npos);
    // Bit 0 of the counter toggled every cycle.
    gate::NetId bit0 =
        synth.netlist.findDff(synth.guide.regDffNames[0][0]);
    std::string tc = "(TC " + std::to_string(act.netToggles[bit0]) + ")";
    EXPECT_NE(saif.find(tc), std::string::npos);
    // Balanced parens.
    long depth = 0;
    for (char c : saif) {
        if (c == '(')
            ++depth;
        if (c == ')')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    // T0 + T1 == DURATION for every net entry (spot check via totals).
    EXPECT_NE(saif.find("(T0 "), std::string::npos);
}

TEST(Saif, OmitQuietShrinksOutput)
{
    Design d = makeToggler();
    gate::SynthesisResult synth = gate::synthesize(d);
    gate::GateSimulator gs(synth.netlist);
    gs.pokePort(0, 0); // idle: nothing toggles
    gs.clearActivity();
    gs.step(10);
    gate::ActivityReport act{gs.toggleCounts(), gs.macroStats(),
                             gs.activityCycles()};
    gate::SaifOptions all, quiet;
    quiet.omitQuiet = true;
    std::string full = gate::writeSaif(synth.netlist, act, all);
    std::string slim = gate::writeSaif(synth.netlist, act, quiet);
    EXPECT_LT(slim.size(), full.size() / 2);
}

TEST(Vcd, EmitsHeaderAndChanges)
{
    Design d = makeToggler();
    sim::Simulator s(d);
    std::ostringstream out;
    sim::VcdWriter vcd(out, s);
    EXPECT_GT(vcd.signalCount(), 0u);
    s.poke("en", 1);
    for (int i = 0; i < 4; ++i) {
        vcd.sample();
        s.step();
    }
    std::string text = out.str();
    EXPECT_NE(text.find("$timescale"), std::string::npos);
    EXPECT_NE(text.find("unit.cnt"), std::string::npos);
    EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_NE(text.find("#3"), std::string::npos);
    // Counter value 3 appears as binary 11.
    EXPECT_NE(text.find("b11 "), std::string::npos);
}

TEST(Vcd, PrefixFilters)
{
    Design d = makeToggler();
    sim::Simulator s(d);
    std::ostringstream out;
    sim::VcdWriter vcd(out, s, "unit/");
    EXPECT_EQ(vcd.signalCount(), 1u); // only unit/cnt
}

TEST(ParallelReplay, MatchesSerialEstimate)
{
    // The paper parallelizes replays over P simulator instances;
    // results must be identical to serial replay.
    Builder b("dut");
    Signal in = b.input("in", 8);
    Signal acc;
    {
        Scope unit(b, "u");
        acc = b.reg("acc", 16, 0);
        b.next(acc, acc + b.pad(in, 16));
    }
    b.output("acc", acc);
    Design d = b.finish();

    class Noise : public core::HostDriver
    {
      public:
        void
        drive(core::TargetHarness &h) override
        {
            h.setInput(0, rng.nextBounded(256));
            --budget;
        }
        bool done() const override { return budget == 0; }
        stats::Rng rng{3};
        int budget = 20000;
    };

    auto runWith = [&](unsigned parallel) {
        core::EnergySimulator::Config cfg;
        cfg.sampleSize = 16;
        cfg.replayLength = 64;
        cfg.parallelReplays = parallel;
        core::EnergySimulator es(d, cfg);
        Noise driver;
        es.run(driver, UINT64_MAX);
        return es.estimate();
    };

    core::EnergyReport serial = runWith(1);
    core::EnergyReport par = runWith(4);
    EXPECT_EQ(par.replayMismatches, 0u);
    EXPECT_DOUBLE_EQ(par.averagePower.mean, serial.averagePower.mean);
    EXPECT_DOUBLE_EQ(par.averagePower.halfWidth,
                     serial.averagePower.halfWidth);
    ASSERT_EQ(par.groups.size(), serial.groups.size());
    for (size_t i = 0; i < par.groups.size(); ++i)
        EXPECT_DOUBLE_EQ(par.groups[i].power.mean,
                         serial.groups[i].power.mean);
}

} // namespace
} // namespace strober
