/**
 * @file
 * Full-pipeline integration tests: the complete Strober flow
 * (FAME1 fast sim + reservoir sampling -> synthesis/placement/matching
 * -> gate-level replay with retiming warm-up -> power aggregation) on
 * the real processor SoCs running real workloads.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "workloads/workloads.h"

namespace strober {
namespace {

TEST(Integration, RocketTowersEndToEnd)
{
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::towers();

    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 12;
    cfg.replayLength = 64;
    cfg.confidence = 0.99;
    core::EnergySimulator strober(soc, cfg);

    cores::SocDriver driver(soc, wl.program);
    core::RunStats run = strober.run(driver, wl.maxCycles);
    EXPECT_TRUE(driver.done());
    EXPECT_EQ(driver.exitCode(), wl.expectedExit);
    EXPECT_GE(run.recordCount, cfg.sampleSize);

    // The rocket SoC contains the retime-annotated multiplier, so this
    // exercises the matching guide, the skipped-retimed loader path and
    // the warm-up forcing on every snapshot.
    const gate::MatchTable &table = strober.matchTable();
    EXPECT_GT(table.retimedRegs, 0u);
    EXPECT_TRUE(table.outputsEquivalent);

    core::EnergyReport rep = strober.estimate();
    EXPECT_EQ(rep.replayMismatches, 0u);
    EXPECT_EQ(rep.snapshots, cfg.sampleSize);
    EXPECT_GT(rep.averagePower.mean, 1e-4);  // at least 0.1 mW
    EXPECT_LT(rep.averagePower.mean, 1.0);   // below a watt
    EXPECT_GT(rep.groups.size(), 5u);

    // The breakdown must contain the classic units.
    bool sawIcache = false, sawDcacheArrays = false, sawMul = false;
    for (const core::GroupEstimate &g : rep.groups) {
        sawIcache |= g.group.rfind("icache", 0) == 0;
        sawDcacheArrays |= g.group.rfind("dcache/arrays", 0) == 0;
        sawMul |= g.group.find("mul") != std::string::npos;
    }
    EXPECT_TRUE(sawIcache);
    EXPECT_TRUE(sawDcacheArrays);
    EXPECT_TRUE(sawMul);
}

TEST(Integration, BoomOneWideEndToEnd)
{
    rtl::Design soc = cores::buildSoc(cores::SocConfig::boom1w());
    workloads::Workload wl = workloads::gccLike(2);

    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 8;
    cfg.replayLength = 64;
    cfg.parallelReplays = 2;
    core::EnergySimulator strober(soc, cfg);

    cores::SocDriver driver(soc, wl.program);
    strober.run(driver, wl.maxCycles);
    EXPECT_TRUE(driver.done());
    EXPECT_EQ(driver.exitCode(), wl.expectedExit);

    core::EnergyReport rep = strober.estimate();
    EXPECT_EQ(rep.replayMismatches, 0u);
    EXPECT_GT(rep.averagePower.mean, 0.0);

    // OoO-only structures must appear in the breakdown.
    bool sawIssue = false, sawRob = false, sawRename = false;
    for (const core::GroupEstimate &g : rep.groups) {
        sawIssue |= g.group.rfind("core/issue", 0) == 0;
        sawRob |= g.group.rfind("core/rob", 0) == 0;
        sawRename |= g.group.rfind("core/rename", 0) == 0;
    }
    EXPECT_TRUE(sawIssue);
    EXPECT_TRUE(sawRob);
    EXPECT_TRUE(sawRename);
}

TEST(Integration, EstimateMatchesGroundTruthOnRocket)
{
    // A miniature Figure-8 point as a regression test: the estimate must
    // land within a loose factor of the exhaustive gate-level truth.
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::dhrystoneLike();

    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 20;
    cfg.replayLength = 128;
    core::EnergySimulator strober(soc, cfg);

    cores::SocDriver sampleDriver(soc, wl.program);
    strober.run(sampleDriver, wl.maxCycles);
    core::EnergyReport rep = strober.estimate();
    ASSERT_EQ(rep.replayMismatches, 0u);

    cores::SocDriver truthDriver(soc, wl.program);
    power::PowerReport truth =
        core::measureGroundTruth(strober, truthDriver, wl.maxCycles);

    double err = std::abs(rep.averagePower.mean - truth.totalWatts()) /
                 truth.totalWatts();
    EXPECT_LT(err, 0.15) << "estimate " << rep.averagePower.mean
                         << " truth " << truth.totalWatts();
}

TEST(Integration, SnapshotsCoverDistinctProgramPhases)
{
    // Reservoir sampling must spread snapshots across the execution.
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::vvadd();

    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 25;
    cfg.replayLength = 64;
    core::EnergySimulator strober(soc, cfg);
    cores::SocDriver driver(soc, wl.program);
    core::RunStats run = strober.run(driver, wl.maxCycles);

    auto snaps = strober.sampler().snapshots();
    ASSERT_EQ(snaps.size(), 25u);
    uint64_t third = run.targetCycles / 3;
    int early = 0, mid = 0, late = 0;
    for (const auto *s : snaps) {
        if (s->cycle() < third)
            ++early;
        else if (s->cycle() < 2 * third)
            ++mid;
        else
            ++late;
    }
    // Uniform-ish: every third of the run contributes snapshots.
    EXPECT_GT(early, 0);
    EXPECT_GT(mid, 0);
    EXPECT_GT(late, 0);
}

} // namespace
} // namespace strober
