/**
 * @file
 * Tests for the gate-level flow: synthesis correctness (lock-step against
 * the RTL interpreter), name matching, placement, state loaders, replay
 * with retiming warm-up, and power analysis.
 */

#include <gtest/gtest.h>

#include "fame/fame1.h"
#include "fame/sampler.h"
#include "fame/token_sim.h"
#include "gate/gate_sim.h"
#include "gate/matching.h"
#include "gate/placement.h"
#include "gate/replay.h"
#include "gate/state_loader.h"
#include "gate/synthesis.h"
#include "power/power_analysis.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"

namespace strober {
namespace gate {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::MemHandle;
using rtl::Op;
using rtl::Scope;
using rtl::Signal;

/** Comb design exercising every lowering path. */
Design
makeAluDesign(unsigned width)
{
    Builder b("alu");
    Signal a = b.input("a", width);
    Signal x = b.input("x", width);
    Signal sh = b.input("sh", 6);
    b.output("add", a + x);
    b.output("sub", a - x);
    b.output("neg", b.unary(Op::Neg, a));
    b.output("mul", a * x);
    b.output("divu", divu(a, x));
    b.output("remu", remu(a, x));
    b.output("andop", a & x);
    b.output("orop", a | x);
    b.output("xorop", a ^ x);
    b.output("notop", ~a);
    b.output("shl", shl(a, b.resize(sh, width)));
    b.output("shru", shru(a, b.resize(sh, width)));
    b.output("sra", sra(a, b.resize(sh, width)));
    b.output("eq", eq(a, x));
    b.output("ne", ne(a, x));
    b.output("ltu", ltu(a, x));
    b.output("lts", lts(a, x));
    b.output("redor", b.redOr(a));
    b.output("redand", b.redAnd(a));
    b.output("redxor", b.redXor(a));
    b.output("cat", b.cat(a.bits(3, 0), x.bits(3, 0)));
    b.output("sext", b.sext(a.bits(3, 0), width));
    b.output("mux", b.mux(eq(a, x), a + x, a - x));
    return b.finish();
}

/** Sequential design with both memory flavors (shared with test_fame). */
Design
makeSeqDesign()
{
    Builder b("seq");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Scope core(b, "core");
    Signal acc = b.reg("acc", 16, 0x1234);
    b.next(acc, acc + b.pad(in, 16));
    MemHandle scratch = b.mem("scratch", 8, 16, false);
    Signal ptr = b.reg("ptr", 4, 0);
    b.next(ptr, ptr + b.lit(1, 4), wen);
    b.memWrite(scratch, ptr, in, wen);
    Signal back = b.memRead(scratch, ptr);
    MemHandle table = b.mem("table", 16, 8, true);
    Signal tdata = b.memReadSync(table, acc.bits(2, 0));
    b.memWrite(table, acc.bits(2, 0), acc, wen);
    b.output("acc", acc);
    b.output("back", back);
    b.output("tdata", tdata);
    return b.finish();
}

/** 2-stage multiply pipeline annotated for retiming + downstream user. */
Design
makeRetimedDesign()
{
    Builder b("rt");
    Signal a = b.input("a", 8);
    Signal x = b.input("x", 8);
    Signal s2;
    {
        Scope mul(b, "mul");
        Signal prod = a * x; // 16 bits
        Signal s1 = b.reg("s1", 16, 0);
        b.next(s1, prod);
        s2 = b.reg("s2", 16, 0);
        b.next(s2, s1 + b.lit(3, 16));
        b.annotateRetimed("pipe", 2, {a, x}, s2, {s1, s2});
    }
    Signal acc;
    {
        Scope accum(b, "accum");
        acc = b.reg("acc", 16, 0);
        b.next(acc, acc ^ s2);
    }
    b.output("y", s2);
    b.output("acc", acc);
    return b.finish();
}

class AluSynthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AluSynthSweep, GateNetlistMatchesRtlSemantics)
{
    unsigned width = GetParam();
    Design d = makeAluDesign(width);
    SynthesisResult synth = synthesize(d);
    sim::Simulator rtlSim(d);
    GateSimulator gateSim(synth.netlist);
    stats::Rng rng(width * 7919);

    for (int iter = 0; iter < 120; ++iter) {
        uint64_t a = truncate(rng.next(), width);
        uint64_t x = truncate(rng.next(), width);
        if (iter % 5 == 0)
            x = 0; // divide-by-zero corners
        if (iter % 7 == 0)
            a = bitMask(width);
        uint64_t sh = rng.nextBounded(64);
        rtlSim.poke("a", a);
        rtlSim.poke("x", x);
        rtlSim.poke("sh", sh);
        gateSim.pokePort(0, a);
        gateSim.pokePort(1, x);
        gateSim.pokePort(2, sh);
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            ASSERT_EQ(gateSim.peekPort(o),
                      rtlSim.peek(d.outputs()[o].node))
                << "output '" << d.outputs()[o].name << "' a=" << a
                << " x=" << x << " sh=" << sh << " width=" << width;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, AluSynthSweep,
                         ::testing::Values(4u, 8u, 13u, 32u, 64u));

class ShiftBoundarySweep : public ::testing::TestWithParam<unsigned> {};

/**
 * The gate-level barrel shifter against the RTL interpreter at exactly
 * the boundary amounts that are undefined behaviour for a naive host
 * shift: width-1, width, width+1 and the all-ones amount. The amount
 * port is full operand width, so amounts far beyond the barrel's
 * log2(width) mux stages exercise its "any high bit" overflow term.
 */
TEST_P(ShiftBoundarySweep, GateShiftsMatchRtlAtBoundaryAmounts)
{
    unsigned width = GetParam();
    Builder b("shb");
    Signal a = b.input("a", width);
    Signal amt = b.input("amt", width);
    b.output("shl", shl(a, amt));
    b.output("shru", shru(a, amt));
    b.output("sra", sra(a, amt));
    Design d = b.finish();

    SynthesisResult synth = synthesize(d);
    sim::Simulator rtlSim(d);
    GateSimulator gateSim(synth.netlist);

    std::vector<uint64_t> amounts = {0, 1, width - 1, width, width + 1,
                                     bitMask(width)};
    if (width > 33)
        amounts.insert(amounts.end(), {31, 32, 33, 63});
    std::vector<uint64_t> operands = {
        0, 1, bitMask(width),                      // all-zeros/ones
        uint64_t(1) << (width - 1),                // sign bit only
        (uint64_t(1) << (width - 1)) | 1,          // negative, lsb set
        bitMask(width) >> 1,                       // max positive
        0x5555555555555555ull & bitMask(width)};
    for (uint64_t sh : amounts) {
        for (uint64_t a0 : operands) {
            rtlSim.poke("a", a0);
            rtlSim.poke("amt", sh);
            gateSim.pokePort(0, a0);
            gateSim.pokePort(1, truncate(sh, width));
            for (size_t o = 0; o < d.outputs().size(); ++o) {
                ASSERT_EQ(gateSim.peekPort(o),
                          rtlSim.peek(d.outputs()[o].node))
                    << "output '" << d.outputs()[o].name << "' a=" << a0
                    << " amt=" << sh << " width=" << width;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, ShiftBoundarySweep,
                         ::testing::Values(2u, 8u, 16u, 33u, 64u));

TEST(Synthesis, SequentialLockstep)
{
    Design d = makeSeqDesign();
    SynthesisResult synth = synthesize(d);
    sim::Simulator rtlSim(d);
    GateSimulator gateSim(synth.netlist);
    stats::Rng rng(404);

    for (int cycle = 0; cycle < 300; ++cycle) {
        uint64_t in = rng.nextBounded(256);
        uint64_t wen = rng.nextBounded(2);
        rtlSim.poke("in", in);
        rtlSim.poke("wen", wen);
        gateSim.pokePort(0, in);
        gateSim.pokePort(1, wen);
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            ASSERT_EQ(gateSim.peekPort(o), rtlSim.peek(d.outputs()[o].node))
                << "cycle " << cycle << " output "
                << d.outputs()[o].name;
        }
        rtlSim.step();
        gateSim.step();
    }
}

TEST(Synthesis, StatsAndMangledNames)
{
    Design d = makeSeqDesign();
    SynthesisResult synth = synthesize(d);
    EXPECT_GT(synth.stats.liveGates, 20u);
    EXPECT_GT(synth.stats.foldedGates, 0u);
    EXPECT_EQ(synth.stats.dffCount, 16u + 4u); // acc + ptr bits
    // Names are mangled: no '/' and a _reg_N_ suffix.
    for (const auto &names : synth.guide.regDffNames) {
        for (const std::string &n : names) {
            EXPECT_EQ(n.find('/'), std::string::npos) << n;
            EXPECT_NE(n.find("_reg_"), std::string::npos) << n;
        }
    }
    // The RTL names do NOT exist in the gate netlist.
    EXPECT_EQ(synth.netlist.findDff("core/acc"), kNoNet);
    // Macros exist with mangled names.
    EXPECT_EQ(synth.guide.memMacroNames.size(), 2u);
    EXPECT_GE(synth.netlist.macros().size(), 2u);
    EXPECT_GT(synth.netlist.totalAreaUm2(), 0.0);
}

TEST(Synthesis, ConstantFoldingShrinksNetlist)
{
    // y = a & 0 should fold to constant zero: no And gates at all.
    Builder b("fold");
    Signal a = b.input("a", 16);
    b.output("y", a & b.lit(0, 16));
    b.output("z", a | b.lit(0xffff, 16));
    Design d = b.finish();
    SynthesisResult synth = synthesize(d);
    EXPECT_GT(synth.stats.foldedGates, 0u);
    uint64_t live = synth.netlist.liveGateCount();
    EXPECT_LE(live, 2u); // only tie cells may remain
}

TEST(Matching, FullVerificationWithoutRetiming)
{
    Design d = makeSeqDesign();
    SynthesisResult synth = synthesize(d);
    MatchTable table = matchDesigns(d, synth.netlist, synth.guide);
    EXPECT_EQ(table.matchedRegs, d.regs().size());
    EXPECT_EQ(table.retimedRegs, 0u);
    EXPECT_EQ(table.verifiedRegs, d.regs().size());
    EXPECT_TRUE(table.outputsEquivalent);
    for (size_t i = 0; i < d.regs().size(); ++i) {
        EXPECT_TRUE(table.regVerified[i]);
        EXPECT_EQ(table.regToDff[i].size(),
                  d.node(d.regs()[i].node).width);
    }
}

TEST(MatchingDeath, CorruptGuideIsCaught)
{
    Design d = makeSeqDesign();
    SynthesisResult synth = synthesize(d);
    SynthesisGuide bad = synth.guide;
    bad.regDffNames[0][0] = "no_such_dff";
    EXPECT_EXIT(matchDesigns(d, synth.netlist, bad),
                ::testing::ExitedWithCode(1), "unknown DFF");
    // Swapping two same-width registers' names must fail verification.
    SynthesisGuide swapped = synth.guide;
    std::swap(swapped.regDffNames[0][0], swapped.regDffNames[0][1]);
    EXPECT_EXIT(matchDesigns(d, synth.netlist, swapped),
                ::testing::ExitedWithCode(1), "trajectory");
}

TEST(Retiming, DissolvesAnnotatedRegisters)
{
    Design d = makeRetimedDesign();
    SynthesisResult synth = synthesize(d);
    ASSERT_EQ(synth.netlist.retime().size(), 1u);
    EXPECT_GT(synth.stats.retimedDffCount, 0u);
    EXPECT_TRUE(synth.guide.regRetimed[d.findReg("mul/s1")]);
    EXPECT_TRUE(synth.guide.regRetimed[d.findReg("mul/s2")]);
    EXPECT_FALSE(synth.guide.regRetimed[d.findReg("accum/acc")]);

    MatchTable table = matchDesigns(d, synth.netlist, synth.guide);
    EXPECT_EQ(table.retimedRegs, 2u);
    EXPECT_EQ(table.matchedRegs, 1u);
}

TEST(Retiming, GateOutputsMatchAfterLatency)
{
    Design d = makeRetimedDesign();
    SynthesisResult synth = synthesize(d);
    sim::Simulator rtlSim(d);
    GateSimulator gateSim(synth.netlist);
    stats::Rng rng(11);
    for (int cycle = 0; cycle < 200; ++cycle) {
        uint64_t a = rng.nextBounded(256);
        uint64_t x = rng.nextBounded(256);
        rtlSim.poke("a", a);
        rtlSim.poke("x", x);
        gateSim.pokePort(0, a);
        gateSim.pokePort(1, x);
        if (cycle >= 2) {
            // After the pipeline fills, the retimed netlist is
            // cycle-for-cycle equal on the region output.
            EXPECT_EQ(gateSim.peekPort(0), rtlSim.peek("y"))
                << "cycle " << cycle;
        }
        rtlSim.step();
        gateSim.step();
    }
}

TEST(GateSim, ToggleCountingOnCounter)
{
    Builder b("cnt");
    Signal c = b.reg("c", 8, 0);
    b.next(c, c + b.lit(1, 8));
    b.output("o", c);
    Design d = b.finish();
    SynthesisResult synth = synthesize(d);
    GateSimulator gs(synth.netlist);
    gs.clearActivity();
    gs.step(256);
    // Bit 0 toggles every cycle, bit 1 every 2nd, bit k every 2^k-th.
    const auto &guide = synth.guide.regDffNames[0];
    for (unsigned bitIdx = 0; bitIdx < 8; ++bitIdx) {
        NetId net = synth.netlist.findDff(guide[bitIdx]);
        ASSERT_NE(net, kNoNet);
        EXPECT_EQ(gs.toggleCounts()[net], 256u >> bitIdx)
            << "bit " << bitIdx;
    }
    EXPECT_EQ(gs.activityCycles(), 256u);
}

TEST(GateSim, MacroAccessCounting)
{
    Design d = makeSeqDesign();
    SynthesisResult synth = synthesize(d);
    GateSimulator gs(synth.netlist);
    gs.pokePort(0, 5);
    gs.pokePort(1, 1); // wen
    gs.step(10);
    int tableIdx = synth.netlist.findMacro(synth.guide.memMacroNames[1]);
    ASSERT_GE(tableIdx, 0);
    const MacroStats &stats = gs.macroStats()[tableIdx];
    EXPECT_EQ(stats.writes, 10u);
    EXPECT_EQ(stats.reads, 10u);
}

TEST(Placement, BlocksAndWireCaps)
{
    Design d = makeSeqDesign();
    SynthesisResult synth = synthesize(d);
    Placement pl = place(synth.netlist);
    EXPECT_GT(pl.dieWidthUm, 0.0);
    EXPECT_GT(pl.totalWireCapFf(), 0.0);
    bool sawCore = false;
    for (const BlockPlacement &blk : pl.blocks) {
        if (blk.gates == 0 && blk.macroBits == 0)
            continue;
        EXPECT_GE(blk.x1, blk.x0);
        EXPECT_LE(blk.x1, pl.dieWidthUm + 1e-6);
        if (blk.name.rfind("core", 0) == 0)
            sawCore = true;
    }
    EXPECT_TRUE(sawCore);
}

/** End-to-end: FAME sim -> snapshot -> gate replay, no retiming. */
TEST(GateReplay, SnapshotReplaysBitExact)
{
    Design d = makeSeqDesign();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::TokenSimulator ts(fd);
    fame::ScanChains chains(fd.design);
    stats::Rng rng(2024);

    auto drive = [&](int cycles) {
        for (int i = 0; i < cycles; ++i) {
            ts.enqueueInput(0, rng.nextBounded(256));
            ts.enqueueInput(1, rng.nextBounded(2));
            ts.tryStep();
            for (size_t o = 0; o < ts.numOutputs(); ++o)
                ts.dequeueOutput(o);
        }
    };
    drive(700);
    fame::ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 128);
    drive(128);
    ASSERT_TRUE(snap.complete);

    SynthesisResult synth = synthesize(d);
    MatchTable table = matchDesigns(d, synth.netlist, synth.guide);
    GateSimulator gs(synth.netlist);
    util::Result<GateReplayResult> r = replayOnGate(gs, d, table, snap);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_TRUE(r->ok()) << r->firstMismatch;
    EXPECT_EQ(r->cyclesReplayed, 128u);
    EXPECT_EQ(r->activity.cycles, 128u);
    EXPECT_GT(r->load.commands, 0u);
}

/** End-to-end with retiming: warm-up must recover the moved registers. */
TEST(GateReplay, RetimedRegionWarmupRecoversState)
{
    Design d = makeRetimedDesign();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::TokenSimulator ts(fd);
    fame::ScanChains chains(fd.design);
    stats::Rng rng(31337);

    auto drive = [&](int cycles) {
        for (int i = 0; i < cycles; ++i) {
            ts.enqueueInput(0, rng.nextBounded(256));
            ts.enqueueInput(1, rng.nextBounded(256));
            ts.tryStep();
            for (size_t o = 0; o < ts.numOutputs(); ++o)
                ts.dequeueOutput(o);
        }
    };
    drive(333);
    fame::ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 64);
    drive(64);
    ASSERT_TRUE(snap.complete);

    SynthesisResult synth = synthesize(d);
    MatchTable table = matchDesigns(d, synth.netlist, synth.guide);
    GateSimulator gs(synth.netlist);
    util::Result<GateReplayResult> r = replayOnGate(gs, d, table, snap);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_TRUE(r->ok()) << r->firstMismatch;
    // The retimed registers were skipped by the loader.
    EXPECT_EQ(r->load.skippedRetimed, 32u);
}


/** Two independent retimed regions in one design must both recover. */
TEST(GateReplay, TwoRetimedRegionsWarmIndependently)
{
    Builder b("rt2");
    Signal a = b.input("a", 8);
    Signal x = b.input("x", 8);
    Signal y2;
    {
        Scope m1(b, "m1");
        Signal prod = a * x;
        Signal s1 = b.reg("s1", 16, 0);
        b.next(s1, prod);
        Signal s2 = b.reg("s2", 16, 0);
        b.next(s2, s1);
        b.annotateRetimed("pipe", 2, {a, x}, s2, {s1, s2});
        y2 = s2;
    }
    Signal z3;
    {
        Scope m2(b, "m2");
        Signal mix = (b.pad(a, 16) ^ y2) + b.pad(x, 16);
        Signal t1 = b.reg("t1", 16, 0);
        b.next(t1, mix);
        Signal t2 = b.reg("t2", 16, 0);
        b.next(t2, t1 + b.lit(1, 16));
        Signal t3 = b.reg("t3", 16, 0);
        b.next(t3, t2);
        b.annotateRetimed("pipe", 3, {a, x, y2}, t3, {t1, t2, t3});
        z3 = t3;
    }
    Signal acc = b.reg("acc", 16, 0);
    b.next(acc, acc ^ z3);
    b.output("y", y2);
    b.output("z", z3);
    b.output("acc", acc);
    Design d = b.finish();

    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::TokenSimulator ts(fd);
    fame::ScanChains chains(fd.design);
    stats::Rng rng(777);
    auto drive = [&](int cycles) {
        for (int i = 0; i < cycles; ++i) {
            ts.enqueueInput(0, rng.nextBounded(256));
            ts.enqueueInput(1, rng.nextBounded(256));
            ts.tryStep();
            for (size_t o = 0; o < ts.numOutputs(); ++o)
                ts.dequeueOutput(o);
        }
    };
    drive(240);
    fame::ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 48);
    drive(48);
    ASSERT_TRUE(snap.complete);
    ASSERT_EQ(snap.retimeHistory.size(), 2u);

    SynthesisResult synth = synthesize(d);
    EXPECT_EQ(synth.netlist.retime().size(), 2u);
    MatchTable table = matchDesigns(d, synth.netlist, synth.guide);
    EXPECT_EQ(table.retimedRegs, 5u);
    GateSimulator gs(synth.netlist);
    util::Result<GateReplayResult> r = replayOnGate(gs, d, table, snap);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_TRUE(r->ok()) << r->firstMismatch;
}

TEST(SnapshotDeath, CaptureWhileRecordingRejected)
{
    Design d = makeSeqDesign();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::TokenSimulator ts(fd);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot s1, s2;
    ts.captureSnapshot(chains, &s1, 16);
    EXPECT_EXIT(ts.captureSnapshot(chains, &s2, 16),
                ::testing::ExitedWithCode(1), "still recording");
}

TEST(StateLoader, SlowAndFastContrast)
{
    Design d = makeSeqDesign();
    SynthesisResult synth = synthesize(d);
    MatchTable table = matchDesigns(d, synth.netlist, synth.guide);

    // Fabricate a snapshot from a short run.
    fame::Fame1Design fd = fame::fame1Transform(d);
    sim::Simulator fs(fd.design);
    fame::ScanChains chains(fd.design);
    fame::StateSnapshot state = chains.capture(fs, 0);

    GateSimulator gs(synth.netlist);
    LoadReport slow =
        loadState(gs, d, table, state, LoaderKind::SlowScript).value();
    LoadReport fast =
        loadState(gs, d, table, state, LoaderKind::FastVpi).value();
    EXPECT_EQ(slow.commands, fast.commands);
    EXPECT_NEAR(slow.modeledSeconds / fast.modeledSeconds, 50.0, 1e-6);
    // Commands: 20 dff bits + 16 + 8 macro words + 1 sync read register.
    EXPECT_EQ(fast.commands, 20u + 16u + 8u + 1u);
}

TEST(Power, ActiveVersusIdle)
{
    Design d = makeSeqDesign();
    SynthesisResult synth = synthesize(d);
    Placement pl = place(synth.netlist);
    GateSimulator gs(synth.netlist);

    // Idle: no input changes, accumulator still counts (in=0 freezes acc).
    gs.pokePort(0, 0);
    gs.pokePort(1, 0);
    gs.clearActivity();
    gs.step(500);
    ActivityReport idle{gs.toggleCounts(), gs.macroStats(),
                        gs.activityCycles()};
    power::PowerReport idleReport =
        power::analyzePower(synth.netlist, pl, idle, 1e9);

    // Active: random inputs every cycle.
    stats::Rng rng(77);
    gs.clearActivity();
    for (int i = 0; i < 500; ++i) {
        gs.pokePort(0, rng.nextBounded(256));
        gs.pokePort(1, 1);
        gs.step();
    }
    ActivityReport act{gs.toggleCounts(), gs.macroStats(),
                       gs.activityCycles()};
    power::PowerReport activeReport =
        power::analyzePower(synth.netlist, pl, act, 1e9);

    EXPECT_GT(idleReport.totalWatts(), 0.0); // leakage at least
    EXPECT_GT(activeReport.totalWatts(), idleReport.totalWatts());
    // Per-group rows must sum to the total.
    double sum = 0;
    for (const auto &g : activeReport.groups)
        sum += g.total();
    EXPECT_NEAR(sum, activeReport.totalWatts(), 1e-12);
    EXPECT_GT(activeReport.prefixWatts("core"), 0.0);
    EXPECT_FALSE(activeReport.table().empty());
}

TEST(PowerDeath, EmptyWindowRejected)
{
    Design d = makeSeqDesign();
    SynthesisResult synth = synthesize(d);
    Placement pl = place(synth.netlist);
    ActivityReport empty;
    empty.netToggles.assign(synth.netlist.numNodes(), 0);
    empty.cycles = 0;
    EXPECT_EXIT(power::analyzePower(synth.netlist, pl, empty, 1e9),
                ::testing::ExitedWithCode(1), "empty activity");
}

} // namespace
} // namespace gate
} // namespace strober
