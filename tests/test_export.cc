/**
 * @file
 * Tests for the interchange formats: binary snapshot serialization
 * (round-trip + corruption detection) and structural Verilog export
 * (well-formedness and content checks).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "fame/fame1.h"
#include "fame/replay.h"
#include "fame/snapshot_io.h"
#include "gate/synthesis.h"
#include "cores/soc.h"
#include "gate/verilog.h"
#include "rtl/builder.h"
#include "stats/rng.h"
#include "util/status.h"

namespace strober {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::Signal;

Design
makeDut()
{
    Builder b("dut");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Signal acc = b.reg("acc", 16, 0);
    b.next(acc, acc + b.pad(in, 16));
    rtl::MemHandle m = b.mem("ram", 8, 16, false);
    Signal ptr = b.reg("ptr", 4, 0);
    b.next(ptr, ptr + b.lit(1, 4), wen);
    b.memWrite(m, ptr, in, wen);
    b.output("acc", acc);
    b.output("rd", b.memRead(m, ptr));
    rtl::MemHandle t = b.mem("tab", 16, 8, true);
    b.memWrite(t, acc.bits(2, 0), acc, wen);
    b.output("td", b.memReadSync(t, acc.bits(2, 0)));
    return b.finish();
}

fame::ReplayableSnapshot
captureOne(const Design &d, const fame::Fame1Design &fd,
           const fame::ScanChains &chains)
{
    fame::TokenSimulator ts(fd);
    stats::Rng rng(8);
    auto drive = [&](int cycles) {
        for (int i = 0; i < cycles; ++i) {
            ts.enqueueInput(0, rng.nextBounded(256));
            ts.enqueueInput(1, rng.nextBounded(2));
            ts.tryStep();
            for (size_t o = 0; o < ts.numOutputs(); ++o)
                ts.dequeueOutput(o);
        }
    };
    drive(200);
    fame::ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 32);
    drive(32);
    (void)d;
    return snap;
}

TEST(SnapshotIo, RoundTripReplaysIdentically)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap = captureOne(d, fd, chains);

    std::stringstream buffer;
    ASSERT_TRUE(fame::writeSnapshot(buffer, chains, snap).isOk());
    util::Result<fame::ReplayableSnapshot> read =
        fame::readSnapshot(buffer, chains);
    ASSERT_TRUE(read.isOk()) << read.status().toString();
    fame::ReplayableSnapshot loaded = *read;

    EXPECT_EQ(loaded.cycle(), snap.cycle());
    EXPECT_EQ(loaded.state.regValues, snap.state.regValues);
    EXPECT_EQ(loaded.state.memContents, snap.state.memContents);
    EXPECT_EQ(loaded.inputTrace, snap.inputTrace);
    EXPECT_EQ(loaded.outputTrace, snap.outputTrace);
    EXPECT_EQ(loaded.retimeHistory, snap.retimeHistory);

    util::Result<fame::ReplayResult> r = fame::replayOnRtl(d, chains, loaded);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_TRUE(r->ok()) << r->firstMismatch;
}

TEST(SnapshotIo, DetectsCorruption)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap = captureOne(d, fd, chains);

    std::stringstream buffer;
    ASSERT_TRUE(fame::writeSnapshot(buffer, chains, snap).isOk());
    std::string bytes = buffer.str();

    // Bad magic.
    std::string badMagic = bytes;
    badMagic[0] ^= 0xff;
    std::istringstream in1(badMagic);
    util::Result<fame::ReplayableSnapshot> r1 =
        fame::readSnapshot(in1, chains);
    ASSERT_FALSE(r1.isOk());
    EXPECT_EQ(r1.status().code(), util::ErrorCode::Corrupt);
    EXPECT_NE(r1.status().message().find("bad magic"), std::string::npos);

    // Version-1 files predate the CRC sections and must be refused, not
    // guessed at.
    std::string v1 = bytes;
    v1[0] = '1'; // "STRBSNP2" -> "STRBSNP1" ('2' is the magic's low byte)
    std::istringstream in1b(v1);
    util::Result<fame::ReplayableSnapshot> r1b =
        fame::readSnapshot(in1b, chains);
    ASSERT_FALSE(r1b.isOk());
    EXPECT_EQ(r1b.status().code(), util::ErrorCode::Unsupported);

    // Truncated stream.
    std::istringstream in2(bytes.substr(0, bytes.size() / 2));
    util::Result<fame::ReplayableSnapshot> r2r =
        fame::readSnapshot(in2, chains);
    ASSERT_FALSE(r2r.isOk());
    EXPECT_EQ(r2r.status().code(), util::ErrorCode::Corrupt);
    EXPECT_NE(r2r.status().message().find("truncated"), std::string::npos);

    // A single flipped payload bit (deep in a trace section, where no
    // structural check would notice) must trip that section's CRC.
    std::string flipped = bytes;
    flipped[bytes.size() - 16] ^= 0x10;
    std::istringstream in2b(flipped);
    util::Result<fame::ReplayableSnapshot> r2b =
        fame::readSnapshot(in2b, chains);
    ASSERT_FALSE(r2b.isOk());
    EXPECT_EQ(r2b.status().code(), util::ErrorCode::Corrupt);
    EXPECT_NE(r2b.status().message().find("CRC"), std::string::npos);

    // Wrong design: different cache geometry.
    Builder b2("other");
    Signal i = b2.input("i", 4);
    Signal r2 = b2.reg("r", 4, 0);
    b2.next(r2, i);
    b2.output("o", r2);
    Design other = b2.finish();
    fame::ScanChains otherChains(other);
    std::istringstream in3(bytes);
    util::Result<fame::ReplayableSnapshot> r3 =
        fame::readSnapshot(in3, otherChains);
    ASSERT_FALSE(r3.isOk());
    EXPECT_EQ(r3.status().code(), util::ErrorCode::GeometryMismatch);
    EXPECT_NE(r3.status().message().find("different design"),
              std::string::npos);
}

TEST(ScanChainDeath, RejectsWrongLengthBitstream)
{
    Design d = makeDut();
    fame::ScanChains chains(d);
    size_t expect = (chains.totalBits() + 63) / 64;

    std::vector<uint64_t> tooLong(expect + 1, 0);
    EXPECT_EXIT(chains.decode(tooLong), ::testing::ExitedWithCode(1),
                "truncated capture or wrong design");
    std::vector<uint64_t> tooShort(expect - 1, 0);
    EXPECT_EXIT(chains.decode(tooShort), ::testing::ExitedWithCode(1),
                "truncated capture or wrong design");
}

TEST(SnapshotIo, DetectsWrongStateWordCount)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap = captureOne(d, fd, chains);

    std::stringstream buffer;
    ASSERT_TRUE(fame::writeSnapshot(buffer, chains, snap).isOk());
    std::string bytes = buffer.str();

    // The state vector's word count is the little-endian u64 at offset 36
    // (after the 32-byte header payload and its 4-byte CRC). Shrinking it
    // by one must be caught before the trailing words are misparsed as
    // traces.
    ASSERT_GT(static_cast<unsigned char>(bytes[36]), 0);
    std::string shrunk = bytes;
    shrunk[36] = static_cast<char>(shrunk[36] - 1);
    std::istringstream in(shrunk);
    util::Result<fame::ReplayableSnapshot> r =
        fame::readSnapshot(in, chains);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), util::ErrorCode::Corrupt);
    EXPECT_NE(r.status().message().find("words, design needs"),
              std::string::npos);
}

TEST(SnapshotIo, DetectsAbsurdTraceDimensions)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap = captureOne(d, fd, chains);

    std::stringstream buffer;
    ASSERT_TRUE(fame::writeSnapshot(buffer, chains, snap).isOk());
    std::string bytes = buffer.str();

    // The input-trace length follows the state section (count word,
    // state words, section CRC). Corrupt its high bytes so it decodes to
    // an absurd count; the reader must refuse rather than attempt a huge
    // allocation and then underrun.
    size_t stateWords = (chains.totalBits() + 63) / 64;
    size_t lengthOff = 36 + 8 + stateWords * 8 + 4;
    ASSERT_LT(lengthOff + 8, bytes.size());
    std::string corrupt = bytes;
    corrupt[lengthOff + 6] = static_cast<char>(0xff);
    std::istringstream in(corrupt);
    util::Result<fame::ReplayableSnapshot> r =
        fame::readSnapshot(in, chains);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), util::ErrorCode::Corrupt);
    EXPECT_NE(r.status().message().find("corrupt"), std::string::npos);
}

TEST(SnapshotIo, RefusesIncompleteSnapshot)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap; // incomplete
    std::stringstream buffer;
    util::Status st = fame::writeSnapshot(buffer, chains, snap);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), util::ErrorCode::InvalidArgument);
    EXPECT_NE(st.message().find("incomplete"), std::string::npos);
}

TEST(Verilog, WellFormedStructuralOutput)
{
    Design d = makeDut();
    gate::SynthesisResult synth = gate::synthesize(d);
    std::string v = gate::writeVerilog(synth.netlist, "dut_gates");

    EXPECT_NE(v.find("module dut_gates"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    EXPECT_NE(v.find("input wire clock"), std::string::npos);
    EXPECT_NE(v.find("always @(posedge clock)"), std::string::npos);
    // Port bundles for every RTL port.
    EXPECT_NE(v.find("\\in "), std::string::npos);
    EXPECT_NE(v.find("\\acc "), std::string::npos);
    // Mangled DFF names appear as escaped identifiers.
    EXPECT_NE(v.find(synth.guide.regDffNames[0][0]), std::string::npos);
    // Memories become behavioral arrays.
    EXPECT_NE(v.find("[0:15]"), std::string::npos);
    EXPECT_NE(v.find("[0:7]"), std::string::npos);
    // Every named wire/reg declaration is terminated.
    EXPECT_EQ(v.find(";;"), std::string::npos);
    // Balanced begin/end in always blocks: count keywords.
    size_t begins = 0, ends = 0;
    for (size_t pos = 0; (pos = v.find("begin", pos)) != std::string::npos;
         pos += 5)
        ++begins;
    for (size_t pos = 0; (pos = v.find("  end", pos)) != std::string::npos;
         pos += 5)
        ++ends;
    EXPECT_EQ(begins, ends);
}

TEST(Verilog, ExportsWholeSocWithoutBlowingUp)
{
    // Smoke test at scale: the rocket SoC netlist exports and the text
    // contains its macro arrays and a plausible cell count.
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    gate::SynthesisResult synth = gate::synthesize(soc);
    std::string v = gate::writeVerilog(synth.netlist, "rocket_gates");
    EXPECT_GT(v.size(), 100000u);
    EXPECT_NE(v.find("icache"), std::string::npos);
    EXPECT_NE(v.find("dcache"), std::string::npos);
}

} // namespace
} // namespace strober
