/**
 * @file
 * Tests for the interchange formats: binary snapshot serialization
 * (round-trip + corruption detection) and structural Verilog export
 * (well-formedness and content checks).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "fame/fame1.h"
#include "fame/replay.h"
#include "fame/snapshot_io.h"
#include "gate/synthesis.h"
#include "cores/soc.h"
#include "gate/verilog.h"
#include "rtl/builder.h"
#include "stats/rng.h"

namespace strober {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::Signal;

Design
makeDut()
{
    Builder b("dut");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Signal acc = b.reg("acc", 16, 0);
    b.next(acc, acc + b.pad(in, 16));
    rtl::MemHandle m = b.mem("ram", 8, 16, false);
    Signal ptr = b.reg("ptr", 4, 0);
    b.next(ptr, ptr + b.lit(1, 4), wen);
    b.memWrite(m, ptr, in, wen);
    b.output("acc", acc);
    b.output("rd", b.memRead(m, ptr));
    rtl::MemHandle t = b.mem("tab", 16, 8, true);
    b.memWrite(t, acc.bits(2, 0), acc, wen);
    b.output("td", b.memReadSync(t, acc.bits(2, 0)));
    return b.finish();
}

fame::ReplayableSnapshot
captureOne(const Design &d, const fame::Fame1Design &fd,
           const fame::ScanChains &chains)
{
    fame::TokenSimulator ts(fd);
    stats::Rng rng(8);
    auto drive = [&](int cycles) {
        for (int i = 0; i < cycles; ++i) {
            ts.enqueueInput(0, rng.nextBounded(256));
            ts.enqueueInput(1, rng.nextBounded(2));
            ts.tryStep();
            for (size_t o = 0; o < ts.numOutputs(); ++o)
                ts.dequeueOutput(o);
        }
    };
    drive(200);
    fame::ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 32);
    drive(32);
    (void)d;
    return snap;
}

TEST(SnapshotIo, RoundTripReplaysIdentically)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap = captureOne(d, fd, chains);

    std::stringstream buffer;
    fame::writeSnapshot(buffer, chains, snap);
    fame::ReplayableSnapshot loaded =
        fame::readSnapshot(buffer, chains);

    EXPECT_EQ(loaded.cycle(), snap.cycle());
    EXPECT_EQ(loaded.state.regValues, snap.state.regValues);
    EXPECT_EQ(loaded.state.memContents, snap.state.memContents);
    EXPECT_EQ(loaded.inputTrace, snap.inputTrace);
    EXPECT_EQ(loaded.outputTrace, snap.outputTrace);
    EXPECT_EQ(loaded.retimeHistory, snap.retimeHistory);

    fame::ReplayResult r = fame::replayOnRtl(d, chains, loaded);
    EXPECT_TRUE(r.ok()) << r.firstMismatch;
}

TEST(SnapshotIoDeath, DetectsCorruption)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap = captureOne(d, fd, chains);

    std::stringstream buffer;
    fame::writeSnapshot(buffer, chains, snap);
    std::string bytes = buffer.str();

    // Bad magic.
    std::string badMagic = bytes;
    badMagic[0] ^= 0xff;
    std::istringstream in1(badMagic);
    EXPECT_EXIT(fame::readSnapshot(in1, chains),
                ::testing::ExitedWithCode(1), "bad magic");

    // Truncated stream.
    std::istringstream in2(bytes.substr(0, bytes.size() / 2));
    EXPECT_EXIT(fame::readSnapshot(in2, chains),
                ::testing::ExitedWithCode(1), "truncated");

    // Wrong design: different cache geometry.
    Builder b2("other");
    Signal i = b2.input("i", 4);
    Signal r2 = b2.reg("r", 4, 0);
    b2.next(r2, i);
    b2.output("o", r2);
    Design other = b2.finish();
    fame::ScanChains otherChains(other);
    std::istringstream in3(bytes);
    EXPECT_EXIT(fame::readSnapshot(in3, otherChains),
                ::testing::ExitedWithCode(1), "different design");
}

TEST(ScanChainDeath, RejectsWrongLengthBitstream)
{
    Design d = makeDut();
    fame::ScanChains chains(d);
    size_t expect = (chains.totalBits() + 63) / 64;

    std::vector<uint64_t> tooLong(expect + 1, 0);
    EXPECT_EXIT(chains.decode(tooLong), ::testing::ExitedWithCode(1),
                "truncated capture or wrong design");
    std::vector<uint64_t> tooShort(expect - 1, 0);
    EXPECT_EXIT(chains.decode(tooShort), ::testing::ExitedWithCode(1),
                "truncated capture or wrong design");
}

TEST(SnapshotIoDeath, DetectsWrongStateWordCount)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap = captureOne(d, fd, chains);

    std::stringstream buffer;
    fame::writeSnapshot(buffer, chains, snap);
    std::string bytes = buffer.str();

    // The state vector's word count is the little-endian u64 at offset 32
    // (after magic, version, totalBits and cycle). Shrinking it by one
    // must be caught before the trailing words are misparsed as traces.
    ASSERT_GT(static_cast<unsigned char>(bytes[32]), 0);
    std::string shrunk = bytes;
    shrunk[32] = static_cast<char>(shrunk[32] - 1);
    std::istringstream in(shrunk);
    EXPECT_EXIT(fame::readSnapshot(in, chains),
                ::testing::ExitedWithCode(1), "words, design needs");
}

TEST(SnapshotIoDeath, DetectsAbsurdTraceDimensions)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap = captureOne(d, fd, chains);

    std::stringstream buffer;
    fame::writeSnapshot(buffer, chains, snap);
    std::string bytes = buffer.str();

    // The input-trace length follows the state vector. Corrupt its high
    // bytes so it decodes to an absurd count; the reader must refuse
    // rather than attempt a huge allocation and then underrun.
    size_t stateWords = (chains.totalBits() + 63) / 64;
    size_t lengthOff = 32 + 8 + stateWords * 8;
    ASSERT_LT(lengthOff + 8, bytes.size());
    std::string corrupt = bytes;
    corrupt[lengthOff + 6] = static_cast<char>(0xff);
    std::istringstream in(corrupt);
    EXPECT_EXIT(fame::readSnapshot(in, chains),
                ::testing::ExitedWithCode(1), "corrupt");
}

TEST(SnapshotIoDeath, RefusesIncompleteSnapshot)
{
    Design d = makeDut();
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::ScanChains chains(fd.design);
    fame::ReplayableSnapshot snap; // incomplete
    std::stringstream buffer;
    EXPECT_EXIT(fame::writeSnapshot(buffer, chains, snap),
                ::testing::ExitedWithCode(1), "incomplete");
}

TEST(Verilog, WellFormedStructuralOutput)
{
    Design d = makeDut();
    gate::SynthesisResult synth = gate::synthesize(d);
    std::string v = gate::writeVerilog(synth.netlist, "dut_gates");

    EXPECT_NE(v.find("module dut_gates"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    EXPECT_NE(v.find("input wire clock"), std::string::npos);
    EXPECT_NE(v.find("always @(posedge clock)"), std::string::npos);
    // Port bundles for every RTL port.
    EXPECT_NE(v.find("\\in "), std::string::npos);
    EXPECT_NE(v.find("\\acc "), std::string::npos);
    // Mangled DFF names appear as escaped identifiers.
    EXPECT_NE(v.find(synth.guide.regDffNames[0][0]), std::string::npos);
    // Memories become behavioral arrays.
    EXPECT_NE(v.find("[0:15]"), std::string::npos);
    EXPECT_NE(v.find("[0:7]"), std::string::npos);
    // Every named wire/reg declaration is terminated.
    EXPECT_EQ(v.find(";;"), std::string::npos);
    // Balanced begin/end in always blocks: count keywords.
    size_t begins = 0, ends = 0;
    for (size_t pos = 0; (pos = v.find("begin", pos)) != std::string::npos;
         pos += 5)
        ++begins;
    for (size_t pos = 0; (pos = v.find("  end", pos)) != std::string::npos;
         pos += 5)
        ++ends;
    EXPECT_EQ(begins, ends);
}

TEST(Verilog, ExportsWholeSocWithoutBlowingUp)
{
    // Smoke test at scale: the rocket SoC netlist exports and the text
    // contains its macro arrays and a plausible cell count.
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    gate::SynthesisResult synth = gate::synthesize(soc);
    std::string v = gate::writeVerilog(synth.netlist, "rocket_gates");
    EXPECT_GT(v.size(), 100000u);
    EXPECT_NE(v.find("icache"), std::string::npos);
    EXPECT_NE(v.find("dcache"), std::string::npos);
}

} // namespace
} // namespace strober
