/**
 * @file
 * Tests for the trace interchange subsystem (src/trace) and its export
 * half (sim::VcdWriter ports-only dumps, gate::writeSaif):
 *
 *  - streaming VCD header/body parsing, including every malformed-input
 *    class the reader must reject with a Status (truncated header,
 *    unknown identifier code, value wider than declared, out-of-order
 *    timestamps, 4-state and real values) — never a crash;
 *  - a never-crash sweep over the checked-in fuzz corpus
 *    (the .vcd files under tests/vcd_corpus/);
 *  - signal-to-port binding diagnostics (trace-unbound-input,
 *    trace-ambiguous, trace-width-mismatch, trace-clock-ignored);
 *  - the round-trip gate: a generator-driven flow dumped with
 *    sim::VcdWriter and re-ingested through trace::TraceDriver must
 *    produce a bit-identical EnergyReport, on a small design and on
 *    the Rocket SoC, across all four simulator backends;
 *  - the VcdWriter wide-signal regression (>64-bit nodes are skipped
 *    with a counted $comment, never emitted truncated);
 *  - SAIF golden files: gate::writeSaif output is byte-exact against
 *    checked-in references, with and without duty tracking, and
 *    T0 + T1 == DURATION for every net entry when duty is tracked.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/energy_sim.h"
#include "core/harness.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "farm/report.h"
#include "gate/gate_sim.h"
#include "gate/saif.h"
#include "gate/synthesis.h"
#include "lint/diagnostics.h"
#include "rtl/builder.h"
#include "sim/vcd.h"
#include "stats/rng.h"
#include "trace/stimulus.h"
#include "trace/vcd_reader.h"
#include "workloads/workloads.h"

#ifndef STROBER_TEST_DATA_DIR
#error "STROBER_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace strober {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::Scope;
using rtl::Signal;
using sim::Backend;
using trace::parseVcdHeader;
using trace::VcdCursor;
using trace::VcdHeader;
using util::ErrorCode;

// --- Small shared fixtures ----------------------------------------------

/** 8-bit accumulator: one data input, one output, a couple of regs. */
Design
makeAccumulator()
{
    Builder b("dut");
    Signal in = b.input("in", 8);
    Signal acc;
    {
        Scope unit(b, "u");
        acc = b.reg("acc", 16, 0);
        b.next(acc, acc + b.pad(in, 16));
    }
    b.output("acc", acc);
    return b.finish();
}

/** Deterministic random stimulus with a fixed cycle budget. */
class NoiseDriver : public core::HostDriver
{
  public:
    explicit NoiseDriver(uint64_t seed, int cycles)
        : rng(seed), budget(cycles)
    {
    }
    void
    drive(core::TargetHarness &h) override
    {
        h.setInput(0, rng.nextBounded(256));
        --budget;
    }
    bool done() const override { return budget == 0; }

  private:
    stats::Rng rng;
    int budget;
};

util::Result<VcdHeader>
parse(const std::string &text)
{
    std::istringstream in(text);
    return parseVcdHeader(in);
}

/** A well-formed two-signal header used by several body tests. */
const char *kSmallHeader =
    "$date today $end\n"
    "$timescale 1ns $end\n"
    "$scope module top $end\n"
    "$var wire 1 ! en $end\n"
    "$var wire 8 \" u.cnt $end\n"
    "$upscope $end\n"
    "$enddefinitions $end\n";

/** Parse header + walk the whole body; return the first error (or Ok). */
util::Status
walkBody(const std::string &text, uint64_t *stepsOut = nullptr)
{
    std::istringstream in(text);
    util::Result<VcdHeader> hdr = parseVcdHeader(in);
    if (!hdr.isOk())
        return hdr.status();
    VcdCursor cur(in, hdr.value());
    for (;;) {
        util::Result<bool> r = cur.advance();
        if (!r.isOk())
            return r.status();
        if (!r.value())
            break;
    }
    if (stepsOut)
        *stepsOut = cur.stepsDelivered();
    return util::Status();
}

// --- Header parsing ------------------------------------------------------

TEST(VcdHeaderParse, ScopesWidthsAndTimescale)
{
    util::Result<VcdHeader> r = parse(
        "$timescale 1ns $end\n"
        "$scope module soc $end\n"
        "$scope module core $end\n"
        "$var wire 32 ! pc $end\n"
        "$upscope $end\n"
        "$var wire 1 \" io.valid $end\n"
        "$upscope $end\n"
        "$enddefinitions $end\n");
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    const VcdHeader &h = r.value();
    EXPECT_EQ(h.timescale, "1ns");
    ASSERT_EQ(h.vars.size(), 2u);
    EXPECT_EQ(h.vars[0].name, "soc/core/pc");
    EXPECT_EQ(h.vars[0].width, 32u);
    // '.' in leaf names folds into the '/' convention.
    EXPECT_EQ(h.vars[1].name, "soc/io/valid");
    EXPECT_EQ(h.findVar("soc/core/pc"), 0);
    EXPECT_EQ(h.findVar("nope"), -1);
}

TEST(VcdHeaderParse, SkipsUnknownSections)
{
    util::Result<VcdHeader> r = parse(
        "$date some day $end\n"
        "$version tool 1.0 $end\n"
        "$somethingcustom a b c $end\n"
        "$var wire 4 ! x $end\n"
        "$enddefinitions $end\n");
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r.value().vars.size(), 1u);
}

TEST(VcdHeaderParse, TruncatedHeaderRejected)
{
    // EOF before $enddefinitions.
    util::Result<VcdHeader> r1 =
        parse("$scope module top $end\n$var wire 1 ! en $end\n");
    ASSERT_FALSE(r1.isOk());
    EXPECT_EQ(r1.status().code(), ErrorCode::Corrupt);

    // $var cut off mid-declaration.
    util::Result<VcdHeader> r2 = parse("$var wire 8");
    ASSERT_FALSE(r2.isOk());
    EXPECT_EQ(r2.status().code(), ErrorCode::Corrupt);

    // $scope without a name.
    util::Result<VcdHeader> r3 = parse("$scope module $end\n");
    ASSERT_FALSE(r3.isOk());
    EXPECT_EQ(r3.status().code(), ErrorCode::Corrupt);

    // Garbage width.
    util::Result<VcdHeader> r4 =
        parse("$var wire eight ! en $end\n$enddefinitions $end\n");
    ASSERT_FALSE(r4.isOk());
    EXPECT_EQ(r4.status().code(), ErrorCode::Corrupt);

    // Value-change token before the header ended.
    util::Result<VcdHeader> r5 = parse("#0\n");
    ASSERT_FALSE(r5.isOk());
    EXPECT_EQ(r5.status().code(), ErrorCode::Corrupt);
}

// --- Body streaming ------------------------------------------------------

TEST(VcdCursor, StickyValuesAcrossTimestampGaps)
{
    std::string text = std::string(kSmallHeader) +
                       "$dumpvars\n0!\nb0 \"\n$end\n"
                       "#0\n1!\nb101 \"\n"
                       "#3\n0!\n"
                       "#10\nb11111111 \"\n";
    std::istringstream in(text);
    util::Result<VcdHeader> hdr = parseVcdHeader(in);
    ASSERT_TRUE(hdr.isOk());
    VcdCursor cur(in, hdr.value());

    util::Result<bool> s1 = cur.advance();
    ASSERT_TRUE(s1.isOk() && s1.value());
    EXPECT_EQ(cur.time(), 0u);
    EXPECT_EQ(cur.value(0), 1u);
    EXPECT_EQ(cur.value(1), 5u);

    util::Result<bool> s2 = cur.advance();
    ASSERT_TRUE(s2.isOk() && s2.value());
    EXPECT_EQ(cur.time(), 3u);
    EXPECT_EQ(cur.value(0), 0u);
    EXPECT_EQ(cur.value(1), 5u); // sticky across the change-less gap

    util::Result<bool> s3 = cur.advance();
    ASSERT_TRUE(s3.isOk() && s3.value());
    EXPECT_EQ(cur.time(), 10u);
    EXPECT_EQ(cur.value(1), 255u);
    EXPECT_EQ(cur.stepsDelivered(), 3u);

    util::Result<bool> s4 = cur.advance();
    ASSERT_TRUE(s4.isOk());
    EXPECT_FALSE(s4.value()); // end of trace
}

TEST(VcdCursor, RejectsUnknownIdentifierCode)
{
    util::Status s =
        walkBody(std::string(kSmallHeader) + "#0\n1%\n");
    ASSERT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::Corrupt);
    EXPECT_NE(s.message().find("unknown identifier"), std::string::npos);

    util::Status v =
        walkBody(std::string(kSmallHeader) + "#0\nb101 %\n");
    ASSERT_FALSE(v.isOk());
    EXPECT_EQ(v.code(), ErrorCode::Corrupt);
}

TEST(VcdCursor, RejectsValueWiderThanDeclared)
{
    // 'en' is declared 1 bit wide; 9 bits on the 8-bit counter too.
    util::Status s =
        walkBody(std::string(kSmallHeader) + "#0\nb10 !\n");
    ASSERT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::Corrupt);
    EXPECT_NE(s.message().find("wider than declared"), std::string::npos);

    util::Status t =
        walkBody(std::string(kSmallHeader) + "#0\nb111111111 \"\n");
    ASSERT_FALSE(t.isOk());
    EXPECT_EQ(t.code(), ErrorCode::Corrupt);
}

TEST(VcdCursor, RejectsOutOfOrderTimestamps)
{
    util::Status s =
        walkBody(std::string(kSmallHeader) + "#5\n1!\n#3\n0!\n");
    ASSERT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::Corrupt);
    EXPECT_NE(s.message().find("out-of-order"), std::string::npos);

    // Duplicate timestamps are out-of-order too.
    util::Status d =
        walkBody(std::string(kSmallHeader) + "#5\n1!\n#5\n0!\n");
    ASSERT_FALSE(d.isOk());
    EXPECT_EQ(d.code(), ErrorCode::Corrupt);
}

TEST(VcdCursor, RejectsFourStateAndRealValues)
{
    util::Status x = walkBody(std::string(kSmallHeader) + "#0\nx!\n");
    ASSERT_FALSE(x.isOk());
    EXPECT_EQ(x.code(), ErrorCode::Unsupported);

    util::Status z =
        walkBody(std::string(kSmallHeader) + "#0\nbz01 \"\n");
    ASSERT_FALSE(z.isOk());
    EXPECT_EQ(z.code(), ErrorCode::Unsupported);

    util::Status r =
        walkBody(std::string(kSmallHeader) + "#0\nr3.14 !\n");
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.code(), ErrorCode::Unsupported);
}

TEST(VcdCursor, WideVarsSyntaxCheckedButNotStored)
{
    std::string header =
        "$var wire 128 ! big $end\n"
        "$var wire 8 \" small $end\n"
        "$enddefinitions $end\n";
    // A 70-bit value on the 128-bit var is legal syntax and ignored.
    std::string good = header + "#0\nb" + std::string(70, '1') +
                       " !\nb11 \"\n#1\nb1 \"\n";
    std::istringstream in(good);
    util::Result<VcdHeader> hdr = parseVcdHeader(in);
    ASSERT_TRUE(hdr.isOk());
    EXPECT_TRUE(hdr.value().vars[0].wide());
    VcdCursor cur(in, hdr.value());
    ASSERT_TRUE(cur.advance().isOk());
    EXPECT_EQ(cur.value(0), 0u); // wide: never stored
    EXPECT_EQ(cur.value(1), 3u);

    // Width checks still apply to wide vars.
    util::Status s =
        walkBody(header + "#0\nb" + std::string(129, '1') + " !\n");
    ASSERT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::Corrupt);
}

TEST(VcdFingerprint, ContentHashAndMissingFile)
{
    std::string a = testing::TempDir() + "fp_a.vcd";
    std::string b = testing::TempDir() + "fp_b.vcd";
    std::ofstream(a) << "$enddefinitions $end\n#0\n";
    std::ofstream(b) << "$enddefinitions $end\n#1\n";
    util::Result<uint64_t> fa = trace::fileFingerprint(a);
    util::Result<uint64_t> fb = trace::fileFingerprint(b);
    ASSERT_TRUE(fa.isOk());
    ASSERT_TRUE(fb.isOk());
    EXPECT_NE(fa.value(), fb.value());
    EXPECT_EQ(fa.value(), trace::fileFingerprint(a).value());

    util::Result<uint64_t> missing =
        trace::fileFingerprint(testing::TempDir() + "no_such_file.vcd");
    ASSERT_FALSE(missing.isOk());
    EXPECT_EQ(missing.status().code(), ErrorCode::IoError);
}

// --- Fuzz corpus: malformed input is an error, never a crash -------------

TEST(VcdCorpus, NeverCrashes)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(STROBER_TEST_DATA_DIR) / "vcd_corpus";
    ASSERT_TRUE(fs::is_directory(dir)) << dir;
    size_t seen = 0;
    for (const fs::directory_entry &e : fs::directory_iterator(dir)) {
        if (e.path().extension() != ".vcd")
            continue;
        ++seen;
        SCOPED_TRACE(e.path().filename().string());
        std::ifstream in(e.path(), std::ios::binary);
        ASSERT_TRUE(in.good());
        util::Result<VcdHeader> hdr = parseVcdHeader(in);
        if (!hdr.isOk())
            continue; // rejected cleanly
        VcdCursor cur(in, hdr.value());
        for (uint64_t steps = 0; steps < 100000; ++steps) {
            util::Result<bool> r = cur.advance();
            if (!r.isOk() || !r.value())
                break; // error or end of trace, both fine
        }
        // Workload loading must survive the same inputs.
        (void)trace::loadTraceWorkload(e.path().string());
    }
    EXPECT_GE(seen, 8u) << "fuzz corpus went missing";
}

// --- Binding diagnostics -------------------------------------------------

TEST(StimulusBind, ExactAndSuffixMatch)
{
    Design d = makeAccumulator();
    util::Result<VcdHeader> hdr = parse(
        "$scope module dut $end\n"
        "$var wire 1 ! clock $end\n"
        "$var wire 8 \" in $end\n"
        "$var wire 16 # acc $end\n"
        "$upscope $end\n"
        "$enddefinitions $end\n");
    ASSERT_TRUE(hdr.isOk());
    lint::Diagnostics diags;
    util::Result<trace::Stimulus> st =
        trace::Stimulus::bind(d, hdr.value(), {}, &diags);
    ASSERT_TRUE(st.isOk()) << st.status().toString();
    ASSERT_EQ(st.value().bindings().size(), 1u);
    EXPECT_EQ(st.value().bindings()[0].varIndex, 1u); // dut/in by suffix
    EXPECT_EQ(st.value().bindings()[0].portIndex, 0u);
    EXPECT_TRUE(diags.hasRule("trace-clock-ignored"));
    EXPECT_TRUE(diags.hasRule("trace-unused")); // the 'acc' output
    EXPECT_FALSE(diags.hasErrors());
}

TEST(StimulusBind, ReportsUnboundInput)
{
    Design d = makeAccumulator();
    util::Result<VcdHeader> hdr =
        parse("$var wire 8 ! other $end\n$enddefinitions $end\n");
    ASSERT_TRUE(hdr.isOk());
    lint::Diagnostics diags;
    util::Result<trace::Stimulus> st =
        trace::Stimulus::bind(d, hdr.value(), {}, &diags);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.status().code(), ErrorCode::InvalidArgument);
    EXPECT_TRUE(diags.hasRule("trace-unbound-input"));
}

TEST(StimulusBind, ReportsAmbiguousMatch)
{
    Design d = makeAccumulator();
    util::Result<VcdHeader> hdr = parse(
        "$scope module a $end\n$var wire 8 ! in $end\n$upscope $end\n"
        "$scope module b $end\n$var wire 8 \" in $end\n$upscope $end\n"
        "$enddefinitions $end\n");
    ASSERT_TRUE(hdr.isOk());
    lint::Diagnostics diags;
    util::Result<trace::Stimulus> st =
        trace::Stimulus::bind(d, hdr.value(), {}, &diags);
    ASSERT_FALSE(st.isOk());
    EXPECT_TRUE(diags.hasRule("trace-ambiguous"));
}

TEST(StimulusBind, ReportsWidthMismatch)
{
    Design d = makeAccumulator();
    util::Result<VcdHeader> hdr =
        parse("$var wire 16 ! in $end\n$enddefinitions $end\n");
    ASSERT_TRUE(hdr.isOk());
    lint::Diagnostics diags;
    util::Result<trace::Stimulus> st =
        trace::Stimulus::bind(d, hdr.value(), {}, &diags);
    ASSERT_FALSE(st.isOk());
    EXPECT_TRUE(diags.hasRule("trace-width-mismatch"));
}

TEST(StimulusBind, ExplicitClockSignalExcluded)
{
    // An 8-bit signal named like the input but designated as the clock
    // must not shadow the real binding.
    Design d = makeAccumulator();
    util::Result<VcdHeader> hdr = parse(
        "$scope module dut $end\n"
        "$var wire 8 ! in $end\n"
        "$var wire 8 \" tick/in $end\n"
        "$upscope $end\n"
        "$enddefinitions $end\n");
    ASSERT_TRUE(hdr.isOk());
    trace::StimulusOptions opts;
    opts.clockSignal = "dut.tick.in";
    lint::Diagnostics diags;
    util::Result<trace::Stimulus> st =
        trace::Stimulus::bind(d, hdr.value(), opts, &diags);
    ASSERT_TRUE(st.isOk()) << st.status().toString();
    ASSERT_EQ(st.value().bindings().size(), 1u);
    EXPECT_EQ(st.value().bindings()[0].varIndex, 0u);
    EXPECT_TRUE(diags.hasRule("trace-clock-ignored"));
}

// --- TraceDriver behavior ------------------------------------------------

TEST(TraceDriver, EmptyTraceRejected)
{
    std::string path = testing::TempDir() + "empty_trace.vcd";
    std::ofstream(path) << "$var wire 8 ! in $end\n$enddefinitions $end\n";
    Design d = makeAccumulator();
    util::Result<std::unique_ptr<trace::TraceDriver>> drv =
        trace::TraceDriver::open(path, d);
    ASSERT_FALSE(drv.isOk());
    EXPECT_EQ(drv.status().code(), ErrorCode::InvalidArgument);
}

TEST(TraceDriver, MidBodyErrorParksStatusAndFinishes)
{
    std::string path = testing::TempDir() + "midbody_error.vcd";
    std::ofstream(path) << "$var wire 8 ! in $end\n$enddefinitions $end\n"
                        << "#0\nb1 !\n#1\nb10 !\n#2\nqqq\n";
    Design d = makeAccumulator();
    util::Result<std::unique_ptr<trace::TraceDriver>> drv =
        trace::TraceDriver::open(path, d);
    ASSERT_TRUE(drv.isOk()) << drv.status().toString();
    core::RtlHarness h(d);
    while (!drv.value()->done() && h.cycles() < 100) {
        drv.value()->drive(h);
        h.clock();
    }
    EXPECT_TRUE(drv.value()->done());
    EXPECT_FALSE(drv.value()->status().isOk());
    EXPECT_EQ(drv.value()->status().code(), ErrorCode::Corrupt);
}

TEST(TraceWorkload, NamesAndFingerprints)
{
    std::string path = testing::TempDir() + "named_trace.vcd";
    std::ofstream(path) << "$var wire 8 ! in $end\n$enddefinitions $end\n"
                        << "#0\nb1 !\n";
    util::Result<trace::TraceWorkload> wl = trace::loadTraceWorkload(path);
    ASSERT_TRUE(wl.isOk()) << wl.status().toString();
    EXPECT_EQ(wl.value().name, "trace:named_trace.vcd");
    EXPECT_NE(wl.value().fingerprint, 0u);
    EXPECT_EQ(wl.value().path, path);

    util::Result<trace::TraceWorkload> bad =
        trace::loadTraceWorkload(testing::TempDir() + "nope.vcd");
    ASSERT_FALSE(bad.isOk());
    EXPECT_EQ(bad.status().code(), ErrorCode::IoError);
}

// --- The round-trip gate -------------------------------------------------

/**
 * Dump a generator-driven run as a ports-only VCD, re-ingest it, and
 * require the trace-driven EnergyReport to render byte-identically to
 * the generator-driven one — per backend, via the same deterministic
 * rendering the farm and the service daemon cmp against.
 */
template <typename MakeDriver>
void
expectRoundTripIdentical(const Design &soc, MakeDriver makeDriver,
                         uint64_t genMaxCycles, size_t sampleSize,
                         const std::string &vcdPath)
{
    {
        std::ofstream out(vcdPath, std::ios::binary);
        ASSERT_TRUE(out.good());
        core::RtlHarness harness(soc);
        sim::VcdWriter::Options vopts;
        vopts.portsOnly = true;
        sim::VcdWriter vcd(out, harness.simulator(), vopts);
        std::unique_ptr<core::HostDriver> driver = makeDriver();
        // Same per-cycle contract as the energy-sim loop: timestamp t
        // carries the inputs of target cycle t.
        while (!driver->done() && harness.cycles() < genMaxCycles) {
            driver->drive(harness);
            vcd.sample();
            harness.clock();
        }
        ASSERT_TRUE(driver->done());
        ASSERT_EQ(vcd.wideSignalsSkipped(), 0u);
    }

    for (Backend backend :
         {Backend::InterpretedFull, Backend::InterpretedActivity,
          Backend::Compiled, Backend::CompiledParallel}) {
        SCOPED_TRACE(sim::backendName(backend));

        core::EnergySimulator::Config cfg;
        cfg.sampleSize = sampleSize;
        cfg.replayLength = 64;
        cfg.backend = backend;

        core::EnergySimulator gen(soc, cfg);
        std::unique_ptr<core::HostDriver> genDriver = makeDriver();
        core::RunStats genRun = gen.run(*genDriver, genMaxCycles);
        std::string genText = farm::renderReportDeterministic(gen.estimate());

        lint::Diagnostics diags;
        util::Result<std::unique_ptr<trace::TraceDriver>> trc =
            trace::TraceDriver::open(vcdPath, soc, {}, &diags);
        ASSERT_TRUE(trc.isOk())
            << trc.status().toString() << "\n" << diags.str();
        core::EnergySimulator replay(soc, cfg);
        core::RunStats trcRun = replay.run(*trc.value(), UINT64_MAX);
        ASSERT_TRUE(trc.value()->status().isOk())
            << trc.value()->status().toString();
        std::string trcText =
            farm::renderReportDeterministic(replay.estimate());

        EXPECT_EQ(genRun.targetCycles, trcRun.targetCycles);
        EXPECT_EQ(genText, trcText);
    }
}

TEST(RoundTrip, SmallDesignIdenticalAcrossBackends)
{
    Design d = makeAccumulator();
    expectRoundTripIdentical(
        d,
        [] { return std::make_unique<NoiseDriver>(7, 20000); },
        UINT64_MAX, 16, testing::TempDir() + "roundtrip_small.vcd");
}

/** The acceptance gate: bit-identical round trip on the Rocket SoC,
 *  all four backends. */
TEST(RoundTrip, RocketIdenticalAcrossBackends)
{
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::towers();
    expectRoundTripIdentical(
        soc,
        [&] { return std::make_unique<cores::SocDriver>(soc, wl.program); },
        wl.maxCycles, 8, testing::TempDir() + "roundtrip_rocket.vcd");
}

// --- VcdWriter wide-signal regression (satellite) ------------------------

TEST(VcdWriterWide, SkipsWideSignalsWithCountedComment)
{
    Design d = makeAccumulator();
    sim::Simulator s(d);
    // The IR cannot build a >64-bit node, but the writer must stay
    // defensive: force one post-construction and require a clean skip
    // instead of a truncated (or UB-shifted) emission.
    rtl::NodeId wideId = rtl::kNoNode;
    for (rtl::NodeId id = 0; id < d.numNodes(); ++id) {
        if (d.node(id).name == "u/acc") {
            wideId = id;
            break;
        }
    }
    ASSERT_NE(wideId, rtl::kNoNode);
    d.node(wideId).width = 128;

    std::ostringstream out;
    sim::VcdWriter vcd(out, s);
    EXPECT_EQ(vcd.wideSignalsSkipped(), 1u);
    for (int i = 0; i < 3; ++i) {
        vcd.sample();
        s.step();
    }
    std::string text = out.str();
    EXPECT_NE(
        text.find("$comment strober: skipped 1 signal(s) wider than 64"),
        std::string::npos);
    // The wide node is neither declared nor sampled.
    EXPECT_EQ(text.find("u.acc"), std::string::npos);

    // And the dump must still be ingestible.
    std::istringstream in(text);
    util::Result<VcdHeader> hdr = parseVcdHeader(in);
    ASSERT_TRUE(hdr.isOk()) << hdr.status().toString();
    EXPECT_EQ(hdr.value().findVar("dut/u/acc"), -1);
    VcdCursor cur(in, hdr.value());
    util::Result<bool> step = cur.advance();
    ASSERT_TRUE(step.isOk()) << step.status().toString();
    EXPECT_TRUE(step.value());
}

// --- SAIF golden files (satellite) ---------------------------------------

Design
makeToggler()
{
    Builder b("toggler");
    Signal en = b.input("en", 1);
    Signal cnt;
    {
        Scope unit(b, "unit");
        cnt = b.reg("cnt", 8, 0);
        b.next(cnt, cnt + b.lit(1, 8), en);
    }
    b.output("o", cnt);
    return b.finish();
}

/** Render the deterministic toggler activity as SAIF. */
std::string
togglerSaif(bool duty)
{
    Design d = makeToggler();
    gate::SynthesisResult synth = gate::synthesize(d);
    gate::GateSimulator gs(synth.netlist);
    if (duty)
        gs.enableDutyTracking();
    gs.pokePort(0, 1);
    gs.clearActivity();
    gs.step(100);
    gate::ActivityReport act{gs.toggleCounts(), gs.macroStats(),
                             gs.activityCycles()};
    gate::SaifOptions opt;
    opt.designName = "toggler";
    opt.clockHz = 1e9;
    if (duty)
        opt.highCycles = &gs.highCycles();
    return gate::writeSaif(synth.netlist, act, opt);
}

/** Byte-exact comparison against a checked-in golden file. Set
 *  STROBER_UPDATE_GOLDEN=1 to regenerate the references. */
void
expectMatchesGolden(const std::string &text, const std::string &fileName)
{
    namespace fs = std::filesystem;
    fs::path path = fs::path(STROBER_TEST_DATA_DIR) / "golden" / fileName;
    if (std::getenv("STROBER_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << path;
        out << text;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << path
                           << " (regenerate with STROBER_UPDATE_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(text, buf.str()) << "SAIF output drifted from " << path;
}

TEST(SaifGolden, ByteExactWithoutDuty)
{
    expectMatchesGolden(togglerSaif(false), "toggler_noduty.saif");
}

TEST(SaifGolden, ByteExactWithDuty)
{
    expectMatchesGolden(togglerSaif(true), "toggler_duty.saif");
}

TEST(SaifGolden, DutyTimesSumToWindowDuration)
{
    std::string saif = togglerSaif(true);
    // Extract the window duration.
    size_t dpos = saif.find("(DURATION ");
    ASSERT_NE(dpos, std::string::npos);
    long long duration = std::stoll(saif.substr(dpos + 10));
    ASSERT_GT(duration, 0);
    // Every net entry: T0 + T1 == DURATION, exactly.
    size_t entries = 0;
    for (size_t pos = saif.find("(T0 "); pos != std::string::npos;
         pos = saif.find("(T0 ", pos + 1)) {
        long long t0 = std::stoll(saif.substr(pos + 4));
        size_t p1 = saif.find("(T1 ", pos);
        ASSERT_NE(p1, std::string::npos);
        long long t1 = std::stoll(saif.substr(p1 + 4));
        EXPECT_EQ(t0 + t1, duration) << "entry " << entries;
        ++entries;
    }
    EXPECT_GT(entries, 4u);
}

} // namespace
} // namespace strober
