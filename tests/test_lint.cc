/**
 * @file
 * Tests for the lint framework (src/lint): the diagnostics engine, every
 * structural rule (positive via injected defects, negative via clean
 * designs), the cross-layer FAME1 verification passes, and lint-clean
 * sweeps over the fuzz generator's designs and the bundled cores.
 */

#include <gtest/gtest.h>

#include "cores/soc.h"
#include "fame/fame1.h"
#include "fame/scan_chain.h"
#include "fuzz_designs.h"
#include "lint/lint.h"
#include "rtl/analysis.h"
#include "rtl/builder.h"

namespace strober {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::kNoNode;
using rtl::Node;
using rtl::NodeId;
using rtl::Op;
using rtl::Signal;

/** A small clean design exercising regs, async+sync mems and outputs. */
Design
makeClean()
{
    Builder b("clean");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Signal acc = b.reg("acc", 16, 0);
    b.next(acc, acc + b.pad(in, 16));
    rtl::MemHandle m = b.mem("ram", 8, 16, false);
    Signal ptr = b.reg("ptr", 4, 0);
    b.next(ptr, ptr + b.lit(1, 4), wen);
    b.memWrite(m, ptr, in, wen);
    b.output("acc", acc);
    b.output("rd", b.memRead(m, ptr));
    rtl::MemHandle t = b.mem("tab", 16, 8, true);
    b.memWrite(t, acc.bits(2, 0), acc, wen);
    b.output("td", b.memReadSync(t, acc.bits(2, 0)));
    return b.finish();
}

/** Find the first node with the given op; asserts one exists. */
NodeId
findOp(const Design &d, Op op)
{
    for (NodeId id = 0; id < d.numNodes(); ++id) {
        if (d.node(id).op == op)
            return id;
    }
    ADD_FAILURE() << "design has no " << rtl::opName(op) << " node";
    return kNoNode;
}

// --- diagnostics engine ---------------------------------------------------

TEST(Diagnostics, StrFormatAndCounters)
{
    lint::Diagnostics diags;
    diags.error("op-width", 12, "core/alu/x", "message");
    diags.warning("dead-node", kNoNode, "", "unused");
    diags.info("note", 3, "p", "fyi");

    EXPECT_EQ(diags.all()[0].str(), "error[op-width] %12 'core/alu/x': "
                                    "message");
    EXPECT_EQ(diags.all()[1].str(), "warning[dead-node]: unused");
    EXPECT_EQ(diags.size(), 3u);
    EXPECT_EQ(diags.errorCount(), 1u);
    EXPECT_EQ(diags.warningCount(), 1u);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.hasRule("dead-node"));
    EXPECT_FALSE(diags.hasRule("comb-cycle"));
    ASSERT_NE(diags.firstError(), nullptr);
    EXPECT_EQ(diags.firstError()->rule, "op-width");
    // Three lines, one per finding.
    std::string report = diags.str();
    EXPECT_EQ(std::count(report.begin(), report.end(), '\n'), 3);

    lint::Diagnostics more;
    more.error("comb-cycle", 1, "", "loop");
    diags.merge(std::move(more));
    EXPECT_EQ(diags.errorCount(), 2u);
}

TEST(Diagnostics, RegistryFindAndGlobal)
{
    const lint::Registry &reg = lint::Registry::global();
    EXPECT_GE(reg.passes().size(), 12u);
    ASSERT_NE(reg.find("op-width"), nullptr);
    EXPECT_EQ(reg.find("op-width")->severity(), lint::Severity::Error);
    ASSERT_NE(reg.find("dead-node"), nullptr);
    EXPECT_EQ(reg.find("dead-node")->severity(), lint::Severity::Warning);
    EXPECT_EQ(reg.find("no-such-rule"), nullptr);
}

TEST(Diagnostics, OptionsFilterPromoteDisable)
{
    // A design with a warning (dead adder) but no errors.
    Builder b("warned");
    Signal a = b.input("a", 8);
    (void)(a + a); // dead
    Signal r = b.reg("r", 8, 0);
    b.next(r, a);
    b.output("o", r);
    Design d = b.finish();

    lint::Diagnostics all = lint::run(d);
    EXPECT_EQ(all.errorCount(), 0u);
    EXPECT_TRUE(all.hasRule("dead-node"));

    lint::Options errorsOnly;
    errorsOnly.minSeverity = lint::Severity::Error;
    EXPECT_TRUE(lint::run(d, errorsOnly).empty());

    lint::Options werror;
    werror.werror = true;
    lint::Diagnostics promoted = lint::run(d, werror);
    EXPECT_TRUE(promoted.hasErrors());
    EXPECT_EQ(promoted.warningCount(), 0u);

    lint::Options disabled;
    disabled.disabled = {"dead-node"};
    EXPECT_FALSE(lint::run(d, disabled).hasRule("dead-node"));
}

// --- structural rules: positive (injected defects) + negative -------------

TEST(LintRules, CleanDesignHasNoFindings)
{
    EXPECT_TRUE(lint::run(makeClean()).empty());
}

TEST(LintRules, DanglingRefInjected)
{
    Design d = testing::randomDesign(7);
    NodeId victim = findOp(d, Op::Add);
    d.node(victim).args[0] = 999999;
    EXPECT_TRUE(lint::run(d).hasRule("dangling-ref"));

    Design d2 = testing::randomDesign(7);
    d2.regs()[0].next = 999999;
    EXPECT_TRUE(lint::run(d2).hasRule("dangling-ref"));

    Design d3 = testing::randomDesign(7);
    d3.node(d3.regs()[0].node).aux = 77; // break the reg's bookkeeping
    EXPECT_TRUE(lint::run(d3).hasRule("dangling-ref"));
}

TEST(LintRules, OpWidthInjected)
{
    Design d = testing::randomDesign(7);
    d.node(findOp(d, Op::Add)).width += 1;
    EXPECT_TRUE(lint::run(d).hasRule("op-width"));

    Design d2 = testing::randomDesign(7);
    NodeId c = findOp(d2, Op::Const);
    d2.node(c).imm = bitMask(d2.node(c).width) + 1;
    EXPECT_TRUE(lint::run(d2).hasRule("op-width"));

    // Mux selector wider than 1 bit.
    Design d3 = makeClean();
    Builder b("muxbad");
    Signal w = b.input("w", 4);
    Signal s = b.mux(w.bit(0), w, w);
    b.output("o", s);
    Design d4 = b.finish();
    d4.node(findOp(d4, Op::Mux)).args[0] = w.id(); // 4-bit selector
    EXPECT_TRUE(lint::run(d4).hasRule("op-width"));
    (void)d3;
}

TEST(LintRules, RegContractInjected)
{
    Design d = testing::randomDesign(7);
    d.regs()[0].next = kNoNode;
    lint::Diagnostics diags = lint::run(d);
    EXPECT_TRUE(diags.hasRule("reg-contract"));
    ASSERT_NE(diags.firstError(), nullptr);
    EXPECT_NE(diags.firstError()->message.find("no next-state driver"),
              std::string::npos);

    // Width-mismatched next driver.
    Design d2 = makeClean();
    int acc = d2.findReg("acc");
    int ptr = d2.findReg("ptr");
    ASSERT_GE(acc, 0);
    ASSERT_GE(ptr, 0);
    d2.regs()[acc].next = d2.regs()[ptr].node; // 4-bit driving 16-bit reg
    EXPECT_TRUE(lint::run(d2).hasRule("reg-contract"));

    // Reset value that doesn't fit.
    Design d3 = makeClean();
    d3.regs()[d3.findReg("ptr")].init = 0x100;
    EXPECT_TRUE(lint::run(d3).hasRule("reg-contract"));
}

TEST(LintRules, MemContractInjected)
{
    Design d = makeClean();
    d.mems()[0].depth = 0;
    EXPECT_TRUE(lint::run(d).hasRule("mem-contract"));

    // Wrong-width read address.
    Design d2 = makeClean();
    int ram = d2.findMem("ram");
    ASSERT_GE(ram, 0);
    d2.mems()[ram].reads[0].addr = d2.regs()[d2.findReg("acc")].node;
    lint::Diagnostics diags = lint::run(d2);
    EXPECT_TRUE(diags.hasRule("mem-contract"));

    // Init contents longer than the memory.
    Design d3 = makeClean();
    d3.mems()[0].init.assign(d3.mems()[0].depth + 1, 0);
    EXPECT_TRUE(lint::run(d3).hasRule("mem-contract"));
}

TEST(LintRules, CombCycleReportsEveryScc)
{
    // Hand-built: Builder::finish() would (correctly) die on this.
    Design d("cyclic");
    Node in;
    in.op = Op::Input;
    in.width = 1;
    in.name = "a";
    NodeId a = d.addNode(in);
    d.inputs().push_back(a);
    auto addAnd = [&](NodeId x, NodeId y) {
        Node n;
        n.op = Op::And;
        n.width = 1;
        n.args[0] = x;
        n.args[1] = y;
        return d.addNode(n);
    };
    // Two independent cycles: a 2-node loop and a self-loop.
    NodeId p = addAnd(a, a);
    NodeId q = addAnd(p, a);
    d.node(p).args[1] = q;
    NodeId s = addAnd(a, a);
    d.node(s).args[0] = s;
    d.outputs().push_back({"o", q});
    d.outputs().push_back({"p", s});

    lint::Diagnostics diags = lint::run(d);
    EXPECT_EQ(diags.countRule("comb-cycle"), 2u);
    EXPECT_TRUE(diags.hasErrors());

    // combSccs directly: sorted members, sorted components.
    std::vector<std::vector<NodeId>> sccs = rtl::combSccs(d);
    ASSERT_EQ(sccs.size(), 2u);
    EXPECT_EQ(sccs[0], (std::vector<NodeId>{p, q}));
    EXPECT_EQ(sccs[1], (std::vector<NodeId>{s}));
}

TEST(LintRules, CombCycleNegativeOnAcyclic)
{
    Design d = makeClean();
    EXPECT_TRUE(rtl::combSccs(d).empty());
    EXPECT_FALSE(lint::run(d).hasRule("comb-cycle"));
}

TEST(LintRules, MultiDriverInjected)
{
    Design d = makeClean();
    d.regs().push_back(d.regs()[0]); // two entries claim one Reg node
    EXPECT_TRUE(lint::run(d).hasRule("multi-driver"));
}

// --- retime-region legality -----------------------------------------------

TEST(LintRetime, FeedbackPathRejected)
{
    Builder b("loop");
    Signal a = b.input("a", 8);
    Signal r = b.reg("r", 8, 0);
    Signal sum = a + r;
    b.next(r, sum);
    b.output("o", sum);
    Design d = b.finish();
    // Annotate post-finish: finish() itself would reject this region.
    rtl::RetimeRegion region;
    region.name = "loop";
    region.latency = 1;
    region.inputs = {a.id()};
    region.output = sum.id();
    region.regs = {r.id()};
    d.retimeRegions().push_back(region);
    EXPECT_TRUE(lint::run(d).hasRule("retime-feedforward"));
}

TEST(LintRetime, ZeroLatencyRejected)
{
    Builder b("zl");
    Signal a = b.input("a", 8);
    b.output("o", a + a);
    Design d = b.finish();
    rtl::RetimeRegion region;
    region.name = "zl";
    region.latency = 0;
    region.inputs = {a.id()};
    region.output = d.outputs()[0].node;
    d.retimeRegions().push_back(region);
    EXPECT_TRUE(lint::run(d).hasRule("retime-feedforward"));
}

TEST(LintRetime, UndeclaredStateInConeRejected)
{
    Builder b("scope");
    Signal a = b.input("a", 8);
    Signal hidden = b.input("hidden", 8);
    Signal out = a + hidden;
    b.output("o", out);
    Design d = b.finish();
    rtl::RetimeRegion region;
    region.name = "scope";
    region.latency = 1;
    region.inputs = {a.id()}; // 'hidden' deliberately not declared
    region.output = out.id();
    d.retimeRegions().push_back(region);
    EXPECT_TRUE(lint::run(d).hasRule("retime-reg-scope"));
}

TEST(LintRetime, ListedRegOutsideConeAndNonRegRejected)
{
    Builder b("outside");
    Signal a = b.input("a", 8);
    Signal out = a + a;
    Signal r = b.reg("r", 8, 0); // unrelated to the region cone
    b.next(r, a);
    b.output("o", out);
    b.output("r", r);
    Design d = b.finish();

    rtl::RetimeRegion region;
    region.name = "outside";
    region.latency = 1;
    region.inputs = {a.id()};
    region.output = out.id();
    region.regs = {r.id()};
    d.retimeRegions().push_back(region);
    lint::Diagnostics diags = lint::run(d);
    EXPECT_TRUE(diags.hasRule("retime-reg-scope"));

    // Listing a combinational node as a region register.
    Design d2 = d;
    d2.retimeRegions()[0].regs = {out.id()};
    EXPECT_TRUE(lint::run(d2).hasRule("retime-reg-scope"));
}

TEST(LintRetime, ProperPipelinePasses)
{
    // finish() now runs the retime rules, so construction succeeding IS
    // the assertion; run() again to check explicitly.
    Builder b("pipe");
    Signal a = b.input("a", 8);
    Signal x = b.input("x", 8);
    Signal s1 = a + x;
    Signal r1 = b.reg("r1", 8, 0);
    b.next(r1, s1);
    Signal r2 = b.reg("r2", 8, 0);
    b.next(r2, r1);
    b.annotateRetimed("dp", 2, {a, x}, r2, {r1, r2});
    b.output("o", r2);
    Design d = b.finish();
    lint::Diagnostics diags = lint::run(d);
    EXPECT_FALSE(diags.hasRule("retime-feedforward"));
    EXPECT_FALSE(diags.hasRule("retime-reg-scope"));
}

// --- liveness / observability warnings ------------------------------------

TEST(LintWarn, DeadNodeDetected)
{
    Builder b("dead");
    Signal a = b.input("a", 8);
    (void)(a ^ a); // never used
    b.output("o", a + a);
    Design d = b.finish();
    lint::Diagnostics diags = lint::run(d);
    EXPECT_EQ(diags.countRule("dead-node"), 1u);
    EXPECT_EQ(diags.errorCount(), 0u);
}

TEST(LintWarn, UnreadableRegDetected)
{
    Builder b("blind");
    Signal a = b.input("a", 8);
    Signal r = b.reg("r", 8, 0);
    b.next(r, r + a); // state evolves but nothing observes it
    b.output("o", a);
    Design d = b.finish();
    EXPECT_TRUE(lint::run(d).hasRule("unreadable-reg"));

    // Observed through an output: clean.
    Builder b2("seen");
    Signal a2 = b2.input("a", 8);
    Signal r2 = b2.reg("r", 8, 0);
    b2.next(r2, r2 + a2);
    b2.output("o", r2);
    EXPECT_FALSE(lint::run(b2.finish()).hasRule("unreadable-reg"));
}

TEST(LintWarn, WriteOnlyMemDetected)
{
    Builder b("wom");
    Signal a = b.input("a", 8);
    rtl::MemHandle m = b.mem("buf", 8, 16, false);
    b.memWrite(m, b.resize(a, 4), a);
    b.output("o", a);
    Design d = b.finish();
    EXPECT_TRUE(lint::run(d).hasRule("write-only-mem"));
    EXPECT_FALSE(lint::run(makeClean()).hasRule("write-only-mem"));
}

TEST(LintWarn, UninitSyncReadDetected)
{
    Builder b("usr");
    Signal a = b.input("a", 3);
    rtl::MemHandle m = b.mem("rom", 16, 8, true);
    b.output("o", b.memReadSync(m, a)); // no writes, no init
    Design d = b.finish();
    EXPECT_TRUE(lint::run(d).hasRule("uninit-sync-read"));

    // With init contents it is a legitimate ROM.
    Builder b2("rom");
    Signal a2 = b2.input("a", 3);
    rtl::MemHandle m2 = b2.mem("rom", 16, 8, true);
    b2.memInit(m2, {1, 2, 3, 4, 5, 6, 7, 8});
    b2.output("o", b2.memReadSync(m2, a2));
    EXPECT_FALSE(lint::run(b2.finish()).hasRule("uninit-sync-read"));
}

// --- dataflow-powered semantic rules --------------------------------------

TEST(LintDataflow, ConstConditionDetected)
{
    Builder b("cc");
    Signal in = b.input("in", 8);
    Signal en = b.input("en", 1);
    Signal r = b.reg("r", 8, 0);
    // en | 1 is provably always asserted: the enable is vacuous.
    b.next(r, in, en | b.lit(1, 1));
    b.output("o", r);
    EXPECT_TRUE(lint::run(b.finish()).hasRule("const-condition"));

    Builder b2("cc_ok");
    Signal in2 = b2.input("in", 8);
    Signal en2 = b2.input("en", 1);
    Signal r2 = b2.reg("r", 8, 0);
    b2.next(r2, in2, en2);
    b2.output("o", r2);
    EXPECT_FALSE(lint::run(b2.finish()).hasRule("const-condition"));
}

TEST(LintDataflow, NeverEnabledDetected)
{
    Builder b("ne");
    Signal in = b.input("in", 8);
    Signal en = b.input("en", 1);
    Signal r = b.reg("r", 8, 0);
    b.next(r, in, en & b.lit(0, 1));
    b.output("o", r);
    EXPECT_TRUE(lint::run(b.finish()).hasRule("never-enabled"));

    Builder b2("ne_ok");
    Signal in2 = b2.input("in", 8);
    Signal en2 = b2.input("en", 1);
    Signal r2 = b2.reg("r", 8, 0);
    b2.next(r2, in2, en2);
    b2.output("o", r2);
    EXPECT_FALSE(lint::run(b2.finish()).hasRule("never-enabled"));
}

TEST(LintDataflow, NeverEnabledThroughRegisterFeedback)
{
    // done starts 0 and can only stay 0 (done & in), so the write port
    // gated on it can never fire — provable only through the fixed
    // point across register feedback.
    Builder b("ne_fb");
    Signal in = b.input("in", 1);
    Signal addr = b.input("addr", 4);
    Signal data = b.input("data", 8);
    Signal done = b.reg("done", 1, 0);
    b.next(done, done & in);
    rtl::MemHandle m = b.mem("buf", 8, 16, false);
    b.memWrite(m, addr, data, done);
    b.output("o", b.memRead(m, addr));
    EXPECT_TRUE(lint::run(b.finish()).hasRule("never-enabled"));
}

TEST(LintDataflow, UnreachableMuxArmDetected)
{
    Builder b("uma");
    Signal in = b.input("in", 8);
    Signal sel = b.input("sel", 1);
    // sel & 0 is provably 0: the then-arm can never be selected.
    b.output("o", b.mux(sel & b.lit(0, 1), in, in + b.lit(1, 8)));
    // sel | 1 is provably 1: the else-arm can never be selected.
    b.output("p", b.mux(sel | b.lit(1, 1), in, in + b.lit(2, 8)));
    lint::Diagnostics diags = lint::run(b.finish());
    EXPECT_EQ(diags.countRule("unreachable-mux-arm"), 2u);

    Builder b2("uma_ok");
    Signal in2 = b2.input("in", 8);
    Signal sel2 = b2.input("sel", 1);
    b2.output("o", b2.mux(sel2, in2, in2 + b2.lit(1, 8)));
    EXPECT_FALSE(lint::run(b2.finish()).hasRule("unreachable-mux-arm"));
}

TEST(LintDataflow, TruncationDropsBitsDetected)
{
    Builder b("tdb");
    Signal in = b.input("in", 8);
    // Bit 7 is provably 1 after the or, and [3:0] discards it.
    b.output("o", (in | b.lit(0x80, 8)).bits(3, 0));
    EXPECT_TRUE(lint::run(b.finish()).hasRule("truncation-drops-bits"));

    Builder b2("tdb_ok");
    Signal in2 = b2.input("in", 8);
    b2.output("o", in2.bits(3, 0));
    EXPECT_FALSE(lint::run(b2.finish()).hasRule("truncation-drops-bits"));
}

TEST(LintDataflow, ConstCompareDetected)
{
    Builder b("ccmp");
    Signal in = b.input("in", 4);
    // pad(in, 8) <= 15 < 200, so the comparison is always true.
    b.output("o", ltu(b.pad(in, 8), b.lit(200, 8)));
    EXPECT_TRUE(lint::run(b.finish()).hasRule("const-compare"));

    Builder b2("ccmp_ok");
    Signal in2 = b2.input("in", 8);
    b2.output("o", ltu(in2, b2.lit(200, 8)));
    EXPECT_FALSE(lint::run(b2.finish()).hasRule("const-compare"));

    // Two literal operands are plain dead code, not a semantic finding.
    Builder b3("ccmp_lit");
    Signal in3 = b3.input("in", 8);
    b3.output("o", in3 & b3.pad(ltu(b3.lit(1, 8), b3.lit(2, 8)), 8));
    EXPECT_FALSE(lint::run(b3.finish()).hasRule("const-compare"));
}

TEST(LintDataflow, SextNonnegDetected)
{
    Builder b("sn");
    Signal in = b.input("in", 4);
    // pad(in, 8) has bit 7 provably 0: the sext is a zext in disguise.
    b.output("o", b.sext(b.pad(in, 8), 16));
    EXPECT_TRUE(lint::run(b.finish()).hasRule("sext-nonneg"));

    Builder b2("sn_ok");
    Signal in2 = b2.input("in", 8);
    b2.output("o", b2.sext(in2, 16));
    EXPECT_FALSE(lint::run(b2.finish()).hasRule("sext-nonneg"));
}

// --- cross-layer verification passes --------------------------------------

TEST(LintFame, GatingVerifiesCleanTransform)
{
    fame::Fame1Design fd = fame::fame1Transform(makeClean());
    EXPECT_TRUE(
        lint::verifyFame1Gating(fd.design, fd.hostEnable).empty());
}

TEST(LintFame, GatingDetectsUngatedState)
{
    fame::Fame1Design fd = fame::fame1Transform(makeClean());
    Design d = fd.design;
    d.regs()[0].en = kNoNode; // always-enabled register
    EXPECT_TRUE(lint::verifyFame1Gating(d, fd.hostEnable)
                    .hasRule("fame-gating"));

    // Enable present but not dominated by host_en.
    Design d2 = fd.design;
    d2.regs()[0].en = d2.findInput("wen");
    EXPECT_TRUE(lint::verifyFame1Gating(d2, fd.hostEnable)
                    .hasRule("fame-gating"));

    // Unguarded memory write port.
    Design d3 = fd.design;
    d3.mems()[0].writes[0].en = kNoNode;
    EXPECT_TRUE(lint::verifyFame1Gating(d3, fd.hostEnable)
                    .hasRule("fame-gating"));

    // Unguarded sync read port (its data register is target state).
    Design d4 = fd.design;
    int tab = d4.findMem("tab");
    ASSERT_GE(tab, 0);
    d4.mems()[tab].reads[0].en = kNoNode;
    EXPECT_TRUE(lint::verifyFame1Gating(d4, fd.hostEnable)
                    .hasRule("fame-gating"));
}

TEST(LintFame, GatingRejectsBadHostEnable)
{
    Design d = makeClean();
    EXPECT_TRUE(lint::verifyFame1Gating(d, kNoNode).hasErrors());
    // A non-input node is not a host enable either.
    EXPECT_TRUE(
        lint::verifyFame1Gating(d, d.regs()[0].node).hasErrors());
}

TEST(LintFame, ScanCoverageVerifiesTransformedDesign)
{
    fame::Fame1Design fd = fame::fame1Transform(makeClean());
    EXPECT_TRUE(fame::verifyScanCoverage(fd.design).empty());
}

TEST(LintFame, ScanCoverageReportsDanglingRegister)
{
    fame::Fame1Design fd = fame::fame1Transform(makeClean());
    Design d = fd.design;
    d.regs()[0].node = 999999;
    EXPECT_TRUE(fame::verifyScanCoverage(d).hasRule("scan-coverage"));
}

// --- lint-clean sweeps ----------------------------------------------------

TEST(LintSweep, FuzzDesignsAreErrorFree)
{
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        Design d = testing::randomDesign(seed);
        lint::Diagnostics diags = lint::run(d);
        EXPECT_EQ(diags.errorCount(), 0u)
            << "seed " << seed << ":\n" << diags.str();
    }
}

TEST(LintSweep, RocketLintCleanAndCrossVerified)
{
    Design d = cores::buildSoc(cores::SocConfig::rocket());
    lint::Diagnostics diags = lint::run(d);
    EXPECT_EQ(diags.errorCount(), 0u) << diags.str();

    fame::Fame1Design fd = fame::fame1Transform(d);
    lint::Diagnostics gating =
        lint::verifyFame1Gating(fd.design, fd.hostEnable);
    EXPECT_TRUE(gating.empty()) << gating.str();
    lint::Diagnostics scan = fame::verifyScanCoverage(fd.design);
    EXPECT_TRUE(scan.empty()) << scan.str();
}

TEST(LintSweep, BoomCoresLintCleanAndCrossVerified)
{
    for (auto cfg : {cores::SocConfig::boom1w(),
                     cores::SocConfig::boom2w()}) {
        Design d = cores::buildSoc(cfg);
        lint::Diagnostics diags = lint::run(d);
        EXPECT_EQ(diags.errorCount(), 0u) << diags.str();

        fame::Fame1Design fd = fame::fame1Transform(d);
        lint::Diagnostics gating =
            lint::verifyFame1Gating(fd.design, fd.hostEnable);
        EXPECT_TRUE(gating.empty()) << gating.str();
        lint::Diagnostics scan = fame::verifyScanCoverage(fd.design);
        EXPECT_TRUE(scan.empty()) << scan.str();
    }
}

} // namespace
} // namespace strober
