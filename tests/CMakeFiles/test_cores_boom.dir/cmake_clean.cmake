file(REMOVE_RECURSE
  "CMakeFiles/test_cores_boom.dir/test_cores_boom.cc.o"
  "CMakeFiles/test_cores_boom.dir/test_cores_boom.cc.o.d"
  "test_cores_boom"
  "test_cores_boom.pdb"
  "test_cores_boom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cores_boom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
