# Empty dependencies file for test_cores_boom.
# This may be replaced when dependencies are built.
