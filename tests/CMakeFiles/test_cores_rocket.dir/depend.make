# Empty dependencies file for test_cores_rocket.
# This may be replaced when dependencies are built.
