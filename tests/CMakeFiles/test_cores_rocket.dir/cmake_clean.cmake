file(REMOVE_RECURSE
  "CMakeFiles/test_cores_rocket.dir/test_cores_rocket.cc.o"
  "CMakeFiles/test_cores_rocket.dir/test_cores_rocket.cc.o.d"
  "test_cores_rocket"
  "test_cores_rocket.pdb"
  "test_cores_rocket[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cores_rocket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
