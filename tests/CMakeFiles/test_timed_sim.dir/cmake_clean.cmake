file(REMOVE_RECURSE
  "CMakeFiles/test_timed_sim.dir/test_timed_sim.cc.o"
  "CMakeFiles/test_timed_sim.dir/test_timed_sim.cc.o.d"
  "test_timed_sim"
  "test_timed_sim.pdb"
  "test_timed_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
