
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_timed_sim.cc" "tests/CMakeFiles/test_timed_sim.dir/test_timed_sim.cc.o" "gcc" "tests/CMakeFiles/test_timed_sim.dir/test_timed_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/farm/CMakeFiles/strober_farm.dir/DependInfo.cmake"
  "/root/repo/src/cores/CMakeFiles/strober_cores.dir/DependInfo.cmake"
  "/root/repo/src/dram/CMakeFiles/strober_dram.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/strober_core.dir/DependInfo.cmake"
  "/root/repo/src/inject/CMakeFiles/strober_inject.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/strober_power.dir/DependInfo.cmake"
  "/root/repo/src/gate/CMakeFiles/strober_gate.dir/DependInfo.cmake"
  "/root/repo/src/fame/CMakeFiles/strober_fame.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/strober_stats.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/strober_sim.dir/DependInfo.cmake"
  "/root/repo/src/codegen/CMakeFiles/strober_codegen.dir/DependInfo.cmake"
  "/root/repo/src/rtl/CMakeFiles/strober_rtl.dir/DependInfo.cmake"
  "/root/repo/src/lint/CMakeFiles/strober_lint.dir/DependInfo.cmake"
  "/root/repo/src/workloads/CMakeFiles/strober_workloads.dir/DependInfo.cmake"
  "/root/repo/src/isa/CMakeFiles/strober_isa.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/strober_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
