# Empty dependencies file for test_timed_sim.
# This may be replaced when dependencies are built.
