# Empty dependencies file for test_fame.
# This may be replaced when dependencies are built.
