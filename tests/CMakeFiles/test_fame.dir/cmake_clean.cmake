file(REMOVE_RECURSE
  "CMakeFiles/test_fame.dir/test_fame.cc.o"
  "CMakeFiles/test_fame.dir/test_fame.cc.o.d"
  "test_fame"
  "test_fame.pdb"
  "test_fame[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
