/**
 * @file
 * Tests for the FAME1 transform, token channels, scan chains and
 * replayable-snapshot capture/replay.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "fame/fame1.h"
#include "fame/replay.h"
#include "fame/sampler.h"
#include "fame/scan_chain.h"
#include "fame/snapshot_io.h"
#include "fame/token_sim.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"
#include "util/bitstream.h"

#include "fuzz_designs.h"

namespace strober {
namespace fame {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::MemHandle;
using rtl::Signal;

TEST(Bitstream, RoundTripMixedWidths)
{
    BitWriter w;
    w.put(0x5, 3);
    w.put(0xdeadbeefcafef00dull, 64);
    w.put(1, 1);
    w.put(0x1234, 16);
    EXPECT_EQ(w.bitCount(), 84u);
    std::vector<uint64_t> bits = w.take();
    BitReader r(bits);
    EXPECT_EQ(r.get(3), 0x5u);
    EXPECT_EQ(r.get(64), 0xdeadbeefcafef00dull);
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_EQ(r.get(16), 0x1234u);
}

TEST(Bitstream, ManyRandomFields)
{
    stats::Rng rng(5);
    std::vector<std::pair<uint64_t, unsigned>> fields;
    BitWriter w;
    for (int i = 0; i < 500; ++i) {
        unsigned width = 1 + static_cast<unsigned>(rng.nextBounded(64));
        uint64_t value = truncate(rng.next(), width);
        fields.push_back({value, width});
        w.put(value, width);
    }
    std::vector<uint64_t> bits = w.take();
    BitReader r(bits);
    for (auto &[value, width] : fields)
        ASSERT_EQ(r.get(width), value);
}

/** A small datapath with registers, an async memory and a sync memory. */
Design
makeDut()
{
    Builder b("dut");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);

    Signal acc = b.reg("acc", 16, 0);
    b.next(acc, acc + b.pad(in, 16));

    MemHandle scratch = b.mem("scratch", 8, 16, /*syncRead=*/false);
    Signal ptr = b.reg("ptr", 4, 0);
    b.next(ptr, ptr + b.lit(1, 4), wen);
    b.memWrite(scratch, ptr, in, wen);
    Signal back = b.memRead(scratch, ptr);

    MemHandle table = b.mem("table", 16, 8, /*syncRead=*/true);
    Signal tdata = b.memReadSync(table, acc.bits(2, 0));
    b.memWrite(table, acc.bits(2, 0), acc, wen);

    b.output("acc", acc);
    b.output("back", back);
    b.output("tdata", tdata);
    return b.finish();
}

TEST(Fame1, HostEnableFreezesAllState)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);

    // Same state layout.
    EXPECT_EQ(fd.design.regs().size(), d.regs().size());
    EXPECT_EQ(fd.design.mems().size(), d.mems().size());
    ASSERT_NE(fd.design.findInput("host_en"), rtl::kNoNode);
    EXPECT_EQ(fd.targetInputs.size(), 2u);
    EXPECT_EQ(fd.targetOutputs.size(), 3u);

    sim::Simulator s(fd.design);
    s.poke("in", 7);
    s.poke("wen", 1);
    s.poke("host_en", 1);
    s.step(3);
    EXPECT_EQ(s.peek("acc"), 21u);

    s.poke("host_en", 0);
    s.step(5);
    // Registers, memory contents and sync read data all frozen.
    EXPECT_EQ(s.peek("acc"), 21u);
    EXPECT_EQ(s.regValue(1), 3u); // ptr advanced exactly 3 times
    EXPECT_EQ(s.memWord(0, 3), 0u); // no write while frozen

    s.poke("host_en", 1);
    s.step(1);
    EXPECT_EQ(s.peek("acc"), 28u);
}

TEST(Fame1Death, DoubleTransform)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);
    EXPECT_EXIT(fame1Transform(fd.design), ::testing::ExitedWithCode(1),
                "host_en");
}

TEST(ScanChains, GeometryAndRoundTrip)
{
    Design d = makeDut();
    ScanChains chains(d);
    // regs: acc(16) + ptr(4); sync read data: 16; ram bits: 16*8 + 8*16.
    EXPECT_EQ(chains.regChainBits(), 16u + 4 + 16);
    EXPECT_EQ(chains.ramChainBits(), 16u * 8 + 8 * 16);
    EXPECT_EQ(chains.totalBits(), d.stateBits());
    EXPECT_GT(chains.captureHostCycles(), 0u);

    sim::Simulator s(d);
    s.poke("in", 9);
    s.poke("wen", 1);
    s.step(13);

    std::vector<uint64_t> bits = chains.scanOut(s);
    StateSnapshot snap = chains.decode(bits);
    EXPECT_EQ(snap.regValues[0], 13u * 9);
    // encode(decode(x)) == x
    EXPECT_EQ(chains.encode(snap), bits);

    // Restore into a fresh simulator and compare all state.
    sim::Simulator s2(d);
    chains.restore(s2, snap);
    for (size_t i = 0; i < d.regs().size(); ++i)
        EXPECT_EQ(s2.regValue(i), s.regValue(i));
    for (size_t mi = 0; mi < d.mems().size(); ++mi) {
        for (uint64_t a = 0; a < d.mems()[mi].depth; ++a)
            EXPECT_EQ(s2.memWord(mi, a), s.memWord(mi, a));
    }
    EXPECT_EQ(s2.syncReadData(1, 0), s.syncReadData(1, 0));
}

TEST(TokenSim, FiresOnlyWithTokens)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);
    TokenSimulator ts(fd);

    // No tokens: stall.
    EXPECT_FALSE(ts.tryStep());
    EXPECT_EQ(ts.targetCycles(), 0u);
    EXPECT_EQ(ts.hostCycles(), 1u);

    ts.enqueueInput(0, 5); // in
    EXPECT_FALSE(ts.tryStep()); // wen channel still empty
    ts.enqueueInput(1, 0); // wen
    EXPECT_TRUE(ts.tryStep());
    EXPECT_EQ(ts.targetCycles(), 1u);
    EXPECT_EQ(ts.hostCycles(), 3u);

    // Output tokens were produced for every output channel.
    EXPECT_EQ(ts.outputAvailable(0), 1u);
    EXPECT_EQ(ts.dequeueOutput(0), 0u); // acc before first edge
}

TEST(TokenSim, OutputBackpressureStalls)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);
    TokenSimulator::Config cfg;
    cfg.channelCapacity = 2;
    TokenSimulator ts(fd, cfg);

    for (int i = 0; i < 2; ++i) {
        ts.enqueueInput(0, 1);
        ts.enqueueInput(1, 0);
        EXPECT_TRUE(ts.tryStep());
    }
    // Output channels full: the target must not advance.
    ts.enqueueInput(0, 1);
    ts.enqueueInput(1, 0);
    EXPECT_FALSE(ts.tryStep());
    EXPECT_EQ(ts.targetCycles(), 2u);
    // Drain one output set; now it can fire.
    ts.dequeueOutput(0);
    ts.dequeueOutput(1);
    ts.dequeueOutput(2);
    EXPECT_TRUE(ts.tryStep());
    EXPECT_EQ(ts.targetCycles(), 3u);
}

TEST(TokenSimDeath, ChannelMisuse)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);
    TokenSimulator ts(fd);
    EXPECT_EXIT(ts.dequeueOutput(0), ::testing::ExitedWithCode(1),
                "underflow");
    for (size_t i = 0; i < 8; ++i)
        ts.enqueueInput(0, 0);
    EXPECT_EXIT(ts.enqueueInput(0, 0), ::testing::ExitedWithCode(1),
                "overflow");
}

/** Drive the DUT for a while, snapshot mid-run, replay, verify outputs. */
TEST(Snapshot, CaptureAndReplayMatches)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);
    TokenSimulator ts(fd);
    ScanChains chains(fd.design);
    stats::Rng rng(99);

    auto drive = [&](uint64_t cycles) {
        for (uint64_t i = 0; i < cycles; ++i) {
            ts.enqueueInput(0, rng.nextBounded(256));
            ts.enqueueInput(1, rng.nextBounded(2));
            ASSERT_TRUE(ts.tryStep());
            for (size_t o = 0; o < ts.numOutputs(); ++o)
                ts.dequeueOutput(o);
        }
    };

    drive(500);
    ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 64);
    EXPECT_TRUE(ts.recording());
    drive(64);
    EXPECT_FALSE(ts.recording());
    ASSERT_TRUE(snap.complete);
    EXPECT_EQ(snap.cycle(), 500u);
    EXPECT_EQ(snap.replayLength(), 64u);

    util::Result<ReplayResult> r = replayOnRtl(d, chains, snap);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_TRUE(r->ok()) << r->firstMismatch;
    EXPECT_EQ(r->cyclesReplayed, 64u);
}

/**
 * Capture a replayable snapshot mid-execution, push it through the
 * binary serialization, reload it, and drive fresh simulators — in both
 * evaluation modes — from the restored state. The next N cycles must
 * match the recorded output trace bit for bit; this is exactly the
 * contract a snapshot shipped to another machine relies on.
 */
void
expectSerializedSnapshotReplays(const Design &d, uint64_t seed)
{
    Fame1Design fd = fame1Transform(d);
    TokenSimulator ts(fd);
    ScanChains chains(fd.design);
    stats::Rng rng(seed);

    auto drive = [&](uint64_t cycles) {
        for (uint64_t i = 0; i < cycles; ++i) {
            for (size_t p = 0; p < ts.numInputs(); ++p)
                ts.enqueueInput(p, rng.next());
            ASSERT_TRUE(ts.tryStep());
            for (size_t o = 0; o < ts.numOutputs(); ++o)
                ts.dequeueOutput(o);
        }
    };
    drive(200 + seed % 100);
    ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 48);
    drive(48);
    ASSERT_TRUE(snap.complete);

    std::stringstream buf;
    ASSERT_TRUE(writeSnapshot(buf, chains, snap).isOk());
    util::Result<ReplayableSnapshot> read = readSnapshot(buf, chains);
    ASSERT_TRUE(read.isOk()) << read.status().toString();
    ReplayableSnapshot loaded = *read;

    // The deserialized snapshot is the one that was written...
    ASSERT_TRUE(loaded.complete);
    EXPECT_EQ(loaded.cycle(), snap.cycle());
    EXPECT_EQ(loaded.inputTrace, snap.inputTrace);
    EXPECT_EQ(loaded.outputTrace, snap.outputTrace);
    EXPECT_EQ(loaded.retimeHistory, snap.retimeHistory);
    EXPECT_EQ(chains.encode(loaded.state), chains.encode(snap.state));

    // ...and replays bit-exactly from a cold simulator on any backend.
    for (sim::Backend backend : {sim::Backend::InterpretedFull,
                                 sim::Backend::InterpretedActivity,
                                 sim::Backend::Compiled}) {
        sim::Simulator fresh(d, backend);
        chains.restore(fresh, loaded.state);
        for (size_t t = 0; t < loaded.inputTrace.size(); ++t) {
            ASSERT_EQ(loaded.inputTrace[t].size(), d.inputs().size());
            for (size_t i = 0; i < d.inputs().size(); ++i)
                fresh.poke(d.inputs()[i], loaded.inputTrace[t][i]);
            for (size_t o = 0; o < d.outputs().size(); ++o) {
                ASSERT_EQ(fresh.peek(d.outputs()[o].node),
                          loaded.outputTrace[t][o])
                    << sim::backendName(backend) << " seed " << seed
                    << " cycle +" << t << " output " << o;
            }
            fresh.step();
        }
    }
}

TEST(SnapshotIo, SerializedSnapshotReplaysOnAllBackends)
{
    expectSerializedSnapshotReplays(makeDut(), 0x10adf11e);
}

class SnapshotIoFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotIoFuzz, SerializedSnapshotReplaysOnRandomDesigns)
{
    expectSerializedSnapshotReplays(
        strober::testing::randomDesign(GetParam()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotIoFuzz,
                         ::testing::Range<uint64_t>(1, 9));

TEST(Snapshot, CorruptedStateIsDetectedByReplay)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);
    TokenSimulator ts(fd);
    ScanChains chains(fd.design);
    stats::Rng rng(7);

    for (int i = 0; i < 100; ++i) {
        ts.enqueueInput(0, rng.nextBounded(256));
        ts.enqueueInput(1, 1);
        ts.tryStep();
        for (size_t o = 0; o < ts.numOutputs(); ++o)
            ts.dequeueOutput(o);
    }
    ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 32);
    for (int i = 0; i < 32; ++i) {
        ts.enqueueInput(0, rng.nextBounded(256));
        ts.enqueueInput(1, 1);
        ts.tryStep();
        for (size_t o = 0; o < ts.numOutputs(); ++o)
            ts.dequeueOutput(o);
    }
    snap.state.regValues[0] ^= 0x3; // corrupt the accumulator
    util::Result<ReplayResult> r = replayOnRtl(d, chains, snap);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_FALSE(r->ok());
    EXPECT_FALSE(r->firstMismatch.empty());
}

TEST(Snapshot, CaptureCostsHostCycles)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);
    TokenSimulator ts(fd);
    ScanChains chains(fd.design);
    uint64_t before = ts.hostCycles();
    ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 8);
    EXPECT_EQ(ts.hostCycles() - before, chains.captureHostCycles());
}

TEST(Retiming, HistoryCapturesRecentInputs)
{
    Builder b("rt");
    Signal x = b.input("x", 16);
    Signal s1 = b.reg("s1", 16, 0);
    Signal s2 = b.reg("s2", 16, 0);
    b.next(s1, x + x);
    b.next(s2, s1);
    b.output("y", s2);
    b.annotateRetimed("pipe", 2, {x}, s2, {s1, s2});
    Design d = b.finish();

    Fame1Design fd = fame1Transform(d);
    TokenSimulator ts(fd);
    ScanChains chains(fd.design);

    for (uint64_t v : {10ull, 20ull, 30ull, 40ull}) {
        ts.enqueueInput(0, v);
        ts.tryStep();
        ts.dequeueOutput(0);
    }
    ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 4);
    ASSERT_EQ(snap.retimeHistory.size(), 1u);
    ASSERT_EQ(snap.retimeHistory[0].size(), 2u); // latency-deep history
    EXPECT_EQ(snap.retimeHistory[0][0][0], 30u); // oldest first
    EXPECT_EQ(snap.retimeHistory[0][1][0], 40u);
}

TEST(Sampler, CollectsExpectedSnapshots)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);
    TokenSimulator ts(fd);

    SnapshotSampler::Config cfg;
    cfg.sampleSize = 5;
    cfg.replayLength = 16;
    SnapshotSampler sampler(fd, cfg);
    stats::Rng rng(3);

    const uint64_t totalCycles = 16 * 40; // 40 intervals
    for (uint64_t i = 0; i < totalCycles; ++i) {
        sampler.poll(ts);
        ts.enqueueInput(0, rng.nextBounded(256));
        ts.enqueueInput(1, rng.nextBounded(2));
        ASSERT_TRUE(ts.tryStep());
        for (size_t o = 0; o < ts.numOutputs(); ++o)
            ts.dequeueOutput(o);
    }

    EXPECT_EQ(sampler.intervalsSeen(), 40u);
    EXPECT_GE(sampler.recordCount(), 5u);
    auto snaps = sampler.snapshots();
    EXPECT_EQ(snaps.size(), 5u);
    for (const ReplayableSnapshot *s : snaps) {
        EXPECT_TRUE(s->complete);
        EXPECT_EQ(s->cycle() % 16, 0u);
        // Every snapshot must replay cleanly at the RTL level.
        util::Result<ReplayResult> r =
            replayOnRtl(d, sampler.chains(), *s);
        ASSERT_TRUE(r.isOk()) << r.status().toString();
        EXPECT_TRUE(r->ok()) << "cycle " << s->cycle() << ": "
                             << r->firstMismatch;
    }
}

TEST(Sampler, DisabledCollectsNothing)
{
    Design d = makeDut();
    Fame1Design fd = fame1Transform(d);
    TokenSimulator ts(fd);
    SnapshotSampler::Config cfg;
    cfg.enabled = false;
    SnapshotSampler sampler(fd, cfg);
    for (int i = 0; i < 100; ++i) {
        sampler.poll(ts);
        ts.enqueueInput(0, 1);
        ts.enqueueInput(1, 0);
        ts.tryStep();
        for (size_t o = 0; o < ts.numOutputs(); ++o)
            ts.dequeueOutput(o);
    }
    EXPECT_EQ(sampler.snapshots().size(), 0u);
    EXPECT_EQ(sampler.recordCount(), 0u);
}

} // namespace
} // namespace fame
} // namespace strober
