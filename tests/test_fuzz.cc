/**
 * @file
 * Randomized cross-checks over arbitrary generated RTL — the "arbitrary"
 * in the paper's title. A generator (tests/fuzz_designs.h, shared with
 * test_differential.cc) builds random synchronous designs (random word
 * widths, the full op set, registers, async + sync memories); each
 * design is then checked for:
 *   - synthesis equivalence: gate netlist lock-steps with the RTL
 *     interpreter under random stimulus;
 *   - FAME1 transparency: the transformed design with host_en held high
 *     behaves identically to the target;
 *   - snapshot round-trip: scan-out/restore reproduces identical
 *     forward behaviour;
 *   - end-to-end snapshot replay at gate level.
 */

#include <gtest/gtest.h>

#include "fame/fame1.h"
#include "fame/replay.h"
#include "fame/scan_chain.h"
#include "fame/token_sim.h"
#include "gate/gate_sim.h"
#include "gate/matching.h"
#include "gate/replay.h"
#include "gate/synthesis.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"

#include "fuzz_designs.h"

namespace strober {
namespace {

using rtl::Design;
using strober::testing::randomDesign;

class Fuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Fuzz, GateNetlistLockstepsWithRtl)
{
    Design d = randomDesign(GetParam());
    gate::SynthesisResult synth = gate::synthesize(d);
    gate::MatchTable table =
        gate::matchDesigns(d, synth.netlist, synth.guide);
    EXPECT_TRUE(table.outputsEquivalent);
    EXPECT_EQ(table.verifiedRegs, d.regs().size());

    sim::Simulator rtl(d);
    gate::GateSimulator gates(synth.netlist);
    stats::Rng rng(GetParam() * 31 + 7);
    for (int cycle = 0; cycle < 150; ++cycle) {
        for (size_t i = 0; i < d.inputs().size(); ++i) {
            uint64_t v = rng.next();
            rtl.poke(d.inputs()[i], v);
            gates.pokePort(i, truncate(v, d.node(d.inputs()[i]).width));
        }
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            ASSERT_EQ(gates.peekPort(o), rtl.peek(d.outputs()[o].node))
                << "seed " << GetParam() << " cycle " << cycle
                << " output " << o;
        }
        rtl.step();
        gates.step();
    }
}

TEST_P(Fuzz, Fame1TransparentWhenEnabled)
{
    Design d = randomDesign(GetParam());
    fame::Fame1Design fd = fame::fame1Transform(d);
    sim::Simulator target(d);
    sim::Simulator famed(fd.design);
    famed.poke(fd.hostEnable, 1);
    stats::Rng rng(GetParam() + 99);
    for (int cycle = 0; cycle < 120; ++cycle) {
        for (size_t i = 0; i < d.inputs().size(); ++i) {
            uint64_t v = rng.next();
            target.poke(d.inputs()[i], v);
            famed.poke(fd.targetInputs[i].node, v);
        }
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            ASSERT_EQ(famed.peek(fd.targetOutputs[o].node),
                      target.peek(d.outputs()[o].node))
                << "seed " << GetParam() << " cycle " << cycle;
        }
        target.step();
        famed.step();
    }
}

TEST_P(Fuzz, SnapshotRoundTripPreservesBehaviour)
{
    Design d = randomDesign(GetParam());
    fame::ScanChains chains(d);
    sim::Simulator a(d);
    stats::Rng rng(GetParam() + 1);
    for (int i = 0; i < 70; ++i) {
        for (rtl::NodeId in : d.inputs())
            a.poke(in, rng.next());
        a.step();
    }
    fame::StateSnapshot snap = chains.capture(a, 70);
    // Bitstream round trip.
    EXPECT_EQ(chains.encode(snap), chains.scanOut(a));

    sim::Simulator c(d);
    chains.restore(c, snap);
    for (int i = 0; i < 60; ++i) {
        uint64_t v = rng.next();
        for (rtl::NodeId in : d.inputs()) {
            a.poke(in, v);
            c.poke(in, v);
        }
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            ASSERT_EQ(c.peek(d.outputs()[o].node),
                      a.peek(d.outputs()[o].node))
                << "seed " << GetParam() << " cycle +" << i;
        }
        a.step();
        c.step();
    }
}

TEST_P(Fuzz, EndToEndGateReplay)
{
    Design d = randomDesign(GetParam());
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::TokenSimulator ts(fd);
    fame::ScanChains chains(fd.design);
    stats::Rng rng(GetParam() + 5);

    auto drive = [&](int cycles) {
        for (int i = 0; i < cycles; ++i) {
            for (size_t p = 0; p < ts.numInputs(); ++p)
                ts.enqueueInput(p, rng.next());
            ASSERT_TRUE(ts.tryStep());
            for (size_t o = 0; o < ts.numOutputs(); ++o)
                ts.dequeueOutput(o);
        }
    };
    drive(90);
    fame::ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 48);
    drive(48);
    ASSERT_TRUE(snap.complete);

    gate::SynthesisResult synth = gate::synthesize(d);
    gate::MatchTable table =
        gate::matchDesigns(d, synth.netlist, synth.guide);
    gate::GateSimulator gsim(synth.netlist);
    util::Result<gate::GateReplayResult> r =
        gate::replayOnGate(gsim, d, table, snap);
    ASSERT_TRUE(r.isOk()) << "seed " << GetParam() << ": "
                          << r.status().toString();
    EXPECT_TRUE(r->ok()) << "seed " << GetParam() << ": "
                         << r->firstMismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Range<uint64_t>(1, 16));

} // namespace
} // namespace strober
