/**
 * @file
 * Randomized cross-checks over arbitrary generated RTL — the "arbitrary"
 * in the paper's title. A generator builds random synchronous designs
 * (random word widths, the full op set, registers, async + sync
 * memories); each design is then checked for:
 *   - synthesis equivalence: gate netlist lock-steps with the RTL
 *     interpreter under random stimulus;
 *   - FAME1 transparency: the transformed design with host_en held high
 *     behaves identically to the target;
 *   - snapshot round-trip: scan-out/restore reproduces identical
 *     forward behaviour;
 *   - end-to-end snapshot replay at gate level.
 */

#include <gtest/gtest.h>

#include "fame/fame1.h"
#include "fame/replay.h"
#include "fame/scan_chain.h"
#include "fame/token_sim.h"
#include "gate/gate_sim.h"
#include "gate/matching.h"
#include "gate/replay.h"
#include "gate/synthesis.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"

namespace strober {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::Op;
using rtl::Signal;

/** Build a random synchronous design from @p seed. */
Design
randomDesign(uint64_t seed)
{
    stats::Rng rng(seed);
    Builder b("fuzz" + std::to_string(seed));

    auto width = [&]() {
        static const unsigned choices[] = {1, 2, 5, 8, 13, 16, 24, 32};
        return choices[rng.nextBounded(8)];
    };

    std::vector<Signal> pool;
    unsigned numInputs = 2 + static_cast<unsigned>(rng.nextBounded(3));
    for (unsigned i = 0; i < numInputs; ++i)
        pool.push_back(b.input("in" + std::to_string(i), width()));
    pool.push_back(b.lit(rng.nextBounded(255) + 1, 8));
    pool.push_back(b.lit(1, 1));

    struct PendingReg
    {
        Signal reg;
        bool withEnable;
    };
    std::vector<PendingReg> regs;
    unsigned numRegs = 1 + static_cast<unsigned>(rng.nextBounded(3));
    for (unsigned i = 0; i < numRegs; ++i) {
        Signal r = b.reg("r" + std::to_string(i), width(),
                         rng.nextBounded(100));
        regs.push_back({r, rng.nextBounded(2) == 0});
        pool.push_back(r);
    }

    auto pick = [&]() { return pool[rng.nextBounded(pool.size())]; };
    auto pickW = [&](unsigned w) { return b.resize(pick(), w); };

    // A random memory, async or sync.
    bool syncMem = rng.nextBounded(2) == 0;
    rtl::MemHandle mem = b.mem("m", 8, 16, syncMem);
    {
        Signal addr = b.resize(pick(), 4);
        Signal data = pickW(8);
        Signal wen = b.resize(pick(), 1);
        b.memWrite(mem, addr, data, wen);
        Signal raddr = b.resize(pick(), 4);
        pool.push_back(syncMem ? b.memReadSync(mem, raddr)
                               : b.memRead(mem, raddr));
    }

    unsigned numOps = 20 + static_cast<unsigned>(rng.nextBounded(40));
    for (unsigned i = 0; i < numOps; ++i) {
        Signal a = pick();
        Signal result;
        switch (rng.nextBounded(14)) {
          case 0:
            result = a + pickW(a.width());
            break;
          case 1:
            result = a - pickW(a.width());
            break;
          case 2: {
            // Keep products within 64 bits.
            Signal x = b.resize(pick(), std::min(16u, a.width()));
            result = b.resize(a, std::min(16u, a.width())) * x;
            break;
          }
          case 3:
            result = divu(a, pickW(a.width()));
            break;
          case 4:
            result = remu(a, pickW(a.width()));
            break;
          case 5:
            result = a & pickW(a.width());
            break;
          case 6:
            result = a ^ pickW(a.width());
            break;
          case 7:
            result = shl(a, pickW(a.width()));
            break;
          case 8:
            result = sra(a, pickW(a.width()));
            break;
          case 9:
            result = b.mux(b.resize(pick(), 1), a, pickW(a.width()));
            break;
          case 10: {
            unsigned hi = static_cast<unsigned>(
                rng.nextBounded(a.width()));
            unsigned lo =
                static_cast<unsigned>(rng.nextBounded(hi + 1));
            result = a.bits(hi, lo);
            break;
          }
          case 11:
            if (a.width() <= 32) {
                result = b.cat(a, pickW(8));
                break;
            }
            [[fallthrough]];
          case 12:
            result = b.mux(lts(a, pickW(a.width())), ~a, a);
            break;
          default:
            result = b.sext(a, std::min(64u, a.width() + 4));
            break;
        }
        pool.push_back(result);
    }

    for (PendingReg &pr : regs) {
        Signal next = b.resize(pick(), pr.reg.width());
        if (pr.withEnable)
            b.next(pr.reg, next, b.resize(pick(), 1));
        else
            b.next(pr.reg, next);
    }

    unsigned numOutputs = 3 + static_cast<unsigned>(rng.nextBounded(3));
    for (unsigned i = 0; i < numOutputs; ++i)
        b.output("out" + std::to_string(i), pick());
    return b.finish();
}

class Fuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Fuzz, GateNetlistLockstepsWithRtl)
{
    Design d = randomDesign(GetParam());
    gate::SynthesisResult synth = gate::synthesize(d);
    gate::MatchTable table =
        gate::matchDesigns(d, synth.netlist, synth.guide);
    EXPECT_TRUE(table.outputsEquivalent);
    EXPECT_EQ(table.verifiedRegs, d.regs().size());

    sim::Simulator rtl(d);
    gate::GateSimulator gates(synth.netlist);
    stats::Rng rng(GetParam() * 31 + 7);
    for (int cycle = 0; cycle < 150; ++cycle) {
        for (size_t i = 0; i < d.inputs().size(); ++i) {
            uint64_t v = rng.next();
            rtl.poke(d.inputs()[i], v);
            gates.pokePort(i, truncate(v, d.node(d.inputs()[i]).width));
        }
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            ASSERT_EQ(gates.peekPort(o), rtl.peek(d.outputs()[o].node))
                << "seed " << GetParam() << " cycle " << cycle
                << " output " << o;
        }
        rtl.step();
        gates.step();
    }
}

TEST_P(Fuzz, Fame1TransparentWhenEnabled)
{
    Design d = randomDesign(GetParam());
    fame::Fame1Design fd = fame::fame1Transform(d);
    sim::Simulator target(d);
    sim::Simulator famed(fd.design);
    famed.poke(fd.hostEnable, 1);
    stats::Rng rng(GetParam() + 99);
    for (int cycle = 0; cycle < 120; ++cycle) {
        for (size_t i = 0; i < d.inputs().size(); ++i) {
            uint64_t v = rng.next();
            target.poke(d.inputs()[i], v);
            famed.poke(fd.targetInputs[i].node, v);
        }
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            ASSERT_EQ(famed.peek(fd.targetOutputs[o].node),
                      target.peek(d.outputs()[o].node))
                << "seed " << GetParam() << " cycle " << cycle;
        }
        target.step();
        famed.step();
    }
}

TEST_P(Fuzz, SnapshotRoundTripPreservesBehaviour)
{
    Design d = randomDesign(GetParam());
    fame::ScanChains chains(d);
    sim::Simulator a(d);
    stats::Rng rng(GetParam() + 1);
    for (int i = 0; i < 70; ++i) {
        for (rtl::NodeId in : d.inputs())
            a.poke(in, rng.next());
        a.step();
    }
    fame::StateSnapshot snap = chains.capture(a, 70);
    // Bitstream round trip.
    EXPECT_EQ(chains.encode(snap), chains.scanOut(a));

    sim::Simulator c(d);
    chains.restore(c, snap);
    for (int i = 0; i < 60; ++i) {
        uint64_t v = rng.next();
        for (rtl::NodeId in : d.inputs()) {
            a.poke(in, v);
            c.poke(in, v);
        }
        for (size_t o = 0; o < d.outputs().size(); ++o) {
            ASSERT_EQ(c.peek(d.outputs()[o].node),
                      a.peek(d.outputs()[o].node))
                << "seed " << GetParam() << " cycle +" << i;
        }
        a.step();
        c.step();
    }
}

TEST_P(Fuzz, EndToEndGateReplay)
{
    Design d = randomDesign(GetParam());
    fame::Fame1Design fd = fame::fame1Transform(d);
    fame::TokenSimulator ts(fd);
    fame::ScanChains chains(fd.design);
    stats::Rng rng(GetParam() + 5);

    auto drive = [&](int cycles) {
        for (int i = 0; i < cycles; ++i) {
            for (size_t p = 0; p < ts.numInputs(); ++p)
                ts.enqueueInput(p, rng.next());
            ASSERT_TRUE(ts.tryStep());
            for (size_t o = 0; o < ts.numOutputs(); ++o)
                ts.dequeueOutput(o);
        }
    };
    drive(90);
    fame::ReplayableSnapshot snap;
    ts.captureSnapshot(chains, &snap, 48);
    drive(48);
    ASSERT_TRUE(snap.complete);

    gate::SynthesisResult synth = gate::synthesize(d);
    gate::MatchTable table =
        gate::matchDesigns(d, synth.netlist, synth.guide);
    gate::GateSimulator gsim(synth.netlist);
    gate::GateReplayResult r = gate::replayOnGate(gsim, d, table, snap);
    EXPECT_TRUE(r.ok()) << "seed " << GetParam() << ": "
                        << r.firstMismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Range<uint64_t>(1, 16));

} // namespace
} // namespace strober
