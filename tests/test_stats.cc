/**
 * @file
 * Unit and property tests for the sampling statistics (paper Section
 * III-A) and reservoir sampling (Section III-B).
 */

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "stats/rng.h"
#include "stats/sampling.h"

namespace strober {
namespace stats {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(13), 13u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double g = r.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(NormalQuantile, KnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.975), 1.959963985, 1e-6);
    EXPECT_NEAR(normalQuantile(0.995), 2.575829304, 1e-6);
    EXPECT_NEAR(normalQuantile(0.9995), 3.290526731, 1e-6);
    EXPECT_NEAR(normalQuantile(0.025), -1.959963985, 1e-6);
}

TEST(NormalQuantile, Symmetry)
{
    for (double p : {0.01, 0.1, 0.3, 0.45}) {
        EXPECT_NEAR(normalQuantile(p), -normalQuantile(1 - p), 1e-9)
            << "p = " << p;
    }
}

TEST(NormalQuantile, ZForConfidence)
{
    EXPECT_NEAR(zForConfidence(0.95), 1.959963985, 1e-6);
    EXPECT_NEAR(zForConfidence(0.99), 2.575829304, 1e-6);
    EXPECT_NEAR(zForConfidence(0.999), 3.290526731, 1e-6);
}

TEST(NormalQuantileDeath, RejectsOutOfRange)
{
    EXPECT_EXIT(normalQuantile(0.0), ::testing::ExitedWithCode(1), "fatal");
    EXPECT_EXIT(normalQuantile(1.0), ::testing::ExitedWithCode(1), "fatal");
}

TEST(SampleStats, MeanAndVarianceExact)
{
    SampleStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Σ(x-5)² = 32 over n-1 = 7.
    EXPECT_NEAR(s.sampleVariance(), 32.0 / 7.0, 1e-12);
}

TEST(SampleStats, FullCensusHasZeroSamplingVariance)
{
    SampleStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    // n == N: the finite-population correction kills the variance.
    EXPECT_DOUBLE_EQ(s.samplingVariance(4), 0.0);
    Estimate e = s.estimate(0.99, 4);
    EXPECT_DOUBLE_EQ(e.halfWidth, 0.0);
    EXPECT_DOUBLE_EQ(e.mean, 2.5);
}

TEST(SampleStats, PopulationVarianceScaling)
{
    SampleStats s;
    for (double v : {1.0, 3.0})
        s.add(v);
    // s²ₓ = 2; σ² ≈ (N-1)/N · 2.
    EXPECT_NEAR(s.populationVariance(100), 0.99 * 2.0, 1e-12);
}

TEST(SampleStats, MinimumSampleSizeFloor30)
{
    SampleStats s;
    // Nearly constant measurements: Eq. 8 would say n ~ 1, floor is 30.
    for (int i = 0; i < 10; ++i)
        s.add(100.0 + (i % 2) * 0.001);
    EXPECT_EQ(s.minimumSampleSize(0.99, 0.05), 30u);
}

TEST(SampleStats, MinimumSampleSizeGrowsWithVariance)
{
    SampleStats lo, hi;
    Rng r(3);
    for (int i = 0; i < 200; ++i) {
        lo.add(100.0 + r.nextGaussian());
        hi.add(100.0 + 20.0 * r.nextGaussian());
    }
    EXPECT_GT(hi.minimumSampleSize(0.99, 0.01),
              lo.minimumSampleSize(0.99, 0.01));
}

/**
 * Property (the paper's confidence-interval claim): sampling n elements
 * without replacement from a finite population and building a 99% CI
 * must cover the true population mean in roughly 99% of repetitions.
 */
TEST(SampleStats, ConfidenceIntervalCoverage)
{
    Rng r(42);
    const size_t N = 2000;
    std::vector<double> population(N);
    for (double &v : population)
        v = 50.0 + 10.0 * r.nextGaussian();
    double trueMean =
        std::accumulate(population.begin(), population.end(), 0.0) / N;

    const int reps = 400;
    const size_t n = 50;
    int covered = 0;
    for (int rep = 0; rep < reps; ++rep) {
        // Partial Fisher-Yates: a uniform n-subset without replacement.
        std::vector<double> pop = population;
        SampleStats s;
        for (size_t i = 0; i < n; ++i) {
            size_t j = i + r.nextBounded(N - i);
            std::swap(pop[i], pop[j]);
            s.add(pop[i]);
        }
        Estimate e = s.estimate(0.99, N);
        if (trueMean >= e.lower() && trueMean <= e.upper())
            ++covered;
    }
    // 99% nominal; allow slack for the normal approximation + 400 reps.
    EXPECT_GE(covered, static_cast<int>(reps * 0.96));
}

TEST(Estimate, RelativeError)
{
    Estimate e;
    e.mean = 200.0;
    e.halfWidth = 5.0;
    EXPECT_DOUBLE_EQ(e.relativeError(), 0.025);
    EXPECT_DOUBLE_EQ(e.lower(), 195.0);
    EXPECT_DOUBLE_EQ(e.upper(), 205.0);
}

TEST(Reservoir, KeepsEverythingWhenStreamShort)
{
    ReservoirSampler<int> rs(10, 1);
    for (int i = 0; i < 5; ++i) {
        long slot = rs.offer();
        ASSERT_GE(slot, 0);
        rs.record(slot, i);
    }
    EXPECT_EQ(rs.sample().size(), 5u);
    EXPECT_EQ(rs.recordCount(), 5u);
    EXPECT_EQ(rs.elementsSeen(), 5u);
}

TEST(Reservoir, SampleSizeCapped)
{
    ReservoirSampler<int> rs(16, 2);
    for (int i = 0; i < 1000; ++i) {
        long slot = rs.offer();
        if (slot >= 0)
            rs.record(slot, i);
    }
    EXPECT_EQ(rs.sample().size(), 16u);
    EXPECT_EQ(rs.elementsSeen(), 1000u);
}

/**
 * Property: element k > n is recorded with probability n/k, so the total
 * record count concentrates near n(1 + ln(N/n)) (paper Section IV-E uses
 * 2·n·ln(N/(nL)) for its *snapshot read-out* variant; the core reservoir
 * law is the harmonic sum tested here).
 */
TEST(Reservoir, RecordCountMatchesTheory)
{
    const size_t n = 30;
    const uint64_t N = 200000;
    double expect = ReservoirSampler<int>::expectedRecords(n, N);
    double total = 0;
    const int reps = 20;
    for (int rep = 0; rep < reps; ++rep) {
        ReservoirSampler<int> rs(n, 1000 + rep);
        for (uint64_t i = 0; i < N; ++i) {
            long slot = rs.offer();
            if (slot >= 0)
                rs.record(slot, 0);
        }
        total += static_cast<double>(rs.recordCount());
    }
    double meanRecords = total / reps;
    EXPECT_NEAR(meanRecords, expect, expect * 0.15);
}

/** Property: every stream position is equally likely to be in the sample. */
TEST(Reservoir, UniformSelection)
{
    const size_t n = 10;
    const int N = 100;
    const int reps = 20000;
    std::vector<int> hits(N, 0);
    for (int rep = 0; rep < reps; ++rep) {
        ReservoirSampler<int> rs(n, 7000 + rep);
        for (int i = 0; i < N; ++i) {
            long slot = rs.offer();
            if (slot >= 0)
                rs.record(slot, i);
        }
        for (int v : rs.sample())
            ++hits[v];
    }
    double expected = static_cast<double>(reps) * n / N; // 2000 per slot
    for (int i = 0; i < N; ++i) {
        EXPECT_NEAR(hits[i], expected, expected * 0.12)
            << "stream position " << i;
    }
}

TEST(ReservoirDeath, ZeroSampleSizeRejected)
{
    EXPECT_EXIT(ReservoirSampler<int>(0), ::testing::ExitedWithCode(1),
                "fatal");
}

} // namespace
} // namespace stats
} // namespace strober
