/**
 * @file
 * Tests for the execution units, cache, and the in-order (rocket-like)
 * SoC, verified instruction-by-instruction against the golden ISS.
 */

#include <gtest/gtest.h>

#include "core/harness.h"
#include "cores/cache.h"
#include "cores/exec_units.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "isa/assembler.h"
#include "isa/iss.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"

namespace strober {
namespace cores {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::Signal;

// ---------------------------------------------------------------------
// Execution units.
// ---------------------------------------------------------------------

TEST(MulPipe, AllModesMatchReference)
{
    Builder b("mul");
    Signal a = b.input("a", 32);
    Signal x = b.input("x", 32);
    Signal mode = b.input("mode", 2);
    Signal v = b.input("v", 1);
    MulPipe mp = buildMulPipe(b, "u", a, x, mode, v);
    b.output("res", mp.result);
    b.output("valid", mp.outValid);
    Design d = b.finish();
    sim::Simulator s(d);
    stats::Rng rng(17);

    for (int iter = 0; iter < 100; ++iter) {
        uint32_t av = static_cast<uint32_t>(rng.next());
        uint32_t xv = static_cast<uint32_t>(rng.next());
        unsigned mode_v = iter % 4;
        s.poke("a", av);
        s.poke("x", xv);
        s.poke("mode", mode_v);
        s.poke("v", 1);
        s.step();
        s.poke("v", 0);
        s.step(2);
        ASSERT_EQ(s.peek("valid"), 1u);
        uint64_t expect;
        switch (mode_v) {
          case kMulLow:
            expect = uint32_t(av * xv);
            break;
          case kMulHigh:
            expect = uint32_t((int64_t(int32_t(av)) * int64_t(int32_t(xv)))
                              >> 32);
            break;
          case kMulHighSU:
            expect = uint32_t((int64_t(int32_t(av)) * int64_t(uint64_t(xv)))
                              >> 32);
            break;
          default:
            expect = uint32_t((uint64_t(av) * uint64_t(xv)) >> 32);
            break;
        }
        ASSERT_EQ(s.peek("res"), expect)
            << "a=" << av << " x=" << xv << " mode=" << mode_v;
        s.step(); // drain
    }
}

TEST(Divider, SignedAndUnsignedCorners)
{
    Builder b("div");
    Signal start = b.input("start", 1);
    Signal a = b.input("a", 32);
    Signal x = b.input("x", 32);
    Signal sgn = b.input("sgn", 1);
    Signal rem = b.input("rem", 1);
    DivUnit du = buildDivider(b, "u", start, a, x, sgn, rem,
                              b.lit(0, 1));
    b.output("busy", du.busy);
    b.output("done", du.done);
    b.output("res", du.result);
    Design d = b.finish();
    sim::Simulator s(d);

    auto runDiv = [&](uint32_t av, uint32_t xv, bool isSigned,
                      bool wantRem) {
        s.poke("a", av);
        s.poke("x", xv);
        s.poke("sgn", isSigned);
        s.poke("rem", wantRem);
        s.poke("start", 1);
        s.step();
        s.poke("start", 0);
        int guard = 0;
        while (s.peek("done") == 0) {
            s.step();
            if (++guard > 50) {
                ADD_FAILURE() << "divider timed out";
                break;
            }
        }
        return static_cast<uint32_t>(s.peek("res"));
    };

    EXPECT_EQ(runDiv(100, 7, false, false), 100u / 7);
    EXPECT_EQ(runDiv(100, 7, false, true), 100u % 7);
    EXPECT_EQ(runDiv(uint32_t(-100), 7, true, false), uint32_t(-100 / 7));
    EXPECT_EQ(runDiv(uint32_t(-100), 7, true, true), uint32_t(-100 % 7));
    EXPECT_EQ(runDiv(100, uint32_t(-7), true, false), uint32_t(100 / -7));
    EXPECT_EQ(runDiv(7, 0, false, false), UINT32_MAX);       // div by 0
    EXPECT_EQ(runDiv(7, 0, false, true), 7u);                // rem by 0
    EXPECT_EQ(runDiv(0x80000000u, uint32_t(-1), true, false),
              0x80000000u);                                  // overflow
    EXPECT_EQ(runDiv(0x80000000u, uint32_t(-1), true, true), 0u);
    EXPECT_EQ(runDiv(0xffffffffu, 3, false, false), 0xffffffffu / 3);
}

// ---------------------------------------------------------------------
// Cache (driven standalone against a flat memory model).
// ---------------------------------------------------------------------

struct CacheTb
{
    Design design;
    CacheTb() : design(build()) {}

    static Design
    build()
    {
        Builder b("tb");
        CacheInputs in;
        in.reqValid = b.input("req_valid", 1);
        in.reqAddr = b.input("req_addr", 32);
        in.reqWrite = b.input("req_write", 1);
        in.reqWdata = b.input("req_wdata", 32);
        in.reqWstrb = b.input("req_wstrb", 4);
        in.memReqReady = b.input("mem_ready", 1);
        in.memRespValid = b.input("mem_resp_valid", 1);
        in.memRespData = b.input("mem_resp_data", 64);
        CacheIO io = buildCache(b, "dut", 1024, in);
        b.output("resp_valid", io.respValid);
        b.output("resp_data", io.respData);
        b.output("busy", io.busy);
        b.output("mem_req_valid", io.memReqValid);
        b.output("mem_req_addr", io.memReqAddr);
        b.output("mem_req_write", io.memReqWrite);
        b.output("mem_req_wdata", io.memReqWdata);
        return b.finish();
    }
};

/** Reference memory + cache stimulus loop. */
class CacheHost
{
  public:
    explicit CacheHost(sim::Simulator &s) : sim(s), mem(1 << 16, 0) {}

    /** Perform one access through the cache; returns load data. */
    uint32_t
    access(uint32_t addr, bool write, uint32_t wdata, unsigned wstrb)
    {
        sim.poke("req_valid", 1);
        sim.poke("req_addr", addr);
        sim.poke("req_write", write);
        sim.poke("req_wdata", wdata);
        sim.poke("req_wstrb", wstrb);
        for (int guard = 0; guard < 200; ++guard) {
            serviceMem();
            if (sim.peek("resp_valid")) {
                uint32_t data =
                    static_cast<uint32_t>(sim.peek("resp_data"));
                sim.step();
                sim.poke("req_valid", 0);
                return data;
            }
            sim.step();
        }
        ADD_FAILURE() << "cache access timed out";
        return 0;
    }

    uint64_t
    memWord64(uint32_t addr)
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t(mem[addr + i]) << (8 * i);
        return v;
    }

    void
    setMemWord64(uint32_t addr, uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            mem[addr + i] = uint8_t(v >> (8 * i));
    }

    int memReads = 0;
    int memWrites = 0;

  private:
    sim::Simulator &sim;
    std::vector<uint8_t> mem;
    int respCountdown = -1;
    uint64_t respData = 0;

    void
    serviceMem()
    {
        sim.poke("mem_ready", respCountdown < 0);
        sim.poke("mem_resp_valid", 0);
        if (respCountdown > 0) {
            --respCountdown;
        } else if (respCountdown == 0) {
            sim.poke("mem_resp_valid", 1);
            sim.poke("mem_resp_data", respData);
            respCountdown = -1;
            return;
        }
        if (respCountdown < 0 && sim.peek("mem_req_valid")) {
            uint32_t addr =
                static_cast<uint32_t>(sim.peek("mem_req_addr"));
            if (sim.peek("mem_req_write")) {
                setMemWord64(addr, sim.peek("mem_req_wdata"));
                ++memWrites;
            } else {
                respData = memWord64(addr);
                respCountdown = 3; // short latency
                ++memReads;
            }
        }
    }
};

TEST(Cache, MissRefillHitAndWriteback)
{
    CacheTb tb;
    sim::Simulator s(tb.design);
    CacheHost host(s);
    host.setMemWord64(0x100, 0xaabbccdd11223344ull);

    // Cold miss then hit.
    EXPECT_EQ(host.access(0x100, false, 0, 0), 0x11223344u);
    EXPECT_EQ(host.memReads, 1);
    EXPECT_EQ(host.access(0x104, false, 0, 0), 0xaabbccddu);
    EXPECT_EQ(host.memReads, 1); // same line: hit

    // Write hit with byte strobes; dirty line.
    host.access(0x104, true, 0x000000ee, 0x1);
    EXPECT_EQ(host.access(0x104, false, 0, 0), 0xaabbcceeu);
    // Conflict miss at same index (1 KiB cache): victim written back.
    uint32_t conflict = 0x100 + 1024;
    host.setMemWord64(conflict, 0x5555555566666666ull);
    EXPECT_EQ(host.access(conflict, false, 0, 0), 0x66666666u);
    EXPECT_EQ(host.memWrites, 1);
    EXPECT_EQ(host.memWord64(0x100), 0xaabbccee11223344ull);

    // Original line reloads with the written byte intact.
    EXPECT_EQ(host.access(0x104, false, 0, 0), 0xaabbcceeu);
}

// ---------------------------------------------------------------------
// Rocket-like SoC vs. the ISS.
// ---------------------------------------------------------------------

/** Run a program on the rocket SoC with full ISS commit checking. */
SocDriver
runRocket(const std::string &source, uint64_t maxCycles = 2'000'000,
          const rtl::Design **designOut = nullptr)
{
    static rtl::Design design = buildSoc(SocConfig::rocket());
    if (designOut)
        *designOut = &design;
    isa::Program prog = isa::assemble(source);
    SocDriver::Config cfg;
    cfg.checkCommits = true;
    SocDriver driver(design, prog, cfg);
    core::RtlHarness harness(design);
    core::runLoop(harness, driver, maxCycles);
    EXPECT_TRUE(driver.done()) << "program did not finish";
    return driver;
}

TEST(Rocket, ArithmeticLoop)
{
    SocDriver d = runRocket(R"(
            li a0, 0
            li a1, 1
            li a2, 101
        loop:
            add a0, a0, a1
            addi a1, a1, 1
            bne a1, a2, loop
            li t0, 0x40000000
            sw a0, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.exitCode(), 5050u);
}

TEST(Rocket, LoadStoreByteHalf)
{
    SocDriver d = runRocket(R"(
            j    code
            .align 8
        data:
            .word 0x80ff7f01, 0, 0, 0
        code:
            la   t0, data
            lb   a0, 2(t0)
            lhu  a1, 2(t0)
            sb   a0, 4(t0)
            sh   a1, 6(t0)
            lw   a2, 4(t0)
            add  a3, a0, a1
            add  a3, a3, a2
            li   t1, 0x40000000
            sw   a3, 0(t1)
        spin:
            j spin
    )", 2'000'000);
    // Exact value checked by the ISS lockstep; just require completion.
    EXPECT_TRUE(d.exited());
}

TEST(Rocket, MulDivPipeline)
{
    SocDriver d = runRocket(R"(
            li   a0, 123456
            li   a1, -789
            mul  a2, a0, a1
            mulh a3, a0, a1
            mulhu a4, a0, a1
            div  a5, a0, a1
            rem  a6, a0, a1
            divu s2, a0, a1
            remu s3, a0, a1
            add  s0, a2, a3
            add  s0, s0, a4
            add  s0, s0, a5
            add  s0, s0, a6
            add  s0, s0, s2
            add  s0, s0, s3
            li   t0, 0x40000000
            sw   s0, 0(t0)
        spin:
            j spin
    )");
    EXPECT_TRUE(d.exited());
}

TEST(Rocket, HazardsAndBypassing)
{
    // Dense RAW chains, load-use, branch shadows.
    SocDriver d = runRocket(R"(
            li   sp, 0x8000
            li   a0, 1
            add  a1, a0, a0     # bypass M->X
            add  a2, a1, a1     # chained
            add  a3, a2, a1     # two distinct sources
            sw   a3, 0(sp)
            lw   a4, 0(sp)      # load
            add  a5, a4, a4     # load-use bubble
            beq  a5, a5, taken  # always taken
            li   a5, 999        # shadow: must be squashed
        taken:
            addi a5, a5, 1
            li   t0, 0x40000000
            sw   a5, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.exitCode(), 13u); // ((1+1)*2 + 2)*2 + 1 = 13
}

TEST(Rocket, FunctionCallsRecursion)
{
    SocDriver d = runRocket(R"(
            li   sp, 0x10000
            li   a0, 9
            call fib
            li   t0, 0x40000000
            sw   a0, 0(t0)
        spin:
            j spin
        fib:
            li   t0, 2
            blt  a0, t0, fib_base
            addi sp, sp, -12
            sw   ra, 8(sp)
            sw   a0, 4(sp)
            addi a0, a0, -1
            call fib
            sw   a0, 0(sp)
            lw   a0, 4(sp)
            addi a0, a0, -2
            call fib
            lw   t1, 0(sp)
            add  a0, a0, t1
            lw   ra, 8(sp)
            addi sp, sp, 12
            ret
        fib_base:
            ret
    )");
    EXPECT_EQ(d.exitCode(), 34u); // fib(9)
}

TEST(Rocket, CacheThrashing)
{
    // Strides that conflict in a 16 KiB direct-mapped cache.
    SocDriver d = runRocket(R"(
            li   s0, 0x1000      # array A
            li   s1, 0x5000      # array B (conflicts: 16 KiB apart)
            li   t0, 0
            li   t1, 64
            li   a0, 0
        loop:
            slli t2, t0, 2
            add  t3, s0, t2
            add  t4, s1, t2
            sw   t0, 0(t3)
            sw   t0, 0(t4)
            lw   t5, 0(t3)
            lw   t6, 0(t4)
            add  a0, a0, t5
            add  a0, a0, t6
            addi t0, t0, 1
            bne  t0, t1, loop
            li   t0, 0x40000000
            sw   a0, 0(t0)
        spin:
            j spin
    )", 5'000'000);
    EXPECT_EQ(d.exitCode(), 4032u); // 2 * sum(0..63)
    EXPECT_GT(d.dramModel().counters().writes, 0u); // writebacks happened
}

TEST(Rocket, CsrCountersAndConsole)
{
    SocDriver d = runRocket(R"(
            rdcycle  s0
            li   t0, 0x40000004
            li   t1, 72         # 'H'
            sw   t1, 0(t0)
            li   t1, 105        # 'i'
            sw   t1, 0(t0)
            rdcycle  s1
            rdinstret s2
            sub  s3, s1, s0     # elapsed cycles > 0
            li   t0, 0x40000000
            sw   s3, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.console(), "Hi");
    EXPECT_GT(d.exitCode(), 0u);
}

TEST(Rocket, EcallHalts)
{
    const rtl::Design *design = nullptr;
    SocDriver d = runRocket(R"(
            li a0, 7
            ecall
            li a0, 9    # must never commit
        spin:
            j spin
    )", 500'000, &design);
    EXPECT_TRUE(d.exited());
}

} // namespace
} // namespace cores
} // namespace strober
