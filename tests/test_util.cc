/**
 * @file
 * Unit tests for bit utilities and logging helpers.
 */

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace {

TEST(Bits, BitMask)
{
    EXPECT_EQ(bitMask(0), 0u);
    EXPECT_EQ(bitMask(1), 1u);
    EXPECT_EQ(bitMask(8), 0xffu);
    EXPECT_EQ(bitMask(32), 0xffffffffu);
    EXPECT_EQ(bitMask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(bitMask(64), ~0ull);
}

TEST(Bits, Truncate)
{
    EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
    EXPECT_EQ(truncate(0x100, 8), 0u);
    EXPECT_EQ(truncate(~0ull, 64), ~0ull);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0x80, 8), 0xffffffffffffff80ull);
    EXPECT_EQ(signExtend(0x7f, 8), 0x7full);
    EXPECT_EQ(signExtend(1, 1), ~0ull);
    EXPECT_EQ(signExtend(0, 1), 0u);
}

class SignExtendSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SignExtendSweep, RoundTripsThroughTruncate)
{
    unsigned w = GetParam();
    for (uint64_t v : {uint64_t(0), uint64_t(1), bitMask(w) >> 1,
                       bitMask(w)}) {
        uint64_t ext = signExtend(v, w);
        EXPECT_EQ(truncate(ext, w), v) << "width " << w << " value " << v;
        // The extension bits must replicate the sign bit.
        bool neg = bit(v, w - 1);
        if (w < 64) {
            EXPECT_EQ(ext >> w, neg ? bitMask(64 - w) : 0u)
                << "width " << w << " value " << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SignExtendSweep,
                         ::testing::Values(1u, 2u, 5u, 8u, 16u, 31u, 32u,
                                           33u, 63u, 64u));

TEST(Bits, ExtractAndInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 2), 0u);
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffff, 7, 4, 0), 0xff0fu);
}

TEST(Bits, Clog2)
{
    EXPECT_EQ(clog2(0), 0u);
    EXPECT_EQ(clog2(1), 0u);
    EXPECT_EQ(clog2(2), 1u);
    EXPECT_EQ(clog2(3), 2u);
    EXPECT_EQ(clog2(1024), 10u);
    EXPECT_EQ(clog2(1025), 11u);
}

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(4097));
}

TEST(Logging, StrFmt)
{
    EXPECT_EQ(strfmt("a %d b %s", 42, "x"), "a 42 b x");
    EXPECT_EQ(strfmt("%08x", 0xbeef), "0000beef");
}

TEST(Logging, QuietSuppression)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    warn("this must not appear");
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "panic: boom 7");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "fatal: bad config");
}

} // namespace
} // namespace strober
