/**
 * @file
 * Unit tests for bit utilities, logging helpers, and environment
 * variable parsing.
 */

#include <cstdlib>

#include <unistd.h>

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/env.h"
#include "util/logging.h"

namespace strober {
namespace {

TEST(Bits, BitMask)
{
    EXPECT_EQ(bitMask(0), 0u);
    EXPECT_EQ(bitMask(1), 1u);
    EXPECT_EQ(bitMask(8), 0xffu);
    EXPECT_EQ(bitMask(32), 0xffffffffu);
    EXPECT_EQ(bitMask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(bitMask(64), ~0ull);
}

TEST(Bits, Truncate)
{
    EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
    EXPECT_EQ(truncate(0x100, 8), 0u);
    EXPECT_EQ(truncate(~0ull, 64), ~0ull);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0x80, 8), 0xffffffffffffff80ull);
    EXPECT_EQ(signExtend(0x7f, 8), 0x7full);
    EXPECT_EQ(signExtend(1, 1), ~0ull);
    EXPECT_EQ(signExtend(0, 1), 0u);
}

class SignExtendSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SignExtendSweep, RoundTripsThroughTruncate)
{
    unsigned w = GetParam();
    for (uint64_t v : {uint64_t(0), uint64_t(1), bitMask(w) >> 1,
                       bitMask(w)}) {
        uint64_t ext = signExtend(v, w);
        EXPECT_EQ(truncate(ext, w), v) << "width " << w << " value " << v;
        // The extension bits must replicate the sign bit.
        bool neg = bit(v, w - 1);
        if (w < 64) {
            EXPECT_EQ(ext >> w, neg ? bitMask(64 - w) : 0u)
                << "width " << w << " value " << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SignExtendSweep,
                         ::testing::Values(1u, 2u, 5u, 8u, 16u, 31u, 32u,
                                           33u, 63u, 64u));

TEST(Bits, ExtractAndInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 2), 0u);
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffff, 7, 4, 0), 0xff0fu);
}

TEST(Bits, Clog2)
{
    EXPECT_EQ(clog2(0), 0u);
    EXPECT_EQ(clog2(1), 0u);
    EXPECT_EQ(clog2(2), 1u);
    EXPECT_EQ(clog2(3), 2u);
    EXPECT_EQ(clog2(1024), 10u);
    EXPECT_EQ(clog2(1025), 11u);
}

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(4097));
}

TEST(Logging, StrFmt)
{
    EXPECT_EQ(strfmt("a %d b %s", 42, "x"), "a 42 b x");
    EXPECT_EQ(strfmt("%08x", 0xbeef), "0000beef");
}

TEST(Logging, QuietSuppression)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    warn("this must not appear");
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST(Env, ParseULongAcceptsPlainDecimal)
{
    EXPECT_EQ(util::parseULong("0"), 0ul);
    EXPECT_EQ(util::parseULong("42"), 42ul);
    EXPECT_EQ(util::parseULong("18446744073709551615"),
              18446744073709551615ul);
}

TEST(Env, ParseULongRejectsSignedAndGarbage)
{
    // strtoul would happily wrap "-1" to ULONG_MAX; the strict parser
    // must treat every one of these like an unset variable.
    EXPECT_FALSE(util::parseULong("").has_value());
    EXPECT_FALSE(util::parseULong("-1").has_value());
    EXPECT_FALSE(util::parseULong("+3").has_value());
    EXPECT_FALSE(util::parseULong(" 7").has_value());
    EXPECT_FALSE(util::parseULong("7 ").has_value());
    EXPECT_FALSE(util::parseULong("0x10").has_value());
    EXPECT_FALSE(util::parseULong("12abc").has_value());
    EXPECT_FALSE(util::parseULong("abc").has_value());
    // One digit past ULONG_MAX: overflow, not silent wrap.
    EXPECT_FALSE(util::parseULong("18446744073709551616").has_value());
}

TEST(Env, EnvULongFallbackAndPresence)
{
    bool present = true;
    ::unsetenv("STROBER_TEST_ENV_ULONG");
    EXPECT_EQ(util::envULong("STROBER_TEST_ENV_ULONG", 9, &present), 9ul);
    EXPECT_FALSE(present);

    ::setenv("STROBER_TEST_ENV_ULONG", "17", 1);
    EXPECT_EQ(util::envULong("STROBER_TEST_ENV_ULONG", 9, &present), 17ul);
    EXPECT_TRUE(present);

    // Garbage behaves exactly like unset: fallback, not-present.
    ::setenv("STROBER_TEST_ENV_ULONG", "-4", 1);
    EXPECT_EQ(util::envULong("STROBER_TEST_ENV_ULONG", 9, &present), 9ul);
    EXPECT_FALSE(present);
    ::unsetenv("STROBER_TEST_ENV_ULONG");
}

TEST(Env, EnvFlag)
{
    ::unsetenv("STROBER_TEST_ENV_FLAG");
    EXPECT_FALSE(util::envFlag("STROBER_TEST_ENV_FLAG"));
    ::setenv("STROBER_TEST_ENV_FLAG", "", 1);
    EXPECT_FALSE(util::envFlag("STROBER_TEST_ENV_FLAG"));
    ::setenv("STROBER_TEST_ENV_FLAG", "0", 1);
    EXPECT_FALSE(util::envFlag("STROBER_TEST_ENV_FLAG"));
    ::setenv("STROBER_TEST_ENV_FLAG", "1", 1);
    EXPECT_TRUE(util::envFlag("STROBER_TEST_ENV_FLAG"));
    ::setenv("STROBER_TEST_ENV_FLAG", "yes", 1);
    EXPECT_TRUE(util::envFlag("STROBER_TEST_ENV_FLAG"));
    ::unsetenv("STROBER_TEST_ENV_FLAG");
}

TEST(Env, ParseDurationMs)
{
    EXPECT_EQ(util::parseDurationMs("250ms"), 250ull);
    EXPECT_EQ(util::parseDurationMs("3s"), 3000ull);
    EXPECT_EQ(util::parseDurationMs("3"), 3000ull); // bare means seconds
    EXPECT_EQ(util::parseDurationMs("2m"), 120000ull);
    EXPECT_EQ(util::parseDurationMs("1h"), 3600000ull);
    EXPECT_EQ(util::parseDurationMs("0ms"), 0ull);

    EXPECT_FALSE(util::parseDurationMs("").has_value());
    EXPECT_FALSE(util::parseDurationMs("ms").has_value());
    EXPECT_FALSE(util::parseDurationMs("-5s").has_value());
    EXPECT_FALSE(util::parseDurationMs("5 s").has_value());
    EXPECT_FALSE(util::parseDurationMs("5d").has_value());
    // 2^64 ms-worth of hours overflows the multiply.
    EXPECT_FALSE(util::parseDurationMs("18446744073709551615h").has_value());
}

TEST(Env, Clocks)
{
    // Coarse sanity only: unix time is after 2020, monotonic advances.
    EXPECT_GT(util::nowUnixMs(), 1577836800000ull);
    uint64_t a = util::monotonicMs();
    uint64_t b = util::monotonicMs();
    EXPECT_GE(b, a);
}

TEST(Env, ProcessRssBytesSelf)
{
    // Our own RSS must be readable and nonzero; a dead pid reads as 0.
    EXPECT_GT(util::processRssBytes(::getpid()), 0ull);
    EXPECT_EQ(util::processRssBytes(-1), 0ull);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "panic: boom 7");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "fatal: bad config");
}

} // namespace
} // namespace strober
