/**
 * @file
 * Unit and property tests for the fast RTL interpreter.
 */

#include <gtest/gtest.h>

#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"
#include "util/bits.h"

namespace strober {
namespace sim {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::MemHandle;
using rtl::Op;
using rtl::Signal;

TEST(Simulator, CounterWithEnable)
{
    Builder b("counter");
    Signal en = b.input("en", 1);
    Signal cnt = b.reg("cnt", 8, 5);
    b.next(cnt, cnt + b.lit(1, 8), en);
    b.output("out", cnt);
    Design d = b.finish();

    Simulator s(d);
    EXPECT_EQ(s.peek("out"), 5u); // init value
    s.poke("en", 1);
    s.step(3);
    EXPECT_EQ(s.peek("out"), 8u);
    s.poke("en", 0);
    s.step(10);
    EXPECT_EQ(s.peek("out"), 8u); // held while disabled
    EXPECT_EQ(s.cycle(), 13u);
    s.reset();
    EXPECT_EQ(s.peek("out"), 5u);
    EXPECT_EQ(s.cycle(), 0u);
}

TEST(Simulator, CounterWraps)
{
    Builder b("c");
    Signal cnt = b.reg("cnt", 4, 0);
    b.next(cnt, cnt + b.lit(1, 4));
    b.output("o", cnt);
    Design d = b.finish();
    Simulator s(d);
    s.step(17);
    EXPECT_EQ(s.peek("o"), 1u); // wrapped at 16
}

/** A pure combinational ALU covering most binary ops. */
struct AluDesign
{
    Design d;
    AluDesign() : d(build()) {}

    static Design
    build()
    {
        Builder b("alu");
        Signal a = b.input("a", 32);
        Signal x = b.input("x", 32);
        Signal sh = b.input("sh", 5);
        b.output("add", a + x);
        b.output("sub", a - x);
        b.output("and", a & x);
        b.output("or", a | x);
        b.output("xor", a ^ x);
        b.output("not", ~a);
        b.output("neg", b.unary(Op::Neg, a));
        b.output("eq", eq(a, x));
        b.output("ne", ne(a, x));
        b.output("ltu", ltu(a, x));
        b.output("lts", lts(a, x));
        b.output("shl", shl(a, b.pad(sh, 32)));
        b.output("shru", shru(a, b.pad(sh, 32)));
        b.output("sra", sra(a, b.pad(sh, 32)));
        b.output("mul", a * x);
        b.output("divu", divu(a, x));
        b.output("remu", remu(a, x));
        b.output("redor", b.redOr(a));
        b.output("redand", b.redAnd(a));
        b.output("redxor", b.redXor(a));
        b.output("cat", b.cat(a.bits(7, 0), x.bits(7, 0)));
        b.output("sext", b.sext(a.bits(7, 0), 32));
        return b.finish();
    }
};

class AluSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AluSweep, MatchesReferenceSemantics)
{
    static AluDesign alu;
    Simulator s(alu.d);
    stats::Rng rng(GetParam());

    for (int iter = 0; iter < 200; ++iter) {
        uint32_t a = static_cast<uint32_t>(rng.next());
        uint32_t x = static_cast<uint32_t>(rng.next());
        // Bias in interesting corners.
        if (iter % 7 == 0) a = 0;
        if (iter % 11 == 0) x = 0;
        if (iter % 13 == 0) a = UINT32_MAX;
        unsigned sh = static_cast<unsigned>(rng.nextBounded(32));

        s.poke("a", a);
        s.poke("x", x);
        s.poke("sh", sh);

        EXPECT_EQ(s.peek("add"), uint32_t(a + x));
        EXPECT_EQ(s.peek("sub"), uint32_t(a - x));
        EXPECT_EQ(s.peek("and"), (a & x));
        EXPECT_EQ(s.peek("or"), (a | x));
        EXPECT_EQ(s.peek("xor"), (a ^ x));
        EXPECT_EQ(s.peek("not"), uint32_t(~a));
        EXPECT_EQ(s.peek("neg"), uint32_t(-a));
        EXPECT_EQ(s.peek("eq"), uint64_t(a == x));
        EXPECT_EQ(s.peek("ne"), uint64_t(a != x));
        EXPECT_EQ(s.peek("ltu"), uint64_t(a < x));
        EXPECT_EQ(s.peek("lts"),
                  uint64_t(int32_t(a) < int32_t(x)));
        EXPECT_EQ(s.peek("shl"), uint32_t(a << sh));
        EXPECT_EQ(s.peek("shru"), a >> sh);
        EXPECT_EQ(s.peek("sra"), uint32_t(int32_t(a) >> sh));
        EXPECT_EQ(s.peek("mul"), uint64_t(a) * uint64_t(x));
        EXPECT_EQ(s.peek("divu"), x == 0 ? UINT32_MAX : a / x);
        EXPECT_EQ(s.peek("remu"), x == 0 ? a : a % x);
        EXPECT_EQ(s.peek("redor"), uint64_t(a != 0));
        EXPECT_EQ(s.peek("redand"), uint64_t(a == UINT32_MAX));
        EXPECT_EQ(s.peek("redxor"),
                  uint64_t(__builtin_popcount(a) & 1));
        EXPECT_EQ(s.peek("cat"), uint64_t(((a & 0xff) << 8) | (x & 0xff)));
        EXPECT_EQ(s.peek("sext"), uint32_t(int32_t(int8_t(a & 0xff))));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

TEST(Simulator, ShiftBeyondWidth)
{
    Builder b("s");
    Signal a = b.input("a", 8);
    Signal amt = b.input("amt", 8);
    b.output("shl", shl(a, amt));
    b.output("shru", shru(a, amt));
    b.output("sra", sra(a, amt));
    Design d = b.finish();
    Simulator s(d);
    s.poke("a", 0x80);
    s.poke("amt", 9);
    EXPECT_EQ(s.peek("shl"), 0u);
    EXPECT_EQ(s.peek("shru"), 0u);
    EXPECT_EQ(s.peek("sra"), 0xffu); // sign fill
    s.poke("a", 0x40);
    EXPECT_EQ(s.peek("sra"), 0u);
}

/**
 * Shift amounts at and beyond every boundary that is undefined behaviour
 * for a naive host shift (amount == width, > width, >= 64). The
 * interpreter clamps explicitly; these pin the defined results in both
 * evaluation modes.
 */
TEST(Simulator, ShiftBoundaryAmountsNarrow)
{
    Builder b("s8");
    Signal a = b.input("a", 8);
    Signal amt = b.input("amt", 8);
    b.output("shl", shl(a, amt));
    b.output("shru", shru(a, amt));
    b.output("sra", sra(a, amt));
    Design d = b.finish();

    struct Case
    {
        uint64_t a, amt, shl, shru, sra;
    };
    // width-1 / width / width+1 / widest-possible amount, for a negative
    // and a non-negative operand.
    const Case cases[] = {
        {0x81, 0, 0x81, 0x81, 0x81},
        {0x81, 7, 0x80, 0x01, 0xff},
        {0x41, 7, 0x80, 0x00, 0x00},
        {0x81, 8, 0x00, 0x00, 0xff},
        {0x41, 8, 0x00, 0x00, 0x00},
        {0x81, 9, 0x00, 0x00, 0xff},
        {0xff, 255, 0x00, 0x00, 0xff},
        {0x7f, 255, 0x00, 0x00, 0x00},
    };
    for (Backend backend : {Backend::InterpretedFull,
                            Backend::InterpretedActivity,
                            Backend::Compiled}) {
        Simulator s(d, backend);
        for (const Case &c : cases) {
            s.poke("a", c.a);
            s.poke("amt", c.amt);
            EXPECT_EQ(s.peek("shl"), c.shl)
                << backendName(backend) << " shl " << c.a << " by "
                << c.amt;
            EXPECT_EQ(s.peek("shru"), c.shru)
                << backendName(backend) << " shru " << c.a << " by "
                << c.amt;
            EXPECT_EQ(s.peek("sra"), c.sra)
                << backendName(backend) << " sra " << c.a << " by "
                << c.amt;
            s.step();
        }
    }
}

TEST(Simulator, ShiftBoundaryAmountsWide)
{
    // Full 64-bit operands: amount 63 is the last defined host shift;
    // 64, 65 and huge amounts must still clamp to the fill value.
    Builder b("s64");
    Signal a = b.input("a", 64);
    Signal amt = b.input("amt", 64);
    b.output("shl", shl(a, amt));
    b.output("shru", shru(a, amt));
    b.output("sra", sra(a, amt));
    Design d = b.finish();

    const uint64_t neg = 0x8000000000000001ull;
    const uint64_t pos = 0x4000000000000001ull;
    struct Case
    {
        uint64_t a, amt, shl, shru, sra;
    };
    const Case cases[] = {
        {neg, 63, 0x8000000000000000ull, 1, ~0ull},
        {pos, 63, 0x8000000000000000ull, 0, 0},
        {neg, 64, 0, 0, ~0ull},
        {pos, 64, 0, 0, 0},
        {neg, 65, 0, 0, ~0ull},
        {pos, 65, 0, 0, 0},
        {neg, 1ull << 32, 0, 0, ~0ull},
        {neg, ~0ull, 0, 0, ~0ull},
        {pos, ~0ull, 0, 0, 0},
    };
    for (Backend backend : {Backend::InterpretedFull,
                            Backend::InterpretedActivity,
                            Backend::Compiled}) {
        Simulator s(d, backend);
        for (const Case &c : cases) {
            s.poke("a", c.a);
            s.poke("amt", c.amt);
            EXPECT_EQ(s.peek("shl"), c.shl)
                << backendName(backend) << " shl by " << c.amt;
            EXPECT_EQ(s.peek("shru"), c.shru)
                << backendName(backend) << " shru by " << c.amt;
            EXPECT_EQ(s.peek("sra"), c.sra)
                << backendName(backend) << " sra by " << c.amt;
            s.step();
        }
    }
}

TEST(Simulator, AsyncMemReadWrite)
{
    Builder b("m");
    Signal waddr = b.input("waddr", 4);
    Signal wdata = b.input("wdata", 8);
    Signal wen = b.input("wen", 1);
    Signal raddr = b.input("raddr", 4);
    MemHandle m = b.mem("ram", 8, 16, /*syncRead=*/false);
    b.memWrite(m, waddr, wdata, wen);
    b.output("rdata", b.memRead(m, raddr));
    Design d = b.finish();

    Simulator s(d);
    s.poke("waddr", 3);
    s.poke("wdata", 0xab);
    s.poke("wen", 1);
    s.poke("raddr", 3);
    EXPECT_EQ(s.peek("rdata"), 0u); // write has not committed yet
    s.step();
    s.poke("wen", 0);
    EXPECT_EQ(s.peek("rdata"), 0xabu); // async read sees committed data
}

TEST(Simulator, SyncMemReadLatencyAndReadBeforeWrite)
{
    Builder b("m");
    Signal addr = b.input("addr", 4);
    Signal wdata = b.input("wdata", 8);
    Signal wen = b.input("wen", 1);
    MemHandle m = b.mem("ram", 8, 16, /*syncRead=*/true);
    Signal q = b.memReadSync(m, addr);
    b.memWrite(m, addr, wdata, wen);
    b.output("q", q);
    Design d = b.finish();

    Simulator s(d);
    s.setMemWord(0, 5, 0x11);
    // Cycle 0: read and write address 5 simultaneously.
    s.poke("addr", 5);
    s.poke("wdata", 0x22);
    s.poke("wen", 1);
    s.step();
    // Read-before-write: the latched data is the OLD word.
    EXPECT_EQ(s.peek("q"), 0x11u);
    s.poke("wen", 0);
    s.step();
    // Next read returns the newly written word.
    EXPECT_EQ(s.peek("q"), 0x22u);
    EXPECT_EQ(s.memWord(0, 5), 0x22u);
}

TEST(Simulator, SyncReadEnableHolds)
{
    Builder b("m");
    Signal addr = b.input("addr", 4);
    Signal ren = b.input("ren", 1);
    MemHandle m = b.mem("ram", 8, 16, true);
    Signal q = b.memReadSync(m, addr, ren);
    b.output("q", q);
    Design d = b.finish();

    Simulator s(d);
    s.setMemWord(0, 1, 0xaa);
    s.setMemWord(0, 2, 0xbb);
    s.poke("addr", 1);
    s.poke("ren", 1);
    s.step();
    EXPECT_EQ(s.peek("q"), 0xaau);
    s.poke("addr", 2);
    s.poke("ren", 0); // disabled: data register holds
    s.step();
    EXPECT_EQ(s.peek("q"), 0xaau);
    s.poke("ren", 1);
    s.step();
    EXPECT_EQ(s.peek("q"), 0xbbu);
}

TEST(Simulator, LastWritePortWins)
{
    Builder b("m");
    Signal addr = b.input("addr", 2);
    MemHandle m = b.mem("ram", 8, 4, false);
    b.memWrite(m, addr, b.lit(0x11, 8), Signal());
    b.memWrite(m, addr, b.lit(0x22, 8), Signal());
    b.output("rd", b.memRead(m, addr));
    Design d = b.finish();
    Simulator s(d);
    s.poke("addr", 0);
    s.step();
    EXPECT_EQ(s.peek("rd"), 0x22u);
}

TEST(Simulator, DirectStateAccess)
{
    Builder b("c");
    Signal cnt = b.reg("cnt", 16, 0);
    b.next(cnt, cnt + b.lit(1, 16));
    b.output("o", cnt);
    Design d = b.finish();
    Simulator s(d);
    s.setRegValue(0, 100);
    EXPECT_EQ(s.peek("o"), 100u);
    s.step();
    EXPECT_EQ(s.regValue(0), 101u);
}

TEST(Simulator, LoadMemBulk)
{
    Builder b("m");
    Signal raddr = b.input("raddr", 4);
    MemHandle m = b.mem("ram", 32, 16, false);
    b.output("rd", b.memRead(m, raddr));
    Design d = b.finish();
    Simulator s(d);
    s.loadMem(0, 2, {10, 20, 30});
    s.poke("raddr", 3);
    EXPECT_EQ(s.peek("rd"), 20u);
}

TEST(Simulator, NodeEvalsAdvance)
{
    Design d = [] {
        Builder b("c");
        Signal cnt = b.reg("cnt", 8, 0);
        b.next(cnt, cnt + b.lit(1, 8));
        b.output("o", cnt);
        return b.finish();
    }();
    Simulator s(d);
    uint64_t before = s.nodeEvals();
    s.step(100);
    EXPECT_GT(s.nodeEvals(), before);
}

TEST(SimulatorDeath, PokeNonInput)
{
    Design d = [] {
        Builder b("c");
        Signal cnt = b.reg("cnt", 8, 0);
        b.next(cnt, cnt);
        b.output("o", cnt);
        return b.finish();
    }();
    Simulator s(d);
    EXPECT_DEATH(s.poke(d.regs()[0].node, 1), "not an input");
}

TEST(SimulatorDeath, StateAccessOutOfRange)
{
    Design d = [] {
        Builder b("m");
        Signal raddr = b.input("raddr", 4);
        Signal cnt = b.reg("cnt", 8, 0);
        b.next(cnt, cnt);
        MemHandle m = b.mem("ram", 8, 16, true);
        b.output("rd", b.memReadSync(m, raddr));
        b.output("o", cnt);
        return b.finish();
    }();
    Simulator s(d);
    // In-range accesses work...
    EXPECT_EQ(s.regValue(0), 0u);
    EXPECT_EQ(s.memWord(0, 15), 0u);
    EXPECT_EQ(s.syncReadData(0, 0), 0u);
    // ...every out-of-range index is a caught invariant, not UB.
    EXPECT_DEATH(s.regValue(1), "out of range");
    EXPECT_DEATH(s.setRegValue(1, 0), "out of range");
    EXPECT_DEATH(s.memWord(1, 0), "out of range");
    EXPECT_DEATH(s.memWord(0, 16), "out of range");
    EXPECT_DEATH(s.setMemWord(1, 0, 0), "out of range");
    EXPECT_DEATH(s.setMemWord(0, 16, 0), "out of range");
    EXPECT_DEATH(s.syncReadData(0, 1), "out of range");
    EXPECT_DEATH(s.syncReadData(1, 0), "out of range");
    EXPECT_DEATH(s.setSyncReadData(0, 1, 0), "out of range");
    EXPECT_DEATH(s.loadMem(1, 0, {1}), "out of range");
}

TEST(SimulatorDeath, LoadMemOverflow)
{
    Design d = [] {
        Builder b("m");
        Signal raddr = b.input("raddr", 4);
        MemHandle m = b.mem("ram", 8, 16, false);
        b.output("rd", b.memRead(m, raddr));
        return b.finish();
    }();
    Simulator s(d);
    s.loadMem(0, 15, {1}); // exactly fits
    EXPECT_EQ(s.memWord(0, 15), 1u);
    // One word too many, a base past the end, and a base+size that
    // wraps uint64_t must all be rejected as user errors.
    EXPECT_EXIT(s.loadMem(0, 15, {1, 2}), ::testing::ExitedWithCode(1),
                "overflows");
    EXPECT_EXIT(s.loadMem(0, 17, {}), ::testing::ExitedWithCode(1),
                "overflows");
    EXPECT_EXIT(s.loadMem(0, ~0ull, {1, 2}), ::testing::ExitedWithCode(1),
                "overflows");
}

TEST(SimulatorDeath, UnknownPortNames)
{
    Design d = [] {
        Builder b("c");
        Signal i = b.input("in", 1);
        b.output("o", i);
        return b.finish();
    }();
    Simulator s(d);
    EXPECT_EXIT(s.poke("nope", 1), ::testing::ExitedWithCode(1), "no input");
    EXPECT_EXIT(s.peek("nope"), ::testing::ExitedWithCode(1), "no output");
}

/** Fibonacci via two registers: cross-register update ordering. */
TEST(Simulator, TwoRegisterPipelineOrdering)
{
    Builder b("fib");
    Signal a = b.reg("a", 32, 0);
    Signal x = b.reg("x", 32, 1);
    b.next(a, x);
    b.next(x, a + x);
    b.output("a", a);
    Design d = b.finish();
    Simulator s(d);
    // Registers must update simultaneously (two-phase commit).
    uint32_t expectA = 0, expectX = 1;
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(s.peek("a"), expectA);
        uint32_t na = expectX, nx = expectA + expectX;
        expectA = na;
        expectX = nx;
        s.step();
    }
}

} // namespace
} // namespace sim
} // namespace strober
