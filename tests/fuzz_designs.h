/**
 * @file
 * Shared randomized-design generator for the fuzz-style test suites
 * (test_fuzz.cc, test_differential.cc). Builds arbitrary synchronous
 * designs — random word widths, the full op set, registers with and
 * without enables, one async-or-sync memory — deterministically from a
 * seed, which is what lets failures be replayed by seed alone.
 */

#ifndef STROBER_TESTS_FUZZ_DESIGNS_H
#define STROBER_TESTS_FUZZ_DESIGNS_H

#include <algorithm>
#include <string>
#include <vector>

#include "rtl/builder.h"
#include "stats/rng.h"

namespace strober {
namespace testing {

/** Build a random synchronous design from @p seed. */
inline rtl::Design
randomDesign(uint64_t seed)
{
    using rtl::Builder;
    using rtl::Signal;

    stats::Rng rng(seed);
    Builder b("fuzz" + std::to_string(seed));

    auto width = [&]() {
        static const unsigned choices[] = {1, 2, 5, 8, 13, 16, 24, 32};
        return choices[rng.nextBounded(8)];
    };

    std::vector<Signal> pool;
    unsigned numInputs = 2 + static_cast<unsigned>(rng.nextBounded(3));
    for (unsigned i = 0; i < numInputs; ++i)
        pool.push_back(b.input("in" + std::to_string(i), width()));
    pool.push_back(b.lit(rng.nextBounded(255) + 1, 8));
    pool.push_back(b.lit(1, 1));

    struct PendingReg
    {
        Signal reg;
        bool withEnable;
    };
    std::vector<PendingReg> regs;
    unsigned numRegs = 1 + static_cast<unsigned>(rng.nextBounded(3));
    for (unsigned i = 0; i < numRegs; ++i) {
        Signal r = b.reg("r" + std::to_string(i), width(),
                         rng.nextBounded(100));
        regs.push_back({r, rng.nextBounded(2) == 0});
        pool.push_back(r);
    }

    auto pick = [&]() { return pool[rng.nextBounded(pool.size())]; };
    auto pickW = [&](unsigned w) { return b.resize(pick(), w); };

    // A random memory, async or sync.
    bool syncMem = rng.nextBounded(2) == 0;
    rtl::MemHandle mem = b.mem("m", 8, 16, syncMem);
    {
        Signal addr = b.resize(pick(), 4);
        Signal data = pickW(8);
        Signal wen = b.resize(pick(), 1);
        b.memWrite(mem, addr, data, wen);
        Signal raddr = b.resize(pick(), 4);
        pool.push_back(syncMem ? b.memReadSync(mem, raddr)
                               : b.memRead(mem, raddr));
    }

    unsigned numOps = 20 + static_cast<unsigned>(rng.nextBounded(40));
    for (unsigned i = 0; i < numOps; ++i) {
        Signal a = pick();
        Signal result;
        switch (rng.nextBounded(14)) {
          case 0:
            result = a + pickW(a.width());
            break;
          case 1:
            result = a - pickW(a.width());
            break;
          case 2: {
            // Keep products within 64 bits.
            Signal x = b.resize(pick(), std::min(16u, a.width()));
            result = b.resize(a, std::min(16u, a.width())) * x;
            break;
          }
          case 3:
            result = divu(a, pickW(a.width()));
            break;
          case 4:
            result = remu(a, pickW(a.width()));
            break;
          case 5:
            result = a & pickW(a.width());
            break;
          case 6:
            result = a ^ pickW(a.width());
            break;
          case 7:
            result = shl(a, pickW(a.width()));
            break;
          case 8:
            result = sra(a, pickW(a.width()));
            break;
          case 9:
            result = b.mux(b.resize(pick(), 1), a, pickW(a.width()));
            break;
          case 10: {
            unsigned hi = static_cast<unsigned>(
                rng.nextBounded(a.width()));
            unsigned lo =
                static_cast<unsigned>(rng.nextBounded(hi + 1));
            result = a.bits(hi, lo);
            break;
          }
          case 11:
            if (a.width() <= 32) {
                result = b.cat(a, pickW(8));
                break;
            }
            [[fallthrough]];
          case 12:
            result = b.mux(lts(a, pickW(a.width())), ~a, a);
            break;
          default:
            result = b.sext(a, std::min(64u, a.width() + 4));
            break;
        }
        pool.push_back(result);
    }

    for (PendingReg &pr : regs) {
        Signal next = b.resize(pick(), pr.reg.width());
        if (pr.withEnable)
            b.next(pr.reg, next, b.resize(pick(), 1));
        else
            b.next(pr.reg, next);
    }

    unsigned numOutputs = 3 + static_cast<unsigned>(rng.nextBounded(3));
    for (unsigned i = 0; i < numOutputs; ++i)
        b.output("out" + std::to_string(i), pick());
    return b.finish();
}

} // namespace testing
} // namespace strober

#endif // STROBER_TESTS_FUZZ_DESIGNS_H
