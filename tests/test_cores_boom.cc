/**
 * @file
 * Tests for the out-of-order (boom-like) SoC at both widths, verified
 * instruction-by-instruction against the golden ISS.
 */

#include <gtest/gtest.h>

#include "core/harness.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "isa/assembler.h"

namespace strober {
namespace cores {
namespace {

const rtl::Design &
boomDesign(unsigned width)
{
    static rtl::Design one = buildSoc(SocConfig::boom1w());
    static rtl::Design two = buildSoc(SocConfig::boom2w());
    return width == 1 ? one : two;
}

SocDriver
runBoom(unsigned width, const std::string &source,
        uint64_t maxCycles = 2'000'000)
{
    const rtl::Design &design = boomDesign(width);
    isa::Program prog = isa::assemble(source);
    SocDriver::Config cfg;
    cfg.checkCommits = true;
    SocDriver driver(design, prog, cfg);
    core::RtlHarness harness(design);
    core::runLoop(harness, driver, maxCycles);
    EXPECT_TRUE(driver.done()) << "program did not finish (width "
                               << width << ")";
    return driver;
}

class BoomWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(BoomWidth, ArithmeticLoop)
{
    SocDriver d = runBoom(GetParam(), R"(
            li a0, 0
            li a1, 1
            li a2, 101
        loop:
            add a0, a0, a1
            addi a1, a1, 1
            bne a1, a2, loop
            li t0, 0x40000000
            sw a0, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.exitCode(), 5050u);
}

TEST_P(BoomWidth, IndependentChainsExploitIlp)
{
    SocDriver d = runBoom(GetParam(), R"(
            li s0, 0
            li s1, 0
            li s2, 0
            li s3, 0
            li t0, 0
            li t1, 200
        loop:
            addi s0, s0, 1
            addi s1, s1, 2
            addi s2, s2, 3
            addi s3, s3, 4
            addi t0, t0, 1
            bne  t0, t1, loop
            add  a0, s0, s1
            add  a0, a0, s2
            add  a0, a0, s3
            li t0, 0x40000000
            sw a0, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.exitCode(), 2000u);
}

TEST_P(BoomWidth, LoadsStoresAndDependencies)
{
    SocDriver d = runBoom(GetParam(), R"(
            li   sp, 0x8000
            li   t0, 0
            li   t1, 32
            li   a0, 0
        fill:
            slli t2, t0, 2
            add  t3, sp, t2
            sw   t0, 0(t3)
            addi t0, t0, 1
            bne  t0, t1, fill
            li   t0, 0
        sum:
            slli t2, t0, 2
            add  t3, sp, t2
            lw   t4, 0(t3)
            add  a0, a0, t4
            addi t0, t0, 1
            bne  t0, t1, sum
            li   t0, 0x40000000
            sw   a0, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.exitCode(), 496u); // sum 0..31
}

TEST_P(BoomWidth, StoreLoadForwardingThroughCache)
{
    // Store immediately followed by dependent load to the same word.
    SocDriver d = runBoom(GetParam(), R"(
            li   sp, 0x8000
            li   a0, 42
            sw   a0, 0(sp)
            lw   a1, 0(sp)
            addi a1, a1, 1
            sw   a1, 4(sp)
            lw   a2, 4(sp)
            li   t0, 0x40000000
            sw   a2, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.exitCode(), 43u);
}

TEST_P(BoomWidth, BranchRecoveryAndWrongPathSquash)
{
    SocDriver d = runBoom(GetParam(), R"(
            li  a0, 0
            li  t0, 0
            li  t1, 50
        loop:
            andi t2, t0, 1
            beqz t2, even
            addi a0, a0, 100     # odd path
            j    next
        even:
            addi a0, a0, 1       # even path
        next:
            addi t0, t0, 1
            bne  t0, t1, loop
            li   t0, 0x40000000
            sw   a0, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.exitCode(), 25u * 100 + 25u);
}

TEST_P(BoomWidth, MulDivOutOfOrderCompletion)
{
    SocDriver d = runBoom(GetParam(), R"(
            li   a0, 7
            li   a1, 9
            mul  a2, a0, a1      # 3-cycle pipe
            addi a3, a0, 1       # independent: completes earlier
            div  a4, a1, a0      # long divide
            addi a5, a1, 1       # independent again
            add  s0, a2, a3
            add  s0, s0, a4
            add  s0, s0, a5
            li   t0, 0x40000000
            sw   s0, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.exitCode(), 63u + 8 + 1 + 10);
}

TEST_P(BoomWidth, RecursionStressesRenamer)
{
    SocDriver d = runBoom(GetParam(), R"(
            li   sp, 0x10000
            li   a0, 8
            call fib
            li   t0, 0x40000000
            sw   a0, 0(t0)
        spin:
            j spin
        fib:
            li   t0, 2
            blt  a0, t0, base
            addi sp, sp, -12
            sw   ra, 8(sp)
            sw   a0, 4(sp)
            addi a0, a0, -1
            call fib
            sw   a0, 0(sp)
            lw   a0, 4(sp)
            addi a0, a0, -2
            call fib
            lw   t1, 0(sp)
            add  a0, a0, t1
            lw   ra, 8(sp)
            addi sp, sp, 12
            ret
        base:
            ret
    )", 4'000'000);
    EXPECT_EQ(d.exitCode(), 21u); // fib(8)
}

TEST_P(BoomWidth, CsrAndConsole)
{
    SocDriver d = runBoom(GetParam(), R"(
            rdcycle s0
            li   t0, 0x40000004
            li   t1, 79          # 'O'
            sw   t1, 0(t0)
            li   t1, 107         # 'k'
            sw   t1, 0(t0)
            rdcycle s1
            sub  a0, s1, s0
            li   t0, 0x40000000
            sw   a0, 0(t0)
        spin:
            j spin
    )");
    EXPECT_EQ(d.console(), "Ok");
    EXPECT_GT(d.exitCode(), 0u);
}

TEST_P(BoomWidth, EcallHalts)
{
    SocDriver d = runBoom(GetParam(), R"(
            li a0, 5
            ecall
            li a0, 9
        spin:
            j spin
    )");
    EXPECT_TRUE(d.exited());
}

INSTANTIATE_TEST_SUITE_P(Widths, BoomWidth, ::testing::Values(1u, 2u));

/** The headline microarchitectural claim: 2-wide OoO beats the in-order
 *  core on an ILP-rich loop (paper Figure 9b, CoreMark). */
TEST(BoomPerf, TwoWideBeatsInOrderOnIlp)
{
    const char *kernel = R"(
            li s0, 0
            li s1, 0
            li s2, 0
            li s3, 0
            li t0, 0
            li t1, 500
        loop:
            addi s0, s0, 1
            addi s1, s1, 2
            addi s2, s2, 3
            xori s3, s3, 5
            add  s0, s0, s2
            addi t0, t0, 1
            bne  t0, t1, loop
            li t0, 0x40000000
            sw s0, 0(t0)
        spin:
            j spin
    )";
    isa::Program prog = isa::assemble(kernel);

    auto cyclesFor = [&](const rtl::Design &design) {
        SocDriver driver(design, prog);
        core::RtlHarness harness(design);
        core::runLoop(harness, driver, 10'000'000);
        EXPECT_TRUE(driver.done());
        return harness.cycles();
    };

    static rtl::Design rocket = buildSoc(SocConfig::rocket());
    uint64_t rocketCycles = cyclesFor(rocket);
    uint64_t boom2Cycles = cyclesFor(boomDesign(2));
    EXPECT_LT(boom2Cycles, rocketCycles)
        << "2-wide OoO should finish the ILP kernel in fewer cycles";
}

} // namespace
} // namespace cores
} // namespace strober
