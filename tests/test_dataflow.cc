/**
 * @file
 * Tests for the known-bits dataflow framework (src/rtl/dataflow):
 * ValueFact algebra, per-Op transfer-function soundness (exhaustive over
 * small widths against rtl::evalOp), fixed-point convergence and
 * widening across register feedback, the two soundness regimes, and the
 * buildEvalPlan strengthening that consumes the facts.
 */

#include <vector>

#include <gtest/gtest.h>

#include "cores/soc.h"
#include "fuzz_designs.h"
#include "rtl/builder.h"
#include "rtl/dataflow.h"
#include "rtl/eval.h"
#include "rtl/opt.h"
#include "sim/simulator.h"
#include "stats/rng.h"

namespace strober {
namespace {

using rtl::analyzeDataflow;
using rtl::Builder;
using rtl::DataflowOptions;
using rtl::DataflowResult;
using rtl::Design;
using rtl::joinFacts;
using rtl::normalizeFact;
using rtl::Op;
using rtl::Signal;
using rtl::transferOp;
using rtl::ValueFact;

/** transferOp with matching operand widths (the common case). */
ValueFact
xfer(Op op, unsigned width, const ValueFact &a,
     const ValueFact &b = ValueFact::top(1),
     const ValueFact &c = ValueFact::top(1), uint64_t imm = 0)
{
    return transferOp(op, width, a.width, b.width, imm, a, b, c);
}

// --- ValueFact basics -----------------------------------------------------

TEST(ValueFact, TopAndConstant)
{
    ValueFact t = ValueFact::top(8);
    EXPECT_EQ(t.zeros, ~0xffull);
    EXPECT_EQ(t.ones, 0u);
    EXPECT_EQ(t.lo, 0u);
    EXPECT_EQ(t.hi, 0xffu);
    EXPECT_FALSE(t.isConst());
    EXPECT_TRUE(t.contains(0));
    EXPECT_TRUE(t.contains(0xff));

    ValueFact c = ValueFact::constant(0x1234, 8); // truncates to 0x34
    EXPECT_TRUE(c.isConst());
    EXPECT_EQ(c.constVal(), 0x34u);
    EXPECT_TRUE(c.contains(0x34));
    EXPECT_FALSE(c.contains(0x35));
}

TEST(ValueFact, NormalizeExchangesBitsAndRange)
{
    // A pure range [8, 11] implies bits [7:2] = 000010.
    ValueFact f = ValueFact::top(8);
    f.lo = 8;
    f.hi = 11;
    f = normalizeFact(f);
    EXPECT_NE(f.zeros & 0xf0, 0u) << "high bits should become known 0";
    EXPECT_NE(f.ones & 0x08, 0u) << "bit 3 should become known 1";
    EXPECT_TRUE(f.contains(8));
    EXPECT_TRUE(f.contains(11));
    EXPECT_FALSE(f.contains(12));

    // Pure known-bits clamp the range: bit 7 known 1 forces lo >= 0x80.
    ValueFact g = ValueFact::top(8);
    g.ones = 0x80;
    g.zeros |= 0x01;
    g = normalizeFact(g);
    EXPECT_GE(g.lo, 0x80u);
    EXPECT_EQ(g.hi, 0xfeu);

    // Equal bounds collapse to a constant with full known bits.
    ValueFact h = ValueFact::top(8);
    h.lo = h.hi = 42;
    h = normalizeFact(h);
    EXPECT_TRUE(h.isConst());
    EXPECT_EQ(h.ones, 42u);
}

TEST(ValueFact, JoinIsLeastUpperBound)
{
    ValueFact a = ValueFact::constant(0x10, 8);
    ValueFact b = ValueFact::constant(0x12, 8);
    ValueFact j = joinFacts(a, b);
    EXPECT_TRUE(j.contains(0x10));
    EXPECT_TRUE(j.contains(0x12));
    EXPECT_FALSE(j.contains(0x20));
    EXPECT_NE(j.ones & 0x10, 0u) << "common bit 4 stays known";
    EXPECT_EQ(j.lo, 0x10u);
    EXPECT_EQ(j.hi, 0x12u);
}

// --- Targeted per-op transfers --------------------------------------------

TEST(Transfer, AddPropagatesLowKnownZeros)
{
    // Both operands have the low 2 bits known 0: so does the sum.
    ValueFact a = ValueFact::top(8);
    a.zeros |= 0x3;
    a = normalizeFact(a);
    ValueFact r = xfer(Op::Add, 8, a, a);
    EXPECT_EQ(r.zeros & 0x3, 0x3u);
}

TEST(Transfer, AddRangeWithoutWraparound)
{
    ValueFact a = ValueFact::top(8);
    a.lo = 10;
    a.hi = 20;
    a = normalizeFact(a);
    ValueFact b = ValueFact::constant(5, 8);
    ValueFact r = xfer(Op::Add, 8, a, b);
    EXPECT_EQ(r.lo, 15u);
    EXPECT_EQ(r.hi, 25u);
}

TEST(Transfer, MulByPowerOfTwoShifts)
{
    ValueFact a = ValueFact::top(4);
    ValueFact four = ValueFact::constant(4, 4);
    ValueFact r = transferOp(Op::Mul, 8, 4, 4, 0, a, four,
                             ValueFact::top(1));
    EXPECT_EQ(r.zeros & 0x3, 0x3u) << "low 2 bits must be 0";
    EXPECT_EQ(r.hi, 60u);
}

TEST(Transfer, DivRemByZeroMatchEvalOp)
{
    ValueFact a = ValueFact::constant(0x2a, 8);
    ValueFact z = ValueFact::constant(0, 8);
    EXPECT_EQ(xfer(Op::Divu, 8, a, z).constVal(), 0xffu); // x/0 = ones
    EXPECT_EQ(xfer(Op::Remu, 8, a, z).constVal(), 0x2au); // x%0 = x
}

TEST(Transfer, ShiftsPastWidth)
{
    ValueFact a = ValueFact::top(8);
    ValueFact amt = ValueFact::constant(8, 8);
    EXPECT_EQ(xfer(Op::Shl, 8, a, amt).constVal(), 0u);
    EXPECT_EQ(xfer(Op::Shru, 8, a, amt).constVal(), 0u);

    // Sra saturates at the sign bit: a known-negative operand goes to
    // all-ones, a known-nonnegative one to zero.
    ValueFact neg = ValueFact::top(8);
    neg.ones |= 0x80;
    neg = normalizeFact(neg);
    EXPECT_EQ(xfer(Op::Sra, 8, neg, amt).constVal(), 0xffu);
}

TEST(Transfer, ComparisonsFromDisjointRanges)
{
    ValueFact lo = ValueFact::top(8);
    lo.hi = 10;
    lo = normalizeFact(lo);
    ValueFact hi = ValueFact::top(8);
    hi.lo = 20;
    hi = normalizeFact(hi);
    EXPECT_EQ(xfer(Op::Ltu, 1, lo, hi).constVal(), 1u);
    EXPECT_EQ(xfer(Op::Ltu, 1, hi, lo).constVal(), 0u);
    EXPECT_EQ(xfer(Op::Eq, 1, lo, hi).constVal(), 0u);
    EXPECT_EQ(xfer(Op::Ne, 1, lo, hi).constVal(), 1u);
}

TEST(Transfer, MuxDecidedBySelectorBit)
{
    ValueFact t = ValueFact::constant(3, 8);
    ValueFact e = ValueFact::constant(7, 8);
    ValueFact sel0 = ValueFact::constant(0, 1);
    ValueFact sel1 = ValueFact::constant(1, 1);
    ValueFact selU = ValueFact::top(1);
    EXPECT_EQ(transferOp(Op::Mux, 8, 1, 8, 0, sel1, t, e).constVal(), 3u);
    EXPECT_EQ(transferOp(Op::Mux, 8, 1, 8, 0, sel0, t, e).constVal(), 7u);
    ValueFact join = transferOp(Op::Mux, 8, 1, 8, 0, selU, t, e);
    EXPECT_TRUE(join.contains(3));
    EXPECT_TRUE(join.contains(7));
    EXPECT_FALSE(join.isConst());
}

TEST(Transfer, SExtThreeSignCases)
{
    ValueFact nonneg = ValueFact::top(4);
    nonneg.zeros |= 0x8;
    nonneg = normalizeFact(nonneg);
    ValueFact r = transferOp(Op::SExt, 8, 4, 0, 0, nonneg,
                             ValueFact::top(1), ValueFact::top(1));
    EXPECT_EQ(r.zeros & 0xf0, 0xf0u) << "upper bits known 0";

    ValueFact negf = ValueFact::top(4);
    negf.ones |= 0x8;
    negf = normalizeFact(negf);
    r = transferOp(Op::SExt, 8, 4, 0, 0, negf, ValueFact::top(1),
                   ValueFact::top(1));
    EXPECT_EQ(r.ones & 0xf0, 0xf0u) << "upper bits known 1";

    r = transferOp(Op::SExt, 8, 4, 0, 0, ValueFact::top(4),
                   ValueFact::top(1), ValueFact::top(1));
    EXPECT_FALSE(r.isConst());
    EXPECT_TRUE(r.contains(0x07));
    EXPECT_TRUE(r.contains(0xf8));
}

TEST(Transfer, CatIsExactOnRanges)
{
    ValueFact a = ValueFact::constant(0x5, 4);
    ValueFact b = ValueFact::top(4);
    b.lo = 1;
    b.hi = 3;
    b = normalizeFact(b);
    ValueFact r = transferOp(Op::Cat, 8, 4, 4, 0, a, b,
                             ValueFact::top(1));
    EXPECT_EQ(r.lo, 0x51u);
    EXPECT_EQ(r.hi, 0x53u);
    EXPECT_EQ(r.ones & 0xf0, 0x50u);
}

TEST(Transfer, BitsExtractsKnownBits)
{
    ValueFact a = ValueFact::constant(0xa5, 8);
    ValueFact r = transferOp(Op::Bits, 4, 8, 0, (7ull << 8) | 4, a,
                             ValueFact::top(1), ValueFact::top(1));
    EXPECT_TRUE(r.isConst());
    EXPECT_EQ(r.constVal(), 0xau);
}

TEST(Transfer, Reductions)
{
    ValueFact hasOne = ValueFact::top(8);
    hasOne.ones |= 0x10;
    hasOne = normalizeFact(hasOne);
    EXPECT_EQ(xfer(Op::RedOr, 1, hasOne).constVal(), 1u);

    ValueFact hasZero = ValueFact::top(8);
    hasZero.zeros |= 0x10;
    hasZero = normalizeFact(hasZero);
    EXPECT_EQ(xfer(Op::RedAnd, 1, hasZero).constVal(), 0u);

    EXPECT_EQ(xfer(Op::RedXor, 1, ValueFact::constant(0xa5, 8))
                  .constVal(),
              0u); // 10100101 -> 4 ones, even parity
}

// --- Exhaustive per-op soundness over small widths ------------------------

/** Every pure combinational op with plausible width combinations. */
struct OpShape
{
    Op op;
    unsigned width, widthA, widthB;
    uint64_t imm;
};

std::vector<OpShape>
allShapes()
{
    std::vector<OpShape> shapes;
    for (Op op : {Op::Not, Op::Neg})
        shapes.push_back({op, 4, 4, 0, 0});
    for (Op op : {Op::RedOr, Op::RedAnd, Op::RedXor})
        shapes.push_back({op, 1, 4, 0, 0});
    shapes.push_back({Op::SExt, 6, 3, 0, 0});
    shapes.push_back({Op::Pad, 6, 3, 0, 0});
    shapes.push_back({Op::Bits, 2, 4, 0, (2ull << 8) | 1});
    shapes.push_back({Op::Bits, 3, 4, 0, (3ull << 8) | 1});
    for (Op op : {Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Shl,
                  Op::Shru, Op::Sra, Op::Divu, Op::Remu})
        shapes.push_back({op, 4, 4, 4, 0});
    shapes.push_back({Op::Mul, 6, 3, 3, 0});
    for (Op op : {Op::Eq, Op::Ne, Op::Ltu, Op::Lts})
        shapes.push_back({op, 1, 4, 4, 0});
    shapes.push_back({Op::Cat, 7, 3, 4, 0});
    shapes.push_back({Op::Mux, 4, 1, 4, 0});
    return shapes;
}

/** A random sound fact of width @p w: the join of a few constants,
 *  optionally pre-joined so both views carry partial information. */
ValueFact
randomFact(stats::Rng &rng, unsigned w)
{
    unsigned n = 1 + static_cast<unsigned>(rng.nextBounded(4));
    ValueFact f =
        ValueFact::constant(rng.nextBounded(bitMask(w) + 1), w);
    for (unsigned i = 1; i < n; ++i)
        f = joinFacts(
            f, ValueFact::constant(rng.nextBounded(bitMask(w) + 1), w));
    return f;
}

TEST(Transfer, ExhaustiveSoundnessOnSmallWidths)
{
    stats::Rng rng(7);
    for (const OpShape &s : allShapes()) {
        for (unsigned trial = 0; trial < 24; ++trial) {
            ValueFact fa = randomFact(rng, s.widthA ? s.widthA : 1);
            ValueFact fb = randomFact(rng, s.widthB ? s.widthB : 1);
            ValueFact fc =
                s.op == Op::Mux ? randomFact(rng, s.width)
                                : ValueFact::top(1);
            unsigned wA = s.widthA, wB = s.widthB;
            unsigned wC = s.op == Op::Mux ? s.width : 1;
            ValueFact r = transferOp(s.op, s.width, wA, wB, s.imm, fa,
                                     fb, fc);
            // Enumerate every concrete combination the operand facts
            // allow; the result fact must contain every outcome.
            for (uint64_t a = 0; a <= bitMask(wA ? wA : 1); ++a) {
                if (!fa.contains(a))
                    continue;
                for (uint64_t b = 0; b <= bitMask(wB ? wB : 1); ++b) {
                    if (wB != 0 && !fb.contains(b))
                        continue;
                    for (uint64_t c = 0; c <= bitMask(wC); ++c) {
                        if (s.op == Op::Mux && !fc.contains(c))
                            continue;
                        uint64_t v = rtl::evalOp(s.op, s.width, wA, wB,
                                                 s.imm, a, b, c);
                        ASSERT_TRUE(r.contains(v))
                            << rtl::opName(s.op) << " trial " << trial
                            << ": evalOp(" << a << ", " << b << ", "
                            << c << ") = " << v
                            << " escapes the transfer fact";
                        if (s.op != Op::Mux)
                            break; // c unused
                    }
                    if (wB == 0)
                        break; // b unused
                }
            }
        }
    }
}

// --- Fixed point, widening, regimes ---------------------------------------

TEST(Dataflow, FixedPointThroughRegisterFeedback)
{
    // r' = r | 0x10 from init 0: reachable values are exactly {0, 0x10}.
    Builder b("sticky");
    Signal in = b.input("in", 8);
    Signal r = b.reg("r", 8, 0);
    b.next(r, r | b.lit(0x10, 8));
    b.output("o", r + in);
    Design d = b.finish();

    DataflowResult res = analyzeDataflow(d);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, 4u);
    const ValueFact &f = res.facts[d.regs()[0].node];
    EXPECT_TRUE(f.contains(0x00));
    EXPECT_TRUE(f.contains(0x10));
    EXPECT_FALSE(f.contains(0x01));
    EXPECT_FALSE(f.contains(0x20));
}

TEST(Dataflow, CounterWidensAndConverges)
{
    // A free-running 32-bit counter must not need 2^32 (or even 32)
    // iterations: widening drops it to top quickly.
    Builder b("ctr");
    Signal r = b.reg("r", 32, 0);
    b.next(r, r + b.lit(1, 32));
    b.output("o", r);
    Design d = b.finish();

    DataflowOptions opts;
    DataflowResult res = analyzeDataflow(d, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, opts.topAfter + 4);
    EXPECT_EQ(res.facts[d.regs()[0].node], ValueFact::top(32));
}

TEST(Dataflow, StuckEnableKeepsInitInResetRegimeOnly)
{
    Builder b("stuck");
    Signal in = b.input("in", 8);
    Signal r = b.reg("r", 8, 7);
    b.next(r, in, b.lit(0, 1)); // enable provably never asserts
    b.output("o", r);
    Design d = b.finish();

    DataflowResult reset = analyzeDataflow(d);
    const ValueFact &f = reset.facts[d.regs()[0].node];
    EXPECT_TRUE(f.isConst());
    EXPECT_EQ(f.constVal(), 7u);

    // Arbitrary-state: setRegValue() can force any value, so the same
    // register must be top.
    DataflowOptions arb;
    arb.assumeReset = false;
    DataflowResult any = analyzeDataflow(d, arb);
    EXPECT_EQ(any.facts[d.regs()[0].node], ValueFact::top(8));
}

TEST(Dataflow, MalformedDesignYieldsAllTop)
{
    Builder b("bad");
    Signal in = b.input("in", 8);
    b.output("o", in);
    Design d = b.finish();
    d.node(d.inputs()[0]).width = 0; // illegal width
    EXPECT_FALSE(rtl::dataflowAnalyzable(d));
    DataflowResult res = analyzeDataflow(d);
    EXPECT_FALSE(res.converged);
    for (rtl::NodeId id = 0; id < d.numNodes(); ++id)
        EXPECT_EQ(res.facts[id].ones, 0u);
}

// --- Conformance fuzz: facts contain every simulated value ---------------

void
expectFactsContainSimulation(const Design &d, const DataflowResult &df,
                             sim::Simulator &s, uint64_t seed,
                             bool scrambleRegs)
{
    stats::Rng rng(seed * 977 + 11);
    for (unsigned cycle = 0; cycle < 40; ++cycle) {
        for (rtl::NodeId in : d.inputs())
            s.poke(in, rng.next() & bitMask(d.node(in).width));
        if (scrambleRegs) {
            for (size_t r = 0; r < d.regs().size(); ++r) {
                if (rng.nextBounded(3) == 0) {
                    unsigned w = d.node(d.regs()[r].node).width;
                    s.setRegValue(r, rng.next() & bitMask(w));
                }
            }
        }
        s.evalComb();
        for (rtl::NodeId id = 0; id < d.numNodes(); ++id) {
            ASSERT_TRUE(df.facts[id].contains(s.peek(id)))
                << "seed " << seed << " cycle " << cycle << " node "
                << id << " (" << rtl::opName(d.node(id).op)
                << "): value " << s.peek(id)
                << " escapes its dataflow fact";
        }
        s.step();
    }
}

TEST(DataflowConformance, ResetReachableFactsHoldOverFuzzDesigns)
{
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        Design d = testing::randomDesign(seed);
        DataflowResult df = analyzeDataflow(d);
        sim::Simulator s(d);
        s.reset();
        expectFactsContainSimulation(d, df, s, seed,
                                     /*scrambleRegs=*/false);
    }
}

TEST(DataflowConformance, ArbitraryStateFactsSurviveRegScrambling)
{
    DataflowOptions arb;
    arb.assumeReset = false;
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        Design d = testing::randomDesign(seed);
        DataflowResult df = analyzeDataflow(d, arb);
        sim::Simulator s(d);
        s.reset();
        expectFactsContainSimulation(d, df, s, seed,
                                     /*scrambleRegs=*/true);
    }
}

// --- EvalPlan strengthening ----------------------------------------------

TEST(EvalPlanDataflow, ProvablyConstantLogicFoldsAway)
{
    // pad(in4, 8) >> 4 is provably 0, and a comparison against 200 is
    // provably true — invisible to structural folding, provable by
    // range analysis even in the arbitrary-state regime.
    Builder b("shrink");
    Signal in = b.input("in", 4);
    Signal wide = b.pad(in, 8);
    Signal top4 = shru(wide, b.lit(4, 8));
    Signal always = ltu(wide, b.lit(200, 8));
    Signal m = b.mux(always, wide + b.lit(1, 8), wide - b.lit(1, 8));
    b.output("top", top4);
    b.output("m", m);
    Design d = b.finish();

    rtl::EvalPlanOptions off;
    off.dataflow = false;
    rtl::EvalPlan base = rtl::buildEvalPlan(d, off);
    rtl::EvalPlan strong = rtl::buildEvalPlan(d);
    EXPECT_GT(base.hotProgram.size(), strong.hotProgram.size());
    EXPECT_GT(strong.stats.dfFolded, 0u);
    EXPECT_GT(strong.stats.dfMuxPruned, 0u);

    // The simulator (which uses the strengthened plan) still computes
    // the exact values.
    sim::Simulator s(d);
    s.reset();
    for (uint64_t v = 0; v < 16; ++v) {
        s.poke("in", v);
        s.evalComb();
        EXPECT_EQ(s.peek("top"), 0u);
        EXPECT_EQ(s.peek("m"), (v + 1) & 0xff);
    }
}

TEST(EvalPlanDataflow, ValuePreservingAliasing)
{
    // sext of a provably-nonnegative value is bit-for-bit its zext,
    // which CSE/aliasing can then collapse.
    Builder b("alias");
    Signal in = b.input("in", 4);
    Signal wide = b.pad(in, 8);
    Signal se = b.sext(wide, 16);
    b.output("o", se);
    Design d = b.finish();

    rtl::EvalPlan plan = rtl::buildEvalPlan(d);
    EXPECT_GT(plan.stats.dfAliased, 0u);

    sim::Simulator s(d);
    s.reset();
    for (uint64_t v = 0; v < 16; ++v) {
        s.poke("in", v);
        s.evalComb();
        EXPECT_EQ(s.peek("o"), v);
    }
}

TEST(EvalPlanDataflow, ReducesHotStepsOnBoom)
{
    Design d = cores::buildSoc(cores::SocConfig::boom1w());
    rtl::EvalPlanOptions off;
    off.dataflow = false;
    rtl::EvalPlan base = rtl::buildEvalPlan(d, off);
    rtl::EvalPlan strong = rtl::buildEvalPlan(d);
    EXPECT_LT(strong.hotProgram.size(), base.hotProgram.size());
    EXPECT_GT(strong.stats.dfFolded + strong.stats.dfAliased +
                  strong.stats.dfMuxPruned,
              0u);
}

} // namespace
} // namespace strober
