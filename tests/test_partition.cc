/**
 * @file
 * Unit tests for the EvalPlan partitioner (rtl::partitionEvalPlan) —
 * the structural guarantees the compiled-parallel backend's
 * correctness argument rests on:
 *   - every hot step is assigned to exactly one chunk, chunks are
 *     level-major and their step lists ascending;
 *   - no data dependency crosses chunks within one level (so the
 *     chunks of a level can run concurrently in any order);
 *   - the dirty-propagation tables are closed: every cross-chunk
 *     consumer of a slot (and every chunk async-reading a memory) is
 *     listed, so a changed value can never fail to re-evaluate its
 *     consumers;
 *   - per-level chunk sizes respect the greedy balance bound;
 *   - the partition is a deterministic pure function of its inputs.
 * Plus the worker-pool thread-count resolution order
 * (setSimThreads > $STROBER_SIM_THREADS > hardware default) and the
 * pool's exactly-once task execution.
 */

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cores/soc.h"
#include "rtl/ir.h"
#include "rtl/opt.h"
#include "sim/worker_pool.h"

#include "fuzz_designs.h"

namespace strober {
namespace {

using rtl::Design;
using rtl::EvalPartition;
using rtl::EvalPlan;
using rtl::EvalStep;
using rtl::Op;
using rtl::SlotId;

/** Visit the operand slots of @p s (mirrors the partitioner/simulator). */
template <typename Fn>
void
forEachOperand(const EvalStep &s, Fn fn)
{
    if (s.op == Op::MemRead) {
        fn(s.b);
        return;
    }
    unsigned arity = rtl::opArity(s.op);
    if (arity >= 1)
        fn(s.a);
    if (arity >= 2)
        fn(s.b);
    if (arity >= 3)
        fn(s.c);
}

/** Per slot: the hot step producing it, or UINT32_MAX for leaves. */
std::vector<uint32_t>
producerMap(const EvalPlan &plan)
{
    std::vector<uint32_t> producer(plan.numSlots, UINT32_MAX);
    for (uint32_t i = 0; i < plan.hotProgram.size(); ++i)
        producer[plan.hotProgram[i].dst] = i;
    return producer;
}

/** Assert every structural invariant of @p part over @p plan. */
void
expectPartitionInvariants(const Design &d, const EvalPlan &plan,
                          const EvalPartition &part, uint32_t clusters,
                          uint32_t minLevelSteps)
{
    const auto &hot = plan.hotProgram;
    if (hot.empty()) {
        EXPECT_TRUE(part.chunks.empty());
        return;
    }

    // -- Coverage: every hot step in exactly one chunk, consistent with
    //    stepChunk, lists ascending, chunk ids level-major.
    ASSERT_EQ(part.stepChunk.size(), hot.size());
    std::vector<uint32_t> seen(hot.size(), 0);
    for (uint32_t c = 0; c < part.chunks.size(); ++c) {
        const rtl::EvalChunk &chunk = part.chunks[c];
        EXPECT_FALSE(chunk.steps.empty()) << "chunk " << c;
        for (size_t k = 0; k < chunk.steps.size(); ++k) {
            uint32_t s = chunk.steps[k];
            ASSERT_LT(s, hot.size());
            ++seen[s];
            EXPECT_EQ(part.stepChunk[s], c);
            if (k > 0) {
                EXPECT_LT(chunk.steps[k - 1], s) << "chunk " << c;
            }
        }
        if (c > 0) {
            EXPECT_GE(chunk.level, part.chunks[c - 1].level);
        }
    }
    for (uint32_t s = 0; s < hot.size(); ++s)
        EXPECT_EQ(seen[s], 1u) << "step " << s;

    // -- levelBegin describes the level-major chunk ranges exactly.
    ASSERT_EQ(part.levelBegin.size(), part.numLevels() + 1);
    EXPECT_EQ(part.levelBegin.front(), 0u);
    EXPECT_EQ(part.levelBegin.back(), part.chunks.size());
    for (uint32_t lvl = 0; lvl < part.numLevels(); ++lvl) {
        EXPECT_LE(static_cast<size_t>(part.levelBegin[lvl + 1] -
                                      part.levelBegin[lvl]),
                  static_cast<size_t>(clusters))
            << "level " << lvl;
        for (uint32_t c = part.levelBegin[lvl];
             c < part.levelBegin[lvl + 1]; ++c)
            EXPECT_EQ(part.chunks[c].level, lvl);
    }

    // -- Grain: every level except the last carries >= minLevelSteps.
    for (uint32_t lvl = 0; lvl + 1 < part.numLevels(); ++lvl) {
        size_t steps = 0;
        for (uint32_t c = part.levelBegin[lvl];
             c < part.levelBegin[lvl + 1]; ++c)
            steps += part.chunks[c].steps.size();
        EXPECT_GE(steps, static_cast<size_t>(minLevelSteps))
            << "level " << lvl;
    }

    // -- Dependencies: a hot operand's producer is in the same chunk or
    //    a strictly earlier level; cross-chunk edges are in the dirty
    //    CSR (closure), as are all leaf-slot uses and async mem reads.
    std::vector<uint32_t> producer = producerMap(plan);
    ASSERT_EQ(part.slotChunksBegin.size(), plan.numSlots + 1);
    auto slotListed = [&](SlotId slot, uint32_t chunk) {
        for (uint32_t i = part.slotChunksBegin[slot];
             i < part.slotChunksBegin[slot + 1]; ++i) {
            if (part.slotChunks[i] == chunk)
                return true;
        }
        return false;
    };
    for (uint32_t t = 0; t < hot.size(); ++t) {
        uint32_t tc = part.stepChunk[t];
        forEachOperand(hot[t], [&](SlotId slot) {
            uint32_t p = producer[slot];
            if (p != UINT32_MAX && part.stepChunk[p] == tc)
                return; // in-chunk edge: ascending execution covers it
            if (p != UINT32_MAX) {
                EXPECT_LT(part.chunks[part.stepChunk[p]].level,
                          part.chunks[tc].level)
                    << "intra-level cross-chunk edge: step " << p
                    << " -> " << t;
            }
            EXPECT_TRUE(slotListed(slot, tc))
                << "dirty CSR misses slot " << slot << " -> chunk " << tc;
        });
        if (hot[t].op == Op::MemRead) {
            ASSERT_LT(hot[t].a, part.memChunks.size());
            const auto &mc = part.memChunks[hot[t].a];
            EXPECT_NE(std::find(mc.begin(), mc.end(), tc), mc.end())
                << "memChunks misses mem " << hot[t].a << " -> chunk "
                << tc;
        }
    }
    ASSERT_EQ(part.memChunks.size(), d.mems().size());

    // -- The CSR lists are deduplicated (codegen relies on this to
    //    emit each mask bit once).
    for (SlotId slot = 0; slot < plan.numSlots; ++slot) {
        std::set<uint32_t> uniq;
        for (uint32_t i = part.slotChunksBegin[slot];
             i < part.slotChunksBegin[slot + 1]; ++i)
            EXPECT_TRUE(uniq.insert(part.slotChunks[i]).second)
                << "duplicate consumer chunk for slot " << slot;
    }

    // -- Balance: greedy largest-component-first into the lightest bin
    //    guarantees max <= ceil(total/bins) + largest component, where
    //    components are the intra-level dependency closures.
    for (uint32_t lvl = 0; lvl < part.numLevels(); ++lvl) {
        uint32_t bins = part.levelBegin[lvl + 1] - part.levelBegin[lvl];
        if (bins < 2)
            continue;
        size_t total = 0, maxChunk = 0;
        for (uint32_t c = part.levelBegin[lvl];
             c < part.levelBegin[lvl + 1]; ++c) {
            total += part.chunks[c].steps.size();
            maxChunk = std::max(maxChunk, part.chunks[c].steps.size());
        }
        // Independent union-find over the level's dependency edges.
        std::map<uint32_t, uint32_t> root; // step -> component root
        std::vector<uint32_t> levelSteps;
        for (uint32_t c = part.levelBegin[lvl];
             c < part.levelBegin[lvl + 1]; ++c)
            for (uint32_t s : part.chunks[c].steps)
                levelSteps.push_back(s);
        for (uint32_t s : levelSteps)
            root[s] = s;
        std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
            while (root[x] != x)
                x = root[x] = root[root[x]];
            return x;
        };
        for (uint32_t t : levelSteps) {
            forEachOperand(hot[t], [&](SlotId slot) {
                uint32_t p = producer[slot];
                if (p != UINT32_MAX && root.count(p) != 0)
                    root[find(t)] = find(p);
            });
        }
        std::map<uint32_t, size_t> compSize;
        for (uint32_t s : levelSteps)
            ++compSize[find(s)];
        size_t maxComp = 0;
        for (const auto &[r, n] : compSize)
            maxComp = std::max(maxComp, n);
        EXPECT_LE(maxChunk, (total + bins - 1) / bins + maxComp)
            << "level " << lvl << " unbalanced";
    }
}

class Partition : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Partition, InvariantsHoldOnFuzzDesigns)
{
    const uint64_t seed = GetParam();
    Design d = testing::randomDesign(seed);
    EvalPlan plan = rtl::buildEvalPlan(d);

    // Default parameters (what the backend uses)...
    EvalPartition def = rtl::partitionEvalPlan(plan, d.mems().size());
    expectPartitionInvariants(d, plan, def, rtl::kDefaultPartitionClusters,
                              rtl::kDefaultPartitionGrain);

    // ...and a tiny grain / few clusters, forcing the multi-level,
    // multi-chunk shape even on these small designs.
    EvalPartition fine = rtl::partitionEvalPlan(plan, d.mems().size(),
                                                /*clusters=*/3,
                                                /*minLevelSteps=*/4);
    expectPartitionInvariants(d, plan, fine, 3, 4);
    if (plan.hotProgram.size() >= 8) {
        EXPECT_GT(fine.numLevels(), 1u) << "grain 4 should split levels";
    }
}

TEST_P(Partition, DeterministicAcrossCalls)
{
    const uint64_t seed = GetParam();
    Design d = testing::randomDesign(seed);
    EvalPlan plan = rtl::buildEvalPlan(d);
    EvalPartition a = rtl::partitionEvalPlan(plan, d.mems().size(), 3, 4);
    EvalPartition b = rtl::partitionEvalPlan(plan, d.mems().size(), 3, 4);
    ASSERT_EQ(a.chunks.size(), b.chunks.size());
    for (size_t c = 0; c < a.chunks.size(); ++c) {
        EXPECT_EQ(a.chunks[c].level, b.chunks[c].level);
        EXPECT_EQ(a.chunks[c].steps, b.chunks[c].steps);
    }
    EXPECT_EQ(a.levelBegin, b.levelBegin);
    EXPECT_EQ(a.stepChunk, b.stepChunk);
    EXPECT_EQ(a.slotChunksBegin, b.slotChunksBegin);
    EXPECT_EQ(a.slotChunks, b.slotChunks);
    EXPECT_EQ(a.memChunks, b.memChunks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Partition,
                         ::testing::Range<uint64_t>(1, 51));

TEST(Partition, EmptyPlanYieldsEmptyPartition)
{
    EvalPlan plan;
    EvalPartition part = rtl::partitionEvalPlan(plan, 0);
    EXPECT_EQ(part.chunks.size(), 0u);
    EXPECT_EQ(part.numLevels(), 0u);
    EXPECT_EQ(part.dirtyWords(), 0u);
}

// --- Static race validator (rtl::verifyPartition) -----------------------
//
// The real partitioner must prove out clean; each mutation below
// manufactures exactly one class of violation and must be rejected
// under its dedicated rule id.

/** A fuzz design whose fine-grained partition has a level with two or
 *  more chunks and an in-chunk dependency edge — the raw material the
 *  mutation tests below need. Asserts one exists among the seeds. */
struct MutationFixture
{
    Design d;
    EvalPlan plan;
    EvalPartition part;

    MutationFixture() : d(testing::randomDesign(1))
    {
        for (uint64_t seed = 1; seed <= 50; ++seed) {
            d = testing::randomDesign(seed);
            plan = rtl::buildEvalPlan(d);
            part = rtl::partitionEvalPlan(plan, d.mems().size(),
                                          /*clusters=*/3,
                                          /*minLevelSteps=*/4);
            if (findSplittableStep(nullptr, nullptr))
                return;
        }
        ADD_FAILURE() << "no fuzz seed yields a splittable partition";
    }

    /** Find a hot step movable to a sibling chunk of its own level such
     *  that an in-chunk dependency becomes a same-level cross-chunk
     *  edge. Writes the step and the destination chunk when found. */
    bool
    findSplittableStep(uint32_t *stepOut, uint32_t *destChunkOut) const
    {
        std::vector<uint32_t> producer = producerMap(plan);
        for (uint32_t i = 0; i < plan.hotProgram.size(); ++i) {
            uint32_t myChunk = part.stepChunk[i];
            if (part.chunks[myChunk].steps.size() < 2)
                continue; // moving i would leave an empty chunk
            uint32_t lvl = part.chunks[myChunk].level;
            if (part.levelBegin[lvl + 1] - part.levelBegin[lvl] < 2)
                continue; // no sibling chunk to move to
            bool inChunkDep = false;
            forEachOperand(plan.hotProgram[i], [&](SlotId slot) {
                uint32_t p = producer[slot];
                if (p != UINT32_MAX && p != i &&
                    part.stepChunk[p] == myChunk)
                    inChunkDep = true;
            });
            if (!inChunkDep)
                continue;
            for (uint32_t c = part.levelBegin[lvl];
                 c < part.levelBegin[lvl + 1]; ++c) {
                if (c == myChunk)
                    continue;
                if (stepOut)
                    *stepOut = i;
                if (destChunkOut)
                    *destChunkOut = c;
                return true;
            }
        }
        return false;
    }
};

TEST(VerifyPartition, RealPartitionsProveClean)
{
    MutationFixture fx;
    lint::Diagnostics diags =
        rtl::verifyPartition(fx.plan, fx.part, fx.d.mems().size());
    EXPECT_EQ(diags.errorCount(), 0u) << diags.str();

    // Default-grain partitions of every fuzz seed must also prove out.
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        Design d = testing::randomDesign(seed);
        EvalPlan plan = rtl::buildEvalPlan(d);
        EvalPartition part =
            rtl::partitionEvalPlan(plan, d.mems().size());
        lint::Diagnostics dg =
            rtl::verifyPartition(plan, part, d.mems().size());
        EXPECT_EQ(dg.errorCount(), 0u) << "seed " << seed << "\n"
                                       << dg.str();
    }
}

TEST(VerifyPartition, DuplicateStepRejected)
{
    MutationFixture fx;
    // List one hot step in a second chunk as well.
    uint32_t victim = fx.part.chunks[0].steps[0];
    ASSERT_GE(fx.part.chunks.size(), 2u);
    fx.part.chunks[1].steps.push_back(victim);
    std::sort(fx.part.chunks[1].steps.begin(),
              fx.part.chunks[1].steps.end());
    lint::Diagnostics diags =
        rtl::verifyPartition(fx.plan, fx.part, fx.d.mems().size());
    EXPECT_TRUE(diags.hasRule("partition-coverage")) << diags.str();
}

TEST(VerifyPartition, MissingStepRejected)
{
    MutationFixture fx;
    uint32_t c = 0;
    while (fx.part.chunks[c].steps.size() < 2)
        ++c;
    fx.part.chunks[c].steps.pop_back();
    lint::Diagnostics diags =
        rtl::verifyPartition(fx.plan, fx.part, fx.d.mems().size());
    EXPECT_TRUE(diags.hasRule("partition-coverage")) << diags.str();
}

TEST(VerifyPartition, SplitSameLevelDependencyRejected)
{
    MutationFixture fx;
    uint32_t step = 0, dest = 0;
    ASSERT_TRUE(fx.findSplittableStep(&step, &dest));
    uint32_t src = fx.part.stepChunk[step];
    auto &steps = fx.part.chunks[src].steps;
    steps.erase(std::find(steps.begin(), steps.end(), step));
    auto &destSteps = fx.part.chunks[dest].steps;
    destSteps.insert(std::upper_bound(destSteps.begin(), destSteps.end(),
                                      step),
                     step);
    fx.part.stepChunk[step] = dest;
    lint::Diagnostics diags =
        rtl::verifyPartition(fx.plan, fx.part, fx.d.mems().size());
    EXPECT_TRUE(diags.hasRule("partition-level-race")) << diags.str();
}

TEST(VerifyPartition, MissingDirtyClosureEdgeRejected)
{
    MutationFixture fx;
    // Remove the first CSR consumer entry of some slot that has one.
    SlotId slot = 0;
    while (slot < fx.plan.numSlots &&
           fx.part.slotChunksBegin[slot] ==
               fx.part.slotChunksBegin[slot + 1])
        ++slot;
    ASSERT_LT(slot, fx.plan.numSlots) << "no slot has consumers";
    fx.part.slotChunks.erase(fx.part.slotChunks.begin() +
                             fx.part.slotChunksBegin[slot]);
    for (SlotId s = slot + 1; s <= fx.plan.numSlots; ++s)
        --fx.part.slotChunksBegin[s];
    lint::Diagnostics diags =
        rtl::verifyPartition(fx.plan, fx.part, fx.d.mems().size());
    EXPECT_TRUE(diags.hasRule("partition-dirty-closure")) << diags.str();
}

TEST(VerifyPartition, ClearedMemChunksRejected)
{
    // rocket's caches give the plan hot async memory reads.
    Design d = cores::buildSoc(cores::SocConfig::rocket());
    EvalPlan plan = rtl::buildEvalPlan(d);
    EvalPartition part = rtl::partitionEvalPlan(plan, d.mems().size());
    ASSERT_EQ(rtl::verifyPartition(plan, part, d.mems().size())
                  .errorCount(),
              0u);
    size_t mem = 0;
    while (mem < part.memChunks.size() && part.memChunks[mem].empty())
        ++mem;
    ASSERT_LT(mem, part.memChunks.size()) << "no hot async mem read";
    part.memChunks[mem].clear();
    lint::Diagnostics diags =
        rtl::verifyPartition(plan, part, d.mems().size());
    EXPECT_TRUE(diags.hasRule("partition-dirty-closure")) << diags.str();
}

TEST(VerifyPartition, DoubleWriterRejected)
{
    MutationFixture fx;
    // Retarget a store so two chunks of one level write the same slot.
    uint32_t first = UINT32_MAX, second = UINT32_MAX;
    for (uint32_t i = 0;
         i < fx.plan.hotProgram.size() && second == UINT32_MAX; ++i) {
        for (uint32_t j = i + 1; j < fx.plan.hotProgram.size(); ++j) {
            uint32_t ci = fx.part.stepChunk[i];
            uint32_t cj = fx.part.stepChunk[j];
            if (ci != cj &&
                fx.part.chunks[ci].level == fx.part.chunks[cj].level) {
                first = i;
                second = j;
                break;
            }
        }
    }
    ASSERT_NE(second, UINT32_MAX) << "no same-level chunk pair";
    fx.plan.hotProgram[second].dst = fx.plan.hotProgram[first].dst;
    lint::Diagnostics diags =
        rtl::verifyPartition(fx.plan, fx.part, fx.d.mems().size());
    EXPECT_TRUE(diags.hasRule("partition-double-writer")) << diags.str();
}

TEST(VerifyPartition, BrokenGeometryRejectedEarly)
{
    MutationFixture fx;
    fx.part.stepChunk.pop_back();
    lint::Diagnostics diags =
        rtl::verifyPartition(fx.plan, fx.part, fx.d.mems().size());
    EXPECT_TRUE(diags.hasRule("partition-geometry")) << diags.str();
    // Geometry failures abort the remaining checks: only that rule.
    for (const lint::Diagnostic &dg : diags.all())
        EXPECT_EQ(dg.rule, "partition-geometry");
}

TEST(VerifyPartition, Boom2wRealPartitionProvesClean)
{
    Design d = cores::buildSoc(cores::SocConfig::boom2w());
    EvalPlan plan = rtl::buildEvalPlan(d);
    EvalPartition part = rtl::partitionEvalPlan(plan, d.mems().size());
    lint::Diagnostics diags =
        rtl::verifyPartition(plan, part, d.mems().size());
    EXPECT_EQ(diags.errorCount(), 0u) << diags.str();
    EXPECT_GT(part.chunks.size(), 1u);
}

// --- Thread-count resolution and the worker pool -----------------------

/** Scoped env var (nullptr = unset); restores the previous value on
 *  exit so a failing assertion can't leak state into later tests and
 *  an outer thread-matrix value survives the scope. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : var(name)
    {
        const char *old = ::getenv(name);
        hadValue = old != nullptr;
        if (hadValue)
            saved = old;
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvGuard()
    {
        if (hadValue)
            ::setenv(var, saved.c_str(), 1);
        else
            ::unsetenv(var);
    }

  private:
    const char *var;
    std::string saved;
    bool hadValue = false;
};

TEST(WorkerPool, ThreadCountResolutionOrder)
{
    sim::setSimThreads(0);
    {
        EnvGuard env("STROBER_SIM_THREADS", "5");
        EXPECT_EQ(sim::simThreads(), 5u); // env wins over the default
        sim::setSimThreads(3);
        EXPECT_EQ(sim::simThreads(), 3u); // explicit override wins
        sim::setSimThreads(0);
        EXPECT_EQ(sim::simThreads(), 5u); // cleared: env again
    }
    EXPECT_GE(sim::simThreads(), 1u); // default: always at least one
    sim::setSimThreads(0);
}

TEST(WorkerPool, NegativeEnvValuesFallBackToDefault)
{
    sim::setSimThreads(0);
    {
        // Baselines with the vars unset (an outer test matrix may have
        // them exported); strtoul() would wrap "-1" to ULONG_MAX
        // (clamped to 256 threads / a saturated grain), but negative
        // input must be rejected like any other junk.
        EnvGuard noThreads("STROBER_SIM_THREADS", nullptr);
        unsigned defaultThreads = sim::simThreads();
        EnvGuard env("STROBER_SIM_THREADS", "-1");
        EXPECT_EQ(sim::simThreads(), defaultThreads);
    }
    {
        EnvGuard noGrain("STROBER_SIM_PARALLEL_GRAIN", nullptr);
        uint32_t defaultGrain = sim::parallelDispatchGrain();
        EnvGuard env("STROBER_SIM_PARALLEL_GRAIN", "-1");
        EXPECT_EQ(sim::parallelDispatchGrain(), defaultGrain);
    }
}

TEST(WorkerPool, GrainEnvOverride)
{
    EnvGuard noGrain("STROBER_SIM_PARALLEL_GRAIN", nullptr);
    EXPECT_GT(sim::parallelDispatchGrain(), 0u);
    // A pool oversubscribing the host cores saturates the grain (inline
    // evaluation — no parallel capacity to exploit)...
    unsigned hw = std::thread::hardware_concurrency();
    EXPECT_EQ(sim::parallelDispatchGrain((hw == 0 ? 1 : hw) + 1),
              0xffffffffu);
    // ...but the env override forces dispatch regardless.
    EnvGuard env("STROBER_SIM_PARALLEL_GRAIN", "0");
    EXPECT_EQ(sim::parallelDispatchGrain(), 0u);
    EXPECT_EQ(sim::parallelDispatchGrain(1024), 0u);
}

TEST(WorkerPool, RunsEveryTaskExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        sim::WorkerPool pool(threads);
        EXPECT_EQ(pool.threads(), threads);
        for (uint32_t count : {0u, 1u, 7u, 256u}) {
            std::vector<std::atomic<uint32_t>> hits(count);
            for (auto &h : hits)
                h.store(0);
            pool.run(count, [&](uint32_t i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (uint32_t i = 0; i < count; ++i)
                EXPECT_EQ(hits[i].load(), 1u)
                    << "threads " << threads << " count " << count
                    << " task " << i;
        }
        // Back-to-back batches must not leak work across generations.
        std::atomic<uint64_t> sum{0};
        for (int round = 0; round < 50; ++round)
            pool.run(17, [&](uint32_t i) {
                sum.fetch_add(i + 1, std::memory_order_relaxed);
            });
        EXPECT_EQ(sum.load(), 50u * (17u * 18u / 2u));
    }
}

// Regression stress for the stale-ticket cross-batch race: a worker
// preempted between its ticket load and taskCount load in a tiny batch
// must not be able to claim an index of the next, larger batch (which
// would double-execute the index and over-bump the completion counter,
// hanging run()). Alternating 1-task and wide batches maximizes the
// window; exactly-once is checked per round so any leak is caught in
// the round it happens.
TEST(WorkerPool, CrossBatchAlternatingCountsExactlyOnce)
{
    sim::WorkerPool pool(4);
    constexpr uint32_t kWide = 192;
    std::vector<std::atomic<uint32_t>> hits(kWide);
    for (int round = 0; round < 400; ++round) {
        uint32_t count = (round & 1) ? kWide : 1u;
        for (uint32_t i = 0; i < count; ++i)
            hits[i].store(0, std::memory_order_relaxed);
        pool.run(count, [&](uint32_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (uint32_t i = 0; i < count; ++i)
            ASSERT_EQ(hits[i].load(), 1u)
                << "round " << round << " count " << count << " task "
                << i;
    }
}

} // namespace
} // namespace strober
