/**
 * @file
 * Tests for the LPDDR2 DRAM model and the counter-based power calculator
 * (paper Section IV-D).
 */

#include <gtest/gtest.h>

#include "dram/dram_model.h"

namespace strober {
namespace dram {
namespace {

TEST(DramModel, BankInterleavedMapping)
{
    DramModel m;
    // Adjacent bursts hit different banks.
    EXPECT_EQ(m.bankOf(0), 0u);
    EXPECT_EQ(m.bankOf(32), 1u);
    EXPECT_EQ(m.bankOf(32 * 7), 7u);
    EXPECT_EQ(m.bankOf(32 * 8), 0u);
    // Same bank, next row stride = burst * banks * rowsPerBank... row
    // advances once the full bank stride wraps.
    EXPECT_EQ(m.rowOf(0), 0u);
    // A row holds rowBytes of a bank's interleaved space: 64 bursts.
    EXPECT_EQ(m.rowOf(32ull * 8 * 63), 0u);
    EXPECT_EQ(m.rowOf(32ull * 8 * 64), 1u);
}

TEST(DramModel, OpenPagePolicyLatency)
{
    DramConfig cfg;
    cfg.baseLatencyCycles = 100;
    cfg.rowMissExtraCycles = 40;
    DramModel m(cfg);

    // First touch: activation (miss).
    EXPECT_EQ(m.access(0, false), 140u);
    // Same row, same bank: open-page hit.
    EXPECT_EQ(m.access(4, false), 100u);
    EXPECT_EQ(m.counters().activations, 1u);
    EXPECT_EQ(m.counters().rowHits, 1u);
    // Different row, same bank: precharge + activate again.
    uint64_t nextRow = 32ull * 8 * 64;
    EXPECT_EQ(m.access(nextRow, false), 140u);
    EXPECT_EQ(m.counters().activations, 2u);
    // Other bank keeps its own open row.
    EXPECT_EQ(m.access(32, true), 140u);
    EXPECT_EQ(m.access(32 + 8, true), 100u);
    EXPECT_EQ(m.counters().reads, 3u);
    EXPECT_EQ(m.counters().writes, 2u);
}

TEST(DramModel, SequentialStreamMostlyHits)
{
    DramModel m;
    for (uint64_t a = 0; a < 32 * 1024; a += 32)
        m.access(a, false);
    const DramCounters &c = m.counters();
    EXPECT_EQ(c.reads, 1024u);
    // 1024 bursts = 128 per bank = 2 rows per bank (64 bursts/row).
    EXPECT_EQ(c.activations, 16u);
    EXPECT_EQ(c.rowHits, 1024u - 16u);
}

TEST(DramModel, RandomStreamMostlyMisses)
{
    DramModel m;
    uint64_t x = 12345;
    unsigned hits = 0;
    for (int i = 0; i < 4096; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        m.access(x % (1ull << 28), false);
    }
    hits = static_cast<unsigned>(m.counters().rowHits);
    // 16K rows per bank: random rows virtually never hit.
    EXPECT_LT(hits, 64u);
}

TEST(DramPower, IdleIsBackgroundPlusRefresh)
{
    DramCounters idle;
    DramPowerBreakdown p = dramPower(idle, 1'000'000, 1e9);
    EXPECT_GT(p.background, 0.0);
    EXPECT_GT(p.refresh, 0.0);
    EXPECT_DOUBLE_EQ(p.activate, 0.0);
    EXPECT_DOUBLE_EQ(p.read, 0.0);
    EXPECT_DOUBLE_EQ(p.write, 0.0);
    // LPDDR2 background should be O(10 mW).
    EXPECT_LT(p.total(), 0.05);
}

TEST(DramPower, ScalesWithTraffic)
{
    DramCounters light, heavy;
    light.reads = 1000;
    light.activations = 100;
    heavy.reads = 100000;
    heavy.writes = 50000;
    heavy.activations = 20000;
    uint64_t window = 10'000'000;
    DramPowerBreakdown lp = dramPower(light, window, 1e9);
    DramPowerBreakdown hp = dramPower(heavy, window, 1e9);
    EXPECT_GT(hp.read, lp.read);
    EXPECT_GT(hp.activate, lp.activate);
    EXPECT_GT(hp.total(), lp.total());
    EXPECT_GT(hp.write, 0.0);
    // Saturated bus cannot exceed the burst-power ceiling.
    DramCounters flood;
    flood.reads = UINT64_MAX / 2;
    DramPowerBreakdown fp = dramPower(flood, window, 1e9);
    DramPowerParams params;
    EXPECT_LE(fp.read,
              params.vdd2 * (params.idd4r2 - params.idd3n2) + 1e-12);
}

TEST(DramPower, PowerPerAccessConstantAcrossWindow)
{
    // Average power halves when the same traffic spreads over twice the
    // time (energy per operation is window-independent).
    DramCounters c;
    c.reads = 10000;
    c.activations = 1000;
    DramPowerBreakdown p1 = dramPower(c, 1'000'000, 1e9);
    DramPowerBreakdown p2 = dramPower(c, 2'000'000, 1e9);
    EXPECT_NEAR(p2.read, p1.read / 2, 1e-12);
    EXPECT_NEAR(p2.activate, p1.activate / 2, 1e-12);
    EXPECT_DOUBLE_EQ(p2.background, p1.background);
}

TEST(DramModelDeath, BadConfig)
{
    DramConfig cfg;
    cfg.banks = 6;
    EXPECT_EXIT(DramModel m(cfg), ::testing::ExitedWithCode(1),
                "powers of two");
    DramCounters c;
    EXPECT_EXIT(dramPower(c, 0, 1e9), ::testing::ExitedWithCode(1),
                "empty window");
}

} // namespace
} // namespace dram
} // namespace strober
