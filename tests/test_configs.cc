/**
 * @file
 * Generator-parameterization tests: the paper's cores come from "highly
 * parameterized generators" (Section IV-A), so the SoC builders must
 * produce working designs across the whole configuration space, not
 * just the three Table-II points — smaller caches, tiny ROBs, minimal
 * issue windows, few physical registers.
 */

#include <gtest/gtest.h>

#include "core/harness.h"
#include "cores/cache.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "isa/assembler.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"

namespace strober {
namespace cores {
namespace {

const char *kProgram = R"(
        li   sp, 0x8000
        li   a0, 0
        li   t0, 0
        li   t1, 40
    loop:
        slli t2, t0, 2
        add  t3, sp, t2
        sw   t0, 0(t3)
        lw   t4, 0(t3)
        mul  t5, t4, t4
        add  a0, a0, t5
        addi t0, t0, 1
        bne  t0, t1, loop
        li   t0, 0x40000000
        sw   a0, 0(t0)
    spin:
        j spin
)";

uint32_t
runChecked(const SocConfig &cfg)
{
    rtl::Design soc = buildSoc(cfg);
    isa::Program p = isa::assemble(kProgram);
    SocDriver::Config dcfg;
    dcfg.checkCommits = true;
    SocDriver driver(soc, p, dcfg);
    core::RtlHarness harness(soc);
    core::runLoop(harness, driver, 2'000'000);
    EXPECT_TRUE(driver.done()) << cfg.name;
    return driver.exitCode();
}

TEST(Configs, SmallCachesStillCorrect)
{
    SocConfig cfg = SocConfig::rocket();
    cfg.name = "rocket_small";
    cfg.icacheBytes = 512;
    cfg.dcacheBytes = 256; // tiny: constant thrashing
    EXPECT_EQ(runChecked(cfg), 20540u); // sum of squares 0..39
}

TEST(Configs, MinimalOooResources)
{
    SocConfig cfg = SocConfig::boom1w();
    cfg.name = "boom_min";
    cfg.issueSlots = 4;
    cfg.robSize = 8;
    cfg.physRegs = 40;
    cfg.storeQueue = 2;
    cfg.icacheBytes = 1024;
    cfg.dcacheBytes = 1024;
    EXPECT_EQ(runChecked(cfg), 20540u);
}

TEST(Configs, WideOooWithBigWindow)
{
    SocConfig cfg = SocConfig::boom2w();
    cfg.name = "boom_big";
    cfg.issueSlots = 24;
    cfg.robSize = 48;
    cfg.physRegs = 96;
    cfg.storeQueue = 8;
    EXPECT_EQ(runChecked(cfg), 20540u);
}

TEST(Configs, ResourceSizeChangesCycleCount)
{
    // Smaller structures must cost performance, not correctness.
    isa::Program p = isa::assemble(kProgram);
    auto cyclesOf = [&](const SocConfig &cfg) {
        rtl::Design soc = buildSoc(cfg);
        SocDriver driver(soc, p);
        core::RtlHarness harness(soc);
        core::runLoop(harness, driver, 2'000'000);
        EXPECT_TRUE(driver.done());
        return harness.cycles();
    };
    SocConfig tiny = SocConfig::boom1w();
    tiny.issueSlots = 4;
    tiny.robSize = 8;
    tiny.physRegs = 40;
    uint64_t small = cyclesOf(tiny);
    uint64_t normal = cyclesOf(SocConfig::boom1w());
    EXPECT_LE(normal, small);
}


TEST(Configs, TwoWayCacheAvoidsConflictThrash)
{
    // Two addresses that collide in a direct-mapped cache alternate;
    // the 2-way cache must hit steadily while the DM cache thrashes.
    const char *kPingPong = R"(
            li   s0, 0x1000
            li   s1, 0x3000      # conflicts in a 8 KiB DM cache
            li   t0, 200
            li   a0, 0
        loop:
            lw   t1, 0(s0)
            lw   t2, 0(s1)
            add  a0, a0, t1
            add  a0, a0, t2
            addi t0, t0, -1
            bnez t0, loop
            li   t0, 0x40000000
            sw   a0, 0(t0)
        spin:
            j spin
    )";
    isa::Program p = isa::assemble(kPingPong);
    auto cyclesOf = [&](unsigned ways) {
        SocConfig cfg = SocConfig::rocket();
        cfg.name = "rocket_w" + std::to_string(ways);
        cfg.icacheBytes = 8 * 1024;
        cfg.dcacheBytes = 8 * 1024;
        cfg.cacheWays = ways;
        rtl::Design soc = buildSoc(cfg);
        SocDriver::Config dcfg;
        dcfg.checkCommits = true;
        SocDriver driver(soc, p, dcfg);
        core::RtlHarness harness(soc);
        core::runLoop(harness, driver, 2'000'000);
        EXPECT_TRUE(driver.done());
        return harness.cycles();
    };
    uint64_t dm = cyclesOf(1);
    uint64_t assoc = cyclesOf(2);
    // DM: both loads miss every iteration (~280 cycles each); 2-way: both
    // lines coexist, so the loop runs at cache speed.
    EXPECT_LT(assoc * 5, dm);
}

TEST(Configs, TwoWayWholeSocLockstep)
{
    SocConfig cfg = SocConfig::boom2w();
    cfg.name = "boom2_2way";
    cfg.cacheWays = 2;
    EXPECT_EQ(runChecked(cfg), 20540u);
}


TEST(Configs, HpmCountersTrackCacheMisses)
{
    // hpmcounter3/4 expose I$/D$ miss counts (the paper correlates
    // performance counters with power, Section VI-B / Figure 10).
    const char *kMissy = R"(
            csrr s0, hpmcounter4    # dmiss before
            li   t0, 0x1000
            li   t1, 64
        loop:
            lw   t2, 0(t0)
            addi t0, t0, 512        # new line (and mostly new set) each time
            addi t1, t1, -1
            bnez t1, loop
            csrr s1, hpmcounter4    # dmiss after
            sub  a0, s1, s0
            csrr s2, hpmcounter3    # some I$ misses happened at startup
            li   t0, 0x40000000
            sw   a0, 0(t0)
        spin:
            j spin
    )";
    for (auto cfg : {SocConfig::rocket(), SocConfig::boom1w()}) {
        rtl::Design soc = buildSoc(cfg);
        isa::Program p = isa::assemble(kMissy);
        SocDriver::Config dcfg;
        dcfg.checkCommits = true; // CSR values sync into the ISS
        SocDriver driver(soc, p, dcfg);
        core::RtlHarness harness(soc);
        core::runLoop(harness, driver, 2'000'000);
        ASSERT_TRUE(driver.done()) << cfg.name;
        // 64 loads with 512-byte stride: virtually all miss.
        EXPECT_GE(driver.exitCode(), 60u) << cfg.name;
        EXPECT_LE(driver.exitCode(), 70u) << cfg.name;
    }
}

class CacheSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CacheSizeSweep, CacheWorksAtEverySize)
{
    using rtl::Builder;
    using rtl::Signal;
    Builder b("tb");
    CacheInputs in;
    in.reqValid = b.input("req_valid", 1);
    in.reqAddr = b.input("req_addr", 32);
    in.reqWrite = b.input("req_write", 1);
    in.reqWdata = b.input("req_wdata", 32);
    in.reqWstrb = b.input("req_wstrb", 4);
    in.memReqReady = b.input("mem_ready", 1);
    in.memRespValid = b.input("mem_resp_valid", 1);
    in.memRespData = b.input("mem_resp_data", 64);
    CacheIO io = buildCache(b, "dut", GetParam(), in);
    b.output("resp_valid", io.respValid);
    b.output("resp_data", io.respData);
    b.output("mem_req_valid", io.memReqValid);
    b.output("mem_req_addr", io.memReqAddr);
    b.output("mem_req_write", io.memReqWrite);
    b.output("mem_req_wdata", io.memReqWdata);
    rtl::Design d = b.finish();
    sim::Simulator s(d);

    // Reference memory model; write-then-readback over a footprint 4x
    // the cache so every size sees hits, misses and writebacks.
    std::vector<uint8_t> mem(GetParam() * 4, 0);
    int respIn = -1;
    uint64_t respData = 0;
    auto service = [&]() {
        s.poke("mem_ready", respIn < 0);
        s.poke("mem_resp_valid", 0);
        if (respIn > 0) {
            --respIn;
        } else if (respIn == 0) {
            s.poke("mem_resp_valid", 1);
            s.poke("mem_resp_data", respData);
            respIn = -1;
            return;
        }
        if (respIn < 0 && s.peek("mem_req_valid")) {
            uint32_t addr = static_cast<uint32_t>(s.peek("mem_req_addr"));
            if (s.peek("mem_req_write")) {
                uint64_t w = s.peek("mem_req_wdata");
                for (int i = 0; i < 8; ++i)
                    mem[(addr + i) % mem.size()] = uint8_t(w >> (8 * i));
            } else {
                respData = 0;
                for (int i = 0; i < 8; ++i)
                    respData |= uint64_t(mem[(addr + i) % mem.size()])
                                << (8 * i);
                respIn = 2;
            }
        }
    };
    auto access = [&](uint32_t addr, bool write, uint32_t wdata) {
        s.poke("req_valid", 1);
        s.poke("req_addr", addr);
        s.poke("req_write", write);
        s.poke("req_wdata", wdata);
        s.poke("req_wstrb", 0xf);
        for (int guard = 0; guard < 300; ++guard) {
            service();
            if (s.peek("resp_valid")) {
                uint32_t data =
                    static_cast<uint32_t>(s.peek("resp_data"));
                s.step();
                s.poke("req_valid", 0);
                return data;
            }
            s.step();
        }
        ADD_FAILURE() << "timeout size " << GetParam();
        return 0u;
    };

    stats::Rng rng(GetParam());
    const uint32_t footprint = GetParam() * 4;
    std::vector<uint32_t> shadow(footprint / 4, 0);
    for (int i = 0; i < 300; ++i) {
        uint32_t word = rng.nextBounded(footprint / 4);
        if (rng.nextBounded(2)) {
            uint32_t v = static_cast<uint32_t>(rng.next());
            shadow[word] = v;
            access(word * 4, true, v);
        } else {
            ASSERT_EQ(access(word * 4, false, 0), shadow[word])
                << "size " << GetParam() << " word " << word;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeSweep,
                         ::testing::Values(64u, 256u, 1024u, 4096u,
                                           16384u));

} // namespace
} // namespace cores
} // namespace strober
