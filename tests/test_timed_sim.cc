/**
 * @file
 * Tests for the event-driven delay-annotated gate simulator: functional
 * equivalence with the zero-delay evaluator, and glitch visibility
 * (timed toggle counts strictly dominate the zero-delay counts on
 * glitch-prone logic such as ripple-carry adders).
 */

#include <gtest/gtest.h>

#include "gate/gate_sim.h"
#include "gate/synthesis.h"
#include "gate/timed_sim.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "stats/rng.h"

namespace strober {
namespace gate {
namespace {

using rtl::Builder;
using rtl::Design;
using rtl::Signal;

Design
makeAdderChain()
{
    // Three chained ripple adders: classic carry-glitch generator.
    Builder b("chain");
    Signal a = b.input("a", 16);
    Signal x = b.input("x", 16);
    Signal y = b.input("y", 16);
    Signal s1 = a + x;
    Signal s2 = s1 + y;
    Signal s3 = s2 + a;
    b.output("sum", s3);
    b.output("cmp", ltu(s2, a));
    return b.finish();
}

Design
makeSeq()
{
    Builder b("seq");
    Signal in = b.input("in", 8);
    Signal wen = b.input("wen", 1);
    Signal acc = b.reg("acc", 16, 7);
    b.next(acc, acc + b.pad(in, 16));
    rtl::MemHandle m = b.mem("ram", 8, 16, false);
    Signal ptr = b.reg("ptr", 4, 0);
    b.next(ptr, ptr + b.lit(1, 4), wen);
    b.memWrite(m, ptr, in, wen);
    b.output("acc", acc);
    b.output("rd", b.memRead(m, ptr));
    rtl::MemHandle t = b.mem("tab", 16, 8, true);
    b.memWrite(t, acc.bits(2, 0), acc, wen);
    b.output("td", b.memReadSync(t, acc.bits(2, 0)));
    return b.finish();
}

TEST(TimedSim, FunctionallyIdenticalToZeroDelay)
{
    Design d = makeSeq();
    SynthesisResult synth = synthesize(d);
    GateSimulator fast(synth.netlist);
    TimedGateSimulator timed(synth.netlist);
    stats::Rng rng(21);
    for (int cycle = 0; cycle < 250; ++cycle) {
        uint64_t in = rng.nextBounded(256), wen = rng.nextBounded(2);
        fast.pokePort(0, in);
        fast.pokePort(1, wen);
        timed.pokePort(0, in);
        timed.pokePort(1, wen);
        for (size_t o = 0; o < synth.netlist.outputs().size(); ++o) {
            ASSERT_EQ(timed.peekPort(o), fast.peekPort(o))
                << "cycle " << cycle << " output " << o;
        }
        fast.step();
        timed.step();
    }
}

TEST(TimedSim, CombinationalLockstepWithRtl)
{
    Design d = makeAdderChain();
    SynthesisResult synth = synthesize(d);
    sim::Simulator rtlSim(d);
    TimedGateSimulator timed(synth.netlist);
    stats::Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        uint64_t a = rng.nextBounded(1 << 16);
        uint64_t x = rng.nextBounded(1 << 16);
        uint64_t y = rng.nextBounded(1 << 16);
        rtlSim.poke("a", a);
        rtlSim.poke("x", x);
        rtlSim.poke("y", y);
        timed.pokePort(0, a);
        timed.pokePort(1, x);
        timed.pokePort(2, y);
        ASSERT_EQ(timed.peekPort(0), rtlSim.peek("sum"));
        ASSERT_EQ(timed.peekPort(1), rtlSim.peek("cmp"));
    }
}

TEST(TimedSim, GlitchesIncreaseToggleCounts)
{
    Design d = makeAdderChain();
    SynthesisResult synth = synthesize(d);
    GateSimulator fast(synth.netlist);
    TimedGateSimulator timed(synth.netlist);
    stats::Rng rng(13);
    fast.clearActivity();
    timed.clearActivity();
    for (int i = 0; i < 300; ++i) {
        uint64_t a = rng.nextBounded(1 << 16);
        uint64_t x = rng.nextBounded(1 << 16);
        uint64_t y = rng.nextBounded(1 << 16);
        for (auto *net : {&a}) // keep operands varied
            (void)net;
        fast.pokePort(0, a);
        fast.pokePort(1, x);
        fast.pokePort(2, y);
        timed.pokePort(0, a);
        timed.pokePort(1, x);
        timed.pokePort(2, y);
        fast.peekPort(0);
        timed.peekPort(0);
        fast.step();
        timed.step();
    }
    uint64_t fastToggles = 0, timedToggles = 0;
    for (NetId id = 0; id < synth.netlist.numNodes(); ++id) {
        fastToggles += fast.toggleCounts()[id];
        timedToggles += timed.toggleCounts()[id];
        // Per net, timed can only see MORE transitions.
        ASSERT_GE(timed.toggleCounts()[id], fast.toggleCounts()[id])
            << "net " << id;
    }
    // Carry chains glitch: expect a measurable surplus.
    EXPECT_GT(timedToggles, fastToggles * 105 / 100);
    EXPECT_GT(timed.eventsProcessed(), 0u);
}

TEST(TimedSim, QuiescentInputsCauseNoActivity)
{
    Design d = makeAdderChain();
    SynthesisResult synth = synthesize(d);
    TimedGateSimulator timed(synth.netlist);
    timed.pokePort(0, 123);
    timed.pokePort(1, 456);
    timed.pokePort(2, 789);
    timed.step(3);
    timed.clearActivity();
    timed.step(50); // same inputs: pure combinational logic is silent
    uint64_t total = 0;
    for (uint64_t t : timed.toggleCounts())
        total += t;
    EXPECT_EQ(total, 0u);
}

} // namespace
} // namespace gate
} // namespace strober
