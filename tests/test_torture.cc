/**
 * @file
 * Random-program torture testing (after riscv-torture): generate random
 * but guaranteed-terminating RV32IM programs — dense dependency chains,
 * guarded loads/stores into a scratch arena, forward branches, mul/div,
 * calls — and run each on all three SoCs under full ISS commit lockstep.
 * Any pipeline, renaming, bypass, cache or memory-ordering bug shows up
 * as a commit divergence.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/harness.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "isa/assembler.h"
#include "stats/rng.h"

namespace strober {
namespace {

/** Build one random torture program from @p seed. */
std::string
tortureProgram(uint64_t seed)
{
    stats::Rng rng(seed);
    std::ostringstream os;

    // Registers x5..x15 are the random pool; x16 arena base, x17 loop
    // counter, x18 accumulated checksum, sp stack.
    os << "        li   sp, 0x20000\n";
    os << "        li   x16, 0x30000\n";
    os << "        li   x18, 0\n";
    for (int r = 5; r <= 15; ++r)
        os << "        li   x" << r << ", "
           << static_cast<int32_t>(rng.next()) << "\n";
    unsigned outer = 2 + static_cast<unsigned>(rng.nextBounded(3));
    os << "        li   x17, " << outer << "\n";
    os << "    outer_loop:\n";

    auto reg = [&]() { return 5 + rng.nextBounded(11); };
    int label = 0;

    unsigned segments = 20 + static_cast<unsigned>(rng.nextBounded(30));
    for (unsigned s = 0; s < segments; ++s) {
        switch (rng.nextBounded(12)) {
          case 0:
            os << "        add  x" << reg() << ", x" << reg() << ", x"
               << reg() << "\n";
            break;
          case 1:
            os << "        sub  x" << reg() << ", x" << reg() << ", x"
               << reg() << "\n";
            break;
          case 2:
            os << "        xor  x" << reg() << ", x" << reg() << ", x"
               << reg() << "\n";
            break;
          case 3:
            os << "        sll  x" << reg() << ", x" << reg() << ", x"
               << reg() << "\n";
            break;
          case 4:
            os << "        sra  x" << reg() << ", x" << reg() << ", x"
               << reg() << "\n";
            break;
          case 5:
            os << "        mul  x" << reg() << ", x" << reg() << ", x"
               << reg() << "\n";
            break;
          case 6:
            os << "        divu x" << reg() << ", x" << reg() << ", x"
               << reg() << "\n";
            break;
          case 7:
            os << "        rem  x" << reg() << ", x" << reg() << ", x"
               << reg() << "\n";
            break;
          case 8: {
            // Guarded store + load: mask an address into the arena.
            unsigned addr = reg(), data = reg(), dst = reg();
            os << "        andi x30, x" << addr << ", 1020\n";
            os << "        add  x30, x30, x16\n";
            os << "        sw   x" << data << ", 0(x30)\n";
            os << "        lw   x" << dst << ", 0(x30)\n";
            break;
          }
          case 9: {
            // Sub-word traffic.
            unsigned addr = reg(), data = reg(), dst = reg();
            os << "        andi x30, x" << addr << ", 1020\n";
            os << "        add  x30, x30, x16\n";
            os << "        sb   x" << data << ", 1(x30)\n";
            os << "        lbu  x" << dst << ", 1(x30)\n";
            os << "        lh   x" << reg() << ", 2(x30)\n";
            break;
          }
          case 10: {
            // Forward branch over a couple of instructions.
            unsigned a = reg(), b = reg();
            int l = label++;
            const char *ops[] = {"beq", "bne", "blt", "bgeu"};
            os << "        " << ops[rng.nextBounded(4)] << " x" << a
               << ", x" << b << ", skip" << l << "\n";
            os << "        addi x" << reg() << ", x" << reg() << ", "
               << static_cast<int>(rng.nextBounded(100)) << "\n";
            os << "        xori x" << reg() << ", x" << reg() << ", 85\n";
            os << "    skip" << l << ":\n";
            break;
          }
          default: {
            // Call a tiny leaf through jal/jalr.
            int l = label++;
            os << "        jal  x1, leaf" << l << "\n";
            os << "        j    after" << l << "\n";
            os << "    leaf" << l << ":\n";
            os << "        add  x" << reg() << ", x" << reg() << ", x"
               << reg() << "\n";
            os << "        jalr x0, 0(x1)\n";
            os << "    after" << l << ":\n";
            break;
          }
        }
    }

    os << "        addi x17, x17, -1\n";
    os << "        bnez x17, outer_loop\n";
    // Checksum the register pool.
    for (int r = 5; r <= 15; ++r)
        os << "        add  x18, x18, x" << r << "\n";
    os << "        li   t0, 0x40000000\n";
    os << "        sw   x18, 0(t0)\n";
    os << "    halt:\n        j halt\n";
    return os.str();
}

class Torture : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Torture, AllCoresLockstepWithIss)
{
    static rtl::Design rocket = cores::buildSoc(cores::SocConfig::rocket());
    static rtl::Design boom1 = cores::buildSoc(cores::SocConfig::boom1w());
    static rtl::Design boom2 = cores::buildSoc(cores::SocConfig::boom2w());

    isa::Program prog = isa::assemble(tortureProgram(GetParam()));
    uint32_t exits[3];
    const rtl::Design *designs[] = {&rocket, &boom1, &boom2};
    for (int c = 0; c < 3; ++c) {
        cores::SocDriver::Config cfg;
        cfg.checkCommits = true; // fatal on the first divergence
        cores::SocDriver driver(*designs[c], prog, cfg);
        core::RtlHarness harness(*designs[c]);
        core::runLoop(harness, driver, 3'000'000);
        ASSERT_TRUE(driver.done())
            << "seed " << GetParam() << " core " << c << " hung";
        exits[c] = driver.exitCode();
    }
    EXPECT_EQ(exits[0], exits[1]) << "seed " << GetParam();
    EXPECT_EQ(exits[0], exits[2]) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Torture,
                         ::testing::Range<uint64_t>(100, 124));

} // namespace
} // namespace strober
