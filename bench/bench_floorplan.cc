/**
 * @file
 * Figure 6: floorplan of the two-way BOOM-like SoC — block placement and
 * per-unit area from the placement substitute (the paper shows the IC
 * Compiler floorplan of BOOM-2w; we print the block table and an ASCII
 * rendering of the die).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gate/placement.h"
#include "gate/synthesis.h"

using namespace strober;

int
main()
{
    bench::banner("Figure 6: BOOM-2w floorplan");
    rtl::Design soc = cores::buildSoc(cores::SocConfig::boom2w());
    gate::SynthesisResult synth = gate::synthesize(soc);
    gate::Placement pl = gate::place(synth.netlist);

    std::printf("die: %.0f x %.0f um, total cell area %.0f um^2, "
                "%llu gates, %zu DFFs\n\n",
                pl.dieWidthUm, pl.dieHeightUm,
                synth.netlist.totalAreaUm2(),
                (unsigned long long)synth.netlist.liveGateCount(),
                synth.netlist.dffs().size());

    std::vector<const gate::BlockPlacement *> blocks;
    for (const gate::BlockPlacement &blk : pl.blocks) {
        if (blk.areaUm2 > 0)
            blocks.push_back(&blk);
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const gate::BlockPlacement *a,
                 const gate::BlockPlacement *b) {
                  return a->areaUm2 > b->areaUm2;
              });
    std::printf("%-28s %12s %8s %10s %22s\n", "block", "area(um2)",
                "gates", "SRAM bits", "placement (x0,y0 - x1,y1)");
    for (const gate::BlockPlacement *blk : blocks) {
        std::printf("%-28s %12.0f %8llu %10llu   (%5.0f,%5.0f - %5.0f,"
                    "%5.0f)\n",
                    blk->name.c_str(), blk->areaUm2,
                    (unsigned long long)blk->gates,
                    (unsigned long long)blk->macroBits, blk->x0, blk->y0,
                    blk->x1, blk->y1);
    }

    // ASCII die map (largest 9 blocks lettered).
    const int gw = 64, gh = 24;
    std::vector<std::string> grid(gh, std::string(gw, '.'));
    const char *letters = "ABCDEFGHI";
    for (size_t i = 0; i < blocks.size() && i < 9; ++i) {
        const gate::BlockPlacement *blk = blocks[i];
        int x0 = static_cast<int>(blk->x0 / pl.dieWidthUm * gw);
        int x1 = static_cast<int>(blk->x1 / pl.dieWidthUm * gw);
        int y0 = static_cast<int>(blk->y0 / pl.dieHeightUm * gh);
        int y1 = static_cast<int>(blk->y1 / pl.dieHeightUm * gh);
        for (int y = y0; y < std::min(y1 + 1, gh); ++y)
            for (int x = x0; x < std::min(x1 + 1, gw); ++x)
                grid[y][x] = letters[i];
    }
    std::printf("\ndie map (top-down):\n");
    for (int y = gh - 1; y >= 0; --y)
        std::printf("  %s\n", grid[y].c_str());
    for (size_t i = 0; i < blocks.size() && i < 9; ++i)
        std::printf("  %c = %s\n", letters[i], blocks[i]->name.c_str());
    std::printf("\n(the paper's Figure 6 shows the same structure: "
                "caches dominate, then register files, ROB and issue "
                "logic)\n");
    return 0;
}
