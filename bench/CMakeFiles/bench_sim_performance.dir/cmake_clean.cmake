file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_performance.dir/bench_sim_performance.cc.o"
  "CMakeFiles/bench_sim_performance.dir/bench_sim_performance.cc.o.d"
  "bench_sim_performance"
  "bench_sim_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
