# Empty dependencies file for bench_sim_performance.
# This may be replaced when dependencies are built.
