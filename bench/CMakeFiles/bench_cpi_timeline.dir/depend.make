# Empty dependencies file for bench_cpi_timeline.
# This may be replaced when dependencies are built.
