file(REMOVE_RECURSE
  "CMakeFiles/bench_cpi_timeline.dir/bench_cpi_timeline.cc.o"
  "CMakeFiles/bench_cpi_timeline.dir/bench_cpi_timeline.cc.o.d"
  "bench_cpi_timeline"
  "bench_cpi_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpi_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
