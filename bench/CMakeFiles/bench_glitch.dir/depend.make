# Empty dependencies file for bench_glitch.
# This may be replaced when dependencies are built.
