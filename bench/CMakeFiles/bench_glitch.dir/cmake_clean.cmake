file(REMOVE_RECURSE
  "CMakeFiles/bench_glitch.dir/bench_glitch.cc.o"
  "CMakeFiles/bench_glitch.dir/bench_glitch.cc.o.d"
  "bench_glitch"
  "bench_glitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_glitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
