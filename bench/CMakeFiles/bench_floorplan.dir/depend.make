# Empty dependencies file for bench_floorplan.
# This may be replaced when dependencies are built.
