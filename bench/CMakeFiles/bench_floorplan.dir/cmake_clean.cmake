file(REMOVE_RECURSE
  "CMakeFiles/bench_floorplan.dir/bench_floorplan.cc.o"
  "CMakeFiles/bench_floorplan.dir/bench_floorplan.cc.o.d"
  "bench_floorplan"
  "bench_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
