# Empty dependencies file for bench_dram_timing.
# This may be replaced when dependencies are built.
