file(REMOVE_RECURSE
  "CMakeFiles/bench_dram_timing.dir/bench_dram_timing.cc.o"
  "CMakeFiles/bench_dram_timing.dir/bench_dram_timing.cc.o.d"
  "bench_dram_timing"
  "bench_dram_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dram_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
