file(REMOVE_RECURSE
  "CMakeFiles/bench_power_validation.dir/bench_power_validation.cc.o"
  "CMakeFiles/bench_power_validation.dir/bench_power_validation.cc.o.d"
  "bench_power_validation"
  "bench_power_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
