# Empty dependencies file for bench_power_validation.
# This may be replaced when dependencies are built.
