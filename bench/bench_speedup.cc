/**
 * @file
 * Section V-B / IV-C2 measured rates, via google-benchmark: the
 * simulation-rate gap between the fast word-level simulator (the
 * paper's FPGA role, 3.6 MHz there) and the detailed gate-level
 * simulator (12 Hz there on a commercial simulator), the FAME1 token
 * machinery overhead, and the snapshot-loading contrast between the
 * scripted loader (400 cmds/s) and the VPI bulk loader (20000 cmds/s).
 * Absolute rates are host-dependent; the orders-of-magnitude *gap* is
 * the paper's claim.
 */

#include <chrono>
#include <filesystem>

#include <unistd.h>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/harness.h"
#include "fame/fame1.h"
#include "fame/replay.h"
#include "farm/farm.h"
#include "gate/state_loader.h"
#include "gate/synthesis.h"

using namespace strober;

namespace {

struct Fixture
{
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    rtl::Design boom = cores::buildSoc(cores::SocConfig::boom2w());
    workloads::Workload wl = workloads::vvadd();
    gate::SynthesisResult synth = gate::synthesize(soc);
    gate::MatchTable match =
        gate::matchDesigns(soc, synth.netlist, synth.guide);
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
fastRtlSimBench(benchmark::State &state, sim::Backend backend)
{
    Fixture &f = fixture();
    for (auto _ : state) {
        cores::SocDriver driver(f.soc, f.wl.program);
        core::RtlHarness harness(f.soc, backend);
        core::runLoop(harness, driver, f.wl.maxCycles);
        state.counters["target_Hz"] = benchmark::Counter(
            static_cast<double>(harness.cycles()),
            benchmark::Counter::kIsIterationInvariantRate);
        sim::Simulator &s = harness.simulator();
        state.counters["evals_per_cycle"] =
            static_cast<double>(s.nodeEvals()) /
            static_cast<double>(harness.cycles());
        state.counters["activity"] = s.activityFactor();
    }
}

void
BM_FastRtlSim(benchmark::State &state)
{
    fastRtlSimBench(state, sim::Backend::InterpretedFull);
}
BENCHMARK(BM_FastRtlSim)->Unit(benchmark::kMillisecond);

void
BM_FastRtlSimActivity(benchmark::State &state)
{
    // Same workload with change-propagation evaluation: the counters
    // show the skipped work (evals_per_cycle, activity factor) that
    // buys the wall-clock gap to BM_FastRtlSim.
    fastRtlSimBench(state, sim::Backend::InterpretedActivity);
}
BENCHMARK(BM_FastRtlSimActivity)->Unit(benchmark::kMillisecond);

void
BM_FastRtlSimCompiled(benchmark::State &state)
{
    // Same workload on the compiled backend. The JIT compile happens
    // in the first harness construction inside the timed loop; run a
    // warm-up construction here so the benchmark's own iterations
    // amortize only the steady-state rate.
    core::RtlHarness warmup(fixture().soc, sim::Backend::Compiled);
    fastRtlSimBench(state, sim::Backend::Compiled);
}
BENCHMARK(BM_FastRtlSimCompiled)->Unit(benchmark::kMillisecond);

void
fame1TokenSimBench(benchmark::State &state, sim::Backend backend)
{
    Fixture &f = fixture();
    static fame::Fame1Design fd = fame::fame1Transform(f.soc);
    for (auto _ : state) {
        cores::SocDriver driver(f.soc, f.wl.program);
        core::FameHarness harness(fd, nullptr, backend);
        core::runLoop(harness, driver, f.wl.maxCycles);
        state.counters["target_Hz"] = benchmark::Counter(
            static_cast<double>(harness.cycles()),
            benchmark::Counter::kIsIterationInvariantRate);
        state.counters["activity"] =
            harness.tokenSim().simulator().activityFactor();
    }
}

void
BM_Fame1TokenSim(benchmark::State &state)
{
    fame1TokenSimBench(state, sim::Backend::InterpretedFull);
}
BENCHMARK(BM_Fame1TokenSim)->Unit(benchmark::kMillisecond);

void
BM_Fame1TokenSimActivity(benchmark::State &state)
{
    fame1TokenSimBench(state, sim::Backend::InterpretedActivity);
}
BENCHMARK(BM_Fame1TokenSimActivity)->Unit(benchmark::kMillisecond);

void
BM_Fame1TokenSimCompiled(benchmark::State &state)
{
    fame1TokenSimBench(state, sim::Backend::Compiled);
}
BENCHMARK(BM_Fame1TokenSimCompiled)->Unit(benchmark::kMillisecond);

void
BM_FastRtlSimBoom2w(benchmark::State &state)
{
    // The paper's Section V-B headline rate is measured on BOOM-2w
    // running gcc (3.56 MHz there on the FPGA).
    Fixture &f = fixture();
    static workloads::Workload gcc = workloads::gccLike(5);
    for (auto _ : state) {
        cores::SocDriver driver(f.boom, gcc.program);
        core::RtlHarness harness(f.boom);
        core::runLoop(harness, driver, gcc.maxCycles);
        state.counters["target_Hz"] = benchmark::Counter(
            static_cast<double>(harness.cycles()),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_FastRtlSimBoom2w)->Unit(benchmark::kMillisecond);

void
BM_GateLevelSim(benchmark::State &state)
{
    Fixture &f = fixture();
    const uint64_t kCycles = 3000;
    for (auto _ : state) {
        cores::SocDriver driver(f.soc, f.wl.program);
        core::GateHarness harness(f.synth.netlist);
        core::runLoop(harness, driver, kCycles);
        state.counters["target_Hz"] = benchmark::Counter(
            static_cast<double>(harness.cycles()),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_GateLevelSim)->Unit(benchmark::kMillisecond);

void
BM_SnapshotCaptureAndDecode(benchmark::State &state)
{
    Fixture &f = fixture();
    static fame::Fame1Design fd = fame::fame1Transform(f.soc);
    sim::Simulator sim(fd.design);
    fame::ScanChains chains(fd.design);
    for (auto _ : state) {
        auto bits = chains.scanOut(sim);
        fame::StateSnapshot snap = chains.decode(bits);
        benchmark::DoNotOptimize(snap.regValues.data());
    }
    state.counters["chain_bits"] =
        static_cast<double>(chains.totalBits());
}
BENCHMARK(BM_SnapshotCaptureAndDecode)->Unit(benchmark::kMillisecond);

void
loaderBench(benchmark::State &state, gate::LoaderKind kind)
{
    Fixture &f = fixture();
    static fame::Fame1Design fd = fame::fame1Transform(f.soc);
    sim::Simulator sim(fd.design);
    fame::ScanChains chains(fd.design);
    fame::StateSnapshot snap = chains.capture(sim, 0);
    gate::GateSimulator gsim(f.synth.netlist);
    double modeled = 0;
    for (auto _ : state) {
        gate::LoadReport r =
            gate::loadState(gsim, f.soc, f.match, snap, kind).value();
        modeled = r.modeledSeconds;
        benchmark::DoNotOptimize(r.commands);
    }
    state.counters["modeled_load_s"] = modeled;
}

void
BM_SlowScriptLoader(benchmark::State &state)
{
    loaderBench(state, gate::LoaderKind::SlowScript);
}
BENCHMARK(BM_SlowScriptLoader)->Unit(benchmark::kMillisecond);

void
BM_FastVpiLoader(benchmark::State &state)
{
    loaderBench(state, gate::LoaderKind::FastVpi);
}
BENCHMARK(BM_FastVpiLoader)->Unit(benchmark::kMillisecond);

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/**
 * Headline rates for the JSON sink: one timed fast-RTL run, one timed
 * gate-level run (their rate ratio is the speedup the paper's Figure 2
 * motivates), and a cold-then-warm cached estimate demonstrating the
 * replay-result cache (src/farm).
 */
void
emitJson(bench::JsonSink &json)
{
    if (!json.enabled())
        return;
    Fixture &f = fixture();

    // Per-backend fast-RTL rates. The full interpreted sweep is the
    // speedup baseline; JIT compilation runs at harness construction,
    // before the clock starts.
    double fastWall = 0;
    double fastHz = 0;
    const sim::Backend backends[] = {sim::Backend::InterpretedFull,
                                     sim::Backend::InterpretedActivity,
                                     sim::Backend::Compiled};
    for (sim::Backend backend : backends) {
        cores::SocDriver driver(f.soc, f.wl.program);
        core::RtlHarness harness(f.soc, backend);
        double start = nowSeconds();
        core::runLoop(harness, driver, f.wl.maxCycles);
        double wall = nowSeconds() - start;
        double hz =
            wall > 0 ? static_cast<double>(harness.cycles()) / wall : 0;
        if (backend == sim::Backend::InterpretedFull) {
            fastWall = wall;
            fastHz = hz;
        }
        json.row(std::string("fast_rtl_sim_") + sim::backendName(backend))
            .str("design", "rocket")
            .str("backend", sim::backendName(backend))
            .str("effective_backend",
                 sim::backendName(harness.simulator().backend()))
            .num("cycles", static_cast<double>(harness.cycles()))
            .num("wall_seconds", wall)
            .num("cycles_per_sec", hz)
            .num("speedup", wall > 0 ? fastWall / wall : 0);
    }
    json.row("fast_rtl_sim")
        .str("design", "rocket")
        .num("wall_seconds", fastWall)
        .num("cycles_per_sec", fastHz)
        .num("speedup", 1.0);

    const uint64_t kGateCycles = 3000;
    cores::SocDriver gateDriver(f.soc, f.wl.program);
    core::GateHarness gateHarness(f.synth.netlist);
    double t0 = nowSeconds();
    core::runLoop(gateHarness, gateDriver, kGateCycles);
    double gateWall = nowSeconds() - t0;
    double gateHz = static_cast<double>(gateHarness.cycles()) / gateWall;
    json.row("gate_level_sim")
        .str("design", "rocket")
        .num("cycles", static_cast<double>(gateHarness.cycles()))
        .num("wall_seconds", gateWall)
        .num("speedup", gateHz > 0 ? fastHz / gateHz : 0);

    // Replay-result cache: an identical re-estimate is served entirely
    // from the cache (zero gate-level replays).
    namespace fs = std::filesystem;
    fs::path cacheDir =
        fs::temp_directory_path() /
        ("strober_bench_cache_" + std::to_string(::getpid()));
    fs::remove_all(cacheDir);
    double coldWall = 0;
    for (const char *phase : {"replay_cache_cold", "replay_cache_warm"}) {
        farm::CachingReplayExecutor exec(cacheDir.string());
        core::EnergySimulator::Config cfg;
        cfg.sampleSize = 5;
        cfg.replayLength = 64;
        cfg.replayExecutor = &exec;
        core::EnergySimulator es(f.soc, cfg);
        cores::SocDriver driver(f.soc, f.wl.program);
        es.run(driver, f.wl.maxCycles);
        t0 = nowSeconds();
        core::EnergyReport rep = es.estimate();
        double wall = nowSeconds() - t0;
        size_t served = rep.cacheHits + rep.cacheMisses;
        if (coldWall == 0)
            coldWall = wall;
        json.row(phase)
            .str("design", "rocket")
            .num("cycles", static_cast<double>(rep.snapshots) * 64)
            .num("wall_seconds", wall)
            .num("speedup", wall > 0 ? coldWall / wall : 0)
            .num("cache_hit_rate",
                 served ? static_cast<double>(rep.cacheHits) /
                              static_cast<double>(served)
                        : 0);
    }
    fs::remove_all(cacheDir);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonSink json =
        bench::JsonSink::fromArgs(&argc, argv, "BENCH_speedup.json");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Summary: the measured rate gap (the paper's Section V-B numbers
    // are 3.6 MHz FPGA vs 12 Hz gate-level = ~3e5x; the gap here is
    // host-bound but still orders of magnitude once the paper's FPGA
    // clock is substituted for the interpreter).
    Fixture &f = fixture();
    std::printf("\nnetlist: %llu gates / %zu DFFs vs %zu word-level "
                "nodes -> the detail ratio driving the speed gap\n",
                (unsigned long long)f.synth.netlist.liveGateCount(),
                f.synth.netlist.dffs().size(), f.soc.numNodes());
    sim::Simulator rtlSim(f.soc);
    fame::ScanChains chains(f.soc);
    fame::StateSnapshot snap = chains.capture(rtlSim, 0);
    gate::GateSimulator gsim(f.synth.netlist);
    double slow = gate::loadState(gsim, f.soc, f.match, snap,
                                  gate::LoaderKind::SlowScript)
                      .value()
                      .modeledSeconds;
    double fast = gate::loadState(gsim, f.soc, f.match, snap,
                                  gate::LoaderKind::FastVpi)
                      .value()
                      .modeledSeconds;
    std::printf("modeled snapshot load: %.1f s (script) vs %.2f s (VPI) "
                "per snapshot — the paper's 40 min -> 54 s fix, same "
                "50x ratio.\n",
                slow, fast);

    emitJson(json);
    json.write();
    return 0;
}
