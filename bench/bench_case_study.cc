/**
 * @file
 * Table II + Figure 9 (paper Section VI): the case study. Three
 * processor configurations (Table II) each run the three case-study
 * workloads; for every (core, workload) pair we report the Figure-9a
 * power breakdown with 99% error bounds from 30 random snapshots, and
 * the Figure-9b CPI / EPI summary.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace strober;

namespace {

/** Map fine-grained hierarchy groups onto Figure 9a's categories. */
std::string
categoryOf(const std::string &group)
{
    struct Rule
    {
        const char *prefix;
        const char *category;
    };
    static const Rule rules[] = {
        {"icache", "L1 I-cache"},
        {"dcache/arrays", "L1 D-cache meta+data"},
        {"dcache", "L1 D-cache control"},
        {"core/fetch", "Fetch Unit"},
        {"core/decode", "Rename + Decode Logic"},
        {"core/dispatch", "Rename + Decode Logic"},
        {"core/rename", "Rename + Decode Logic"},
        {"core/regfile", "Register File"},
        {"core/issue", "Issue Logic"},
        {"core/rob", "ROB"},
        {"core/execute/mul", "Mul/Div Unit"},
        {"core/execute/div", "Mul/Div Unit"},
        {"core/mulpipe", "Mul/Div Unit"},
        {"core/divunit", "Mul/Div Unit"},
        {"core/execute", "Integer Unit"},
        {"core/lsu", "LSU"},
        {"core/mem", "LSU"},
        {"core/commit", "ROB"},
        {"core/update", "Issue Logic"},
        {"core/writeback", "Register File"},
        {"core/control", "Integer Unit"},
        {"core/csr", "Misc"},
        {"uncore", "Uncore"},
        {"core", "Misc"},
    };
    for (const Rule &r : rules) {
        if (group.rfind(r.prefix, 0) == 0)
            return r.category;
    }
    return "Misc";
}

} // namespace

int
main()
{
    bench::banner("Table II: processor parameters");
    std::printf("%-18s %8s %8s %8s %8s %8s %8s\n", "parameter", "rocket",
                "", "boom1w", "", "boom2w", "");
    cores::SocConfig cfgs[] = {cores::SocConfig::rocket(),
                               cores::SocConfig::boom1w(),
                               cores::SocConfig::boom2w()};
    std::printf("%-18s %8u %8s %8u %8s %8u\n", "fetch width",
                cfgs[0].fetchWidth, "", cfgs[1].fetchWidth, "",
                cfgs[2].fetchWidth);
    std::printf("%-18s %8u %8s %8u %8s %8u\n", "issue width",
                cfgs[0].issueWidth, "", cfgs[1].issueWidth, "",
                cfgs[2].issueWidth);
    std::printf("%-18s %8s %8s %8u %8s %8u\n", "issue slots", "-", "",
                cfgs[1].issueSlots, "", cfgs[2].issueSlots);
    std::printf("%-18s %8s %8s %8u %8s %8u\n", "ROB size", "-", "",
                cfgs[1].robSize, "", cfgs[2].robSize);
    std::printf("%-18s %8s %8s %8u %8s %8u\n", "phys registers",
                "32(arch)", "", cfgs[1].physRegs, "", cfgs[2].physRegs);
    std::printf("%-18s %8s %8s %8s %8s %8s\n", "L1 I$/D$",
                "16K/16K", "", "16K/16K", "", "16K/16K");
    std::printf("%-18s %8s %8s %8s %8s %8s\n", "DRAM latency",
                "100cy", "", "100cy", "", "100cy");

    workloads::Workload wls[] = {workloads::coremarkLite(10),
                                 workloads::linuxbootLike(24),
                                 workloads::gccLike(10)};

    struct Row
    {
        std::string core, wl;
        double cpi, epi, watts, bound;
        std::map<std::string, double> breakdown;
        double dramWatts;
    };
    std::vector<Row> rows;

    for (const cores::SocConfig &cfg : cfgs) {
        rtl::Design soc = cores::buildSoc(cfg);
        core::EnergySimulator::Config ecfg;
        ecfg.sampleSize = 30;
        ecfg.replayLength = 128;
        core::EnergySimulator strober(soc, ecfg);

        for (const workloads::Workload &wl : wls) {
            strober.resetSampling();
            cores::SocDriver driver(soc, wl.program);
            core::RunStats run = strober.run(driver, wl.maxCycles);
            if (!driver.done())
                fatal("%s did not finish on %s", wl.name.c_str(),
                      cfg.name.c_str());
            core::EnergyReport rep = strober.estimate();
            if (rep.replayMismatches != 0)
                fatal("replay mismatch: %s on %s", wl.name.c_str(),
                      cfg.name.c_str());

            Row row;
            row.core = cfg.name;
            row.wl = wl.name;
            double inst = static_cast<double>(driver.commitsSeen());
            row.cpi = static_cast<double>(run.targetCycles) / inst;
            row.watts = rep.averagePower.mean;
            row.bound = rep.averagePower.halfWidth;
            row.epi = row.watts / ecfg.clockHz *
                      static_cast<double>(run.targetCycles) / inst * 1e12;
            for (const core::GroupEstimate &g : rep.groups)
                row.breakdown[categoryOf(g.group)] += g.power.mean;
            // DRAM power from the host-side counters (Section IV-D).
            dram::DramPowerBreakdown dp = dram::dramPower(
                driver.dramModel().counters(), run.targetCycles,
                ecfg.clockHz);
            row.dramWatts = dp.total();
            rows.push_back(std::move(row));
        }
    }

    bench::banner("Figure 9a: power breakdown (mW) with 99% bounds");
    std::vector<std::string> cats;
    for (const Row &r : rows) {
        for (const auto &[cat, watts] : r.breakdown) {
            if (std::find(cats.begin(), cats.end(), cat) == cats.end())
                cats.push_back(cat);
        }
    }
    cats.push_back("DRAM");
    std::printf("%-22s", "unit \\ core+workload");
    for (const Row &r : rows)
        std::printf(" %7s", (r.core.substr(0, 4) + ":" +
                             r.wl.substr(0, 3)).c_str());
    std::printf("\n");
    for (const std::string &cat : cats) {
        std::printf("%-22s", cat.c_str());
        for (const Row &r : rows) {
            double watts = cat == "DRAM"
                               ? r.dramWatts
                               : (r.breakdown.count(cat)
                                      ? r.breakdown.at(cat)
                                      : 0.0);
            std::printf(" %7.2f", watts * 1e3);
        }
        std::printf("\n");
    }
    std::printf("%-22s", "TOTAL (+-bound)");
    for (const Row &r : rows)
        std::printf(" %7.2f", (r.watts + r.dramWatts) * 1e3);
    std::printf("\n%-22s", "");
    for (const Row &r : rows)
        std::printf(" +-%5.2f", r.bound * 1e3);
    std::printf("\n");

    bench::banner("Figure 9b: CPI and EPI");
    std::printf("%-10s %-12s %8s %12s %12s\n", "core", "workload", "CPI",
                "power(mW)", "EPI(pJ/inst)");
    for (const Row &r : rows) {
        std::printf("%-10s %-12s %8.2f %12.2f %12.2f\n", r.core.c_str(),
                    r.wl.c_str(), r.cpi, (r.watts + r.dramWatts) * 1e3,
                    r.epi);
    }
    std::printf("\npaper shape: BOOM-2w fastest on CoreMark (paper: 58%% "
                "over Rocket) at ~3x the power; Rocket is the most "
                "energy-efficient; DRAM power grows for the memory-heavy "
                "workloads.\n");
    return 0;
}
