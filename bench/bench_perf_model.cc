/**
 * @file
 * Section IV-E: the analytic simulation-performance model, reproducing
 * the paper's worked example (two-way BOOM, 100 B cycles, n = 100,
 * L = 1000, 10 parallel gate-level instances) and the headline speedup
 * comparisons (~3.86 days of microarchitectural simulation, ~264 years
 * of gate-level simulation, vs ~9-10 hours for Strober).
 */

#include <cstdio>

#include "bench_common.h"
#include "core/perf_model.h"

using namespace strober;

namespace {

void
show(const char *label, const core::PerfModelParams &p)
{
    core::PerfModelResult r = core::evaluatePerfModel(p);
    std::printf("%s\n", label);
    std::printf("  T_run      = %10.0f s   (N/K_f)\n", r.tRun);
    std::printf("  T_sample   = %10.0f s   (%.0f expected records x "
                "%.1f s)\n",
                r.tSample, r.expectedRecords, p.recordSeconds);
    std::printf("  T_replay   = %10.0f s   (n=%llu, L=%llu, P=%u)\n",
                r.tReplay, (unsigned long long)p.sampleSize,
                (unsigned long long)p.replayLength, p.parallelReplays);
    std::printf("  T_overall  = %10.0f s = %.1f hours\n", r.tOverall,
                r.tOverall / 3600);
    std::printf("  uarch sim  = %10.0f s = %.2f days   (%.0fx slower)\n",
                r.tMicroarchSim, r.tMicroarchSim / 86400,
                r.speedupVsMicroarch);
    std::printf("  gate-level = %10.3g s = %.0f years  (%.3gx slower)\n\n",
                r.tGateLevelSim, r.tGateLevelSim / (365.25 * 86400),
                r.speedupVsGateLevel);
}

} // namespace

int
main()
{
    bench::banner("Section IV-E: analytic simulation-performance model");

    core::PerfModelParams paper; // defaults are the paper's example
    show("paper worked example (BOOM-2w, 100 B cycles):", paper);

    core::PerfModelParams longRun = paper;
    longRun.totalCycles = 1'000'000'000'000ull;
    show("1 T cycles (sampling overhead amortizes further):", longRun);

    core::PerfModelParams smallSample = paper;
    smallSample.sampleSize = 30;
    smallSample.replayLength = 128;
    show("paper validation configuration (n=30, L=128):", smallSample);

    std::printf("paper claims: >= 2 orders of magnitude vs uarch "
                "simulators,\n>= 4 orders of magnitude vs commercial "
                "gate-level simulation.\n");
    core::PerfModelResult r = core::evaluatePerfModel(paper);
    std::printf("model gives: %.0fx and %.3gx respectively.\n",
                r.speedupVsMicroarch, r.speedupVsGateLevel);
    return 0;
}
