/**
 * @file
 * Shared glue for the experiment-reproduction benches: run a workload on
 * a SoC under the Strober flow and collect the numbers the paper's
 * tables/figures report. Each bench binary prints one experiment.
 */

#ifndef STROBER_BENCH_BENCH_COMMON_H
#define STROBER_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "util/logging.h"
#include "workloads/workloads.h"

namespace strober {
namespace bench {

/** Everything one (core, workload) Strober evaluation produces. */
struct StroberRun
{
    core::RunStats run;
    uint64_t commits = 0;
    uint32_t exitCode = 0;
    bool finished = false;
};

/** Phase-1 fast simulation of @p wl on @p es (driver owned here). */
inline StroberRun
runFastPhase(core::EnergySimulator &es, const rtl::Design &soc,
             const workloads::Workload &wl)
{
    cores::SocDriver driver(soc, wl.program);
    StroberRun out;
    out.run = es.run(driver, wl.maxCycles);
    out.commits = driver.commitsSeen();
    out.exitCode = driver.exitCode();
    out.finished = driver.done();
    if (!out.finished)
        fatal("workload '%s' did not finish in %llu cycles",
              wl.name.c_str(), (unsigned long long)wl.maxCycles);
    if (wl.expectedExit != 0 && out.exitCode != wl.expectedExit)
        fatal("workload '%s' checksum mismatch: 0x%x != 0x%x",
              wl.name.c_str(), out.exitCode, wl.expectedExit);
    return out;
}

inline void
banner(const char *what)
{
    std::printf("==============================================================="
                "=\n%s\n"
                "==============================================================="
                "=\n",
                what);
}

} // namespace bench
} // namespace strober

#endif // STROBER_BENCH_BENCH_COMMON_H
