/**
 * @file
 * Shared glue for the experiment-reproduction benches: run a workload on
 * a SoC under the Strober flow and collect the numbers the paper's
 * tables/figures report. Each bench binary prints one experiment.
 */

#ifndef STROBER_BENCH_BENCH_COMMON_H
#define STROBER_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "util/logging.h"
#include "workloads/workloads.h"

namespace strober {
namespace bench {

/**
 * Machine-readable bench output: `--json [path]` makes a bench write its
 * headline measurements as a JSON array of flat records (one per
 * measurement), so CI can trend them without scraping the human tables.
 * With no path the bench writes its canonical artifact name
 * (BENCH_<bench>.json in the working directory).
 */
class JsonSink
{
  public:
    /**
     * Strip a `--json [path]` flag from argv (before
     * benchmark::Initialize sees it) and return the sink. The path
     * operand is optional; when absent the sink writes
     * @p defaultPath. Disabled when the flag itself is absent.
     */
    static JsonSink
    fromArgs(int *argc, char **argv, const char *defaultPath)
    {
        JsonSink sink;
        for (int i = 1; i < *argc; ++i) {
            if (std::strcmp(argv[i], "--json") != 0)
                continue;
            int consumed = 1;
            if (i + 1 < *argc && argv[i + 1][0] != '-') {
                sink.path = argv[i + 1];
                consumed = 2;
            } else {
                sink.path = defaultPath;
            }
            for (int j = i; j + consumed < *argc; ++j)
                argv[j] = argv[j + consumed];
            *argc -= consumed;
            break;
        }
        return sink;
    }

    bool enabled() const { return !path.empty(); }

    /** Start a record; chain num()/str() calls to fill it. */
    JsonSink &
    row(const std::string &name)
    {
        rows.emplace_back("{\"name\":\"" + escape(name) + "\"");
        return *this;
    }

    JsonSink &
    num(const char *key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", value);
        rows.back() += std::string(",\"") + key + "\":" + buf;
        return *this;
    }

    JsonSink &
    str(const char *key, const std::string &value)
    {
        rows.back() +=
            std::string(",\"") + key + "\":\"" + escape(value) + "\"";
        return *this;
    }

    /** Write the collected records; no-op when disabled. */
    void
    write() const
    {
        if (path.empty())
            return;
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot write '%s'", path.c_str());
        out << "[\n";
        for (size_t i = 0; i < rows.size(); ++i)
            out << "  " << rows[i] << "}" << (i + 1 < rows.size() ? "," : "")
                << "\n";
        out << "]\n";
        if (!out.flush())
            fatal("writing '%s' failed", path.c_str());
        std::printf("wrote %zu JSON record(s) to %s\n", rows.size(),
                    path.c_str());
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            if (static_cast<unsigned char>(c) < 0x20)
                c = ' ';
            out.push_back(c);
        }
        return out;
    }

    std::string path;
    std::vector<std::string> rows;
};

/** Everything one (core, workload) Strober evaluation produces. */
struct StroberRun
{
    core::RunStats run;
    uint64_t commits = 0;
    uint32_t exitCode = 0;
    bool finished = false;
};

/** Phase-1 fast simulation of @p wl on @p es (driver owned here). */
inline StroberRun
runFastPhase(core::EnergySimulator &es, const rtl::Design &soc,
             const workloads::Workload &wl)
{
    cores::SocDriver driver(soc, wl.program);
    StroberRun out;
    out.run = es.run(driver, wl.maxCycles);
    out.commits = driver.commitsSeen();
    out.exitCode = driver.exitCode();
    out.finished = driver.done();
    if (!out.finished)
        fatal("workload '%s' did not finish in %llu cycles",
              wl.name.c_str(), (unsigned long long)wl.maxCycles);
    if (wl.expectedExit != 0 && out.exitCode != wl.expectedExit)
        fatal("workload '%s' checksum mismatch: 0x%x != 0x%x",
              wl.name.c_str(), out.exitCode, wl.expectedExit);
    return out;
}

inline void
banner(const char *what)
{
    std::printf("==============================================================="
                "=\n%s\n"
                "==============================================================="
                "=\n",
                what);
}

} // namespace bench
} // namespace strober

#endif // STROBER_BENCH_BENCH_COMMON_H
