/**
 * @file
 * Figure 7 (paper Section V-C): DRAM timing-model validation. A
 * pointer-chase benchmark walks arrays of increasing size on the
 * in-order SoC while the simulated DRAM latency is varied; the measured
 * load-to-load latency shows the L1 capacity plateau and tracks the
 * configured off-chip latency beyond it — demonstrating that the FAME1
 * host memory model imposes the intended target timing.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/harness.h"

using namespace strober;

int
main()
{
    bench::banner("Figure 7: DRAM timing model validation (pointer "
                  "chase)");
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());

    const unsigned latencies[] = {50, 100, 200};
    const uint32_t sizesKiB[] = {2, 4, 8, 16, 32, 64, 128};

    std::printf("load-to-load latency (cycles) on rocket, 16 KiB D$:\n\n");
    std::printf("%10s", "array");
    for (unsigned lat : latencies)
        std::printf("   dram=%3u", lat);
    std::printf("\n");

    for (uint32_t kib : sizesKiB) {
        std::printf("%7u KiB", kib);
        for (unsigned lat : latencies) {
            workloads::Workload wl =
                workloads::pointerChase(kib * 1024, 400);
            cores::SocDriver::Config cfg;
            cfg.dram.baseLatencyCycles = lat;
            cores::SocDriver driver(soc, wl.program, cfg);
            core::RtlHarness harness(soc);
            core::runLoop(harness, driver, wl.maxCycles);
            if (!driver.done())
                fatal("pointer chase did not finish");
            double cycles = driver.exitCode() / 16.0;
            std::printf("   %8.1f", cycles);
        }
        std::printf("\n");
    }
    std::printf("\nexpected shape (paper Figure 7): flat in-cache latency "
                "below the 16 KiB L1 capacity, then a jump that tracks "
                "the configured DRAM latency.\n");
    return 0;
}
