/**
 * @file
 * Ablation: detailed-timing (glitch-aware) vs zero-delay activity. The
 * paper replays snapshots on a commercial gate-level simulator with
 * "very detailed timing"; this bench quantifies what that detail buys —
 * the glitch power invisible to a zero-delay evaluator — by running the
 * same workload window through both gate-level simulators and the power
 * analysis.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/harness.h"
#include "gate/placement.h"
#include "gate/synthesis.h"
#include "gate/timed_sim.h"
#include "power/power_analysis.h"

using namespace strober;

namespace {

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main()
{
    bench::banner("Ablation: zero-delay vs delay-annotated (glitch) "
                  "activity, rocket running dgemm");
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::dgemm();
    gate::SynthesisResult synth = gate::synthesize(soc);
    gate::Placement pl = gate::place(synth.netlist);
    const uint64_t window = 2000;

    // Zero-delay run.
    cores::SocDriver d1(soc, wl.program);
    core::GateHarness fast(synth.netlist);
    fast.simulator().clearActivity();
    double t0 = now();
    core::runLoop(fast, d1, window);
    double fastSec = now() - t0;
    gate::ActivityReport fastAct{fast.simulator().toggleCounts(),
                                 fast.simulator().macroStats(),
                                 fast.simulator().activityCycles()};

    // Delay-annotated run (same stimulus by construction).
    cores::SocDriver d2(soc, wl.program);
    gate::TimedGateSimulator timed(synth.netlist);
    timed.clearActivity();
    /** Adapts TimedGateSimulator to the harness protocol. */
    class TimedHarness : public core::TargetHarness
    {
      public:
        TimedHarness(gate::TimedGateSimulator &s, size_t numOutputs)
            : sim(s), outs(numOutputs, 0)
        {
        }
        void
        setInput(size_t port, uint64_t v) override
        {
            sim.pokePort(port, v);
        }
        uint64_t getOutput(size_t port) const override
        {
            return outs[port];
        }
        void
        clock() override
        {
            for (size_t o = 0; o < outs.size(); ++o)
                outs[o] = sim.peekPort(o);
            sim.step();
        }
        uint64_t cycles() const override { return sim.cycle(); }

      private:
        gate::TimedGateSimulator &sim;
        std::vector<uint64_t> outs;
    };
    TimedHarness th(timed, synth.netlist.outputs().size());
    t0 = now();
    core::runLoop(th, d2, window);
    double timedSec = now() - t0;
    gate::ActivityReport timedAct{timed.toggleCounts(),
                                  timed.macroStats(),
                                  timed.activityCycles()};

    power::PowerReport fastRep =
        power::analyzePower(synth.netlist, pl, fastAct, 1e9);
    power::PowerReport timedRep =
        power::analyzePower(synth.netlist, pl, timedAct, 1e9);

    uint64_t fastToggles = 0, timedToggles = 0;
    for (size_t i = 0; i < fastAct.netToggles.size(); ++i) {
        fastToggles += fastAct.netToggles[i];
        timedToggles += timedAct.netToggles[i];
    }

    std::printf("%-24s %14s %14s\n", "", "zero-delay", "delay-annotated");
    std::printf("%-24s %14llu %14llu\n", "net transitions",
                (unsigned long long)fastToggles,
                (unsigned long long)timedToggles);
    std::printf("%-24s %14.3f %14.3f\n", "power (mW)",
                fastRep.totalWatts() * 1e3, timedRep.totalWatts() * 1e3);
    std::printf("%-24s %14.1f %14.1f\n", "sim rate (Hz)",
                window / fastSec, window / timedSec);
    std::printf("\nglitch surplus: +%.1f%% transitions -> +%.1f%% power "
                "(glitches concentrate on low-capacitance arithmetic "
                "nets, while clock + leakage dominate the total — the "
                "reason zero-delay replay is an acceptable default).\n"
                "relative speed: event-driven/levelized = %.2fx "
                "(event-driven wins at low activity, loses under heavy "
                "switching).\n",
                100.0 * (static_cast<double>(timedToggles) /
                             static_cast<double>(fastToggles) - 1.0),
                100.0 * (timedRep.totalWatts() / fastRep.totalWatts() -
                         1.0),
                fastSec / timedSec);
    return 0;
}
