/**
 * @file
 * Figure 10 (paper Section VI-B): CPI over time with snapshot
 * timestamps. The gcc-like workload runs on the in-order SoC under the
 * sampling flow; CPI is computed over fixed windows (the paper samples
 * it every 100 M cycles via a user program reading the cycle/instret
 * CSRs — here the host reads the same architectural counters through the
 * commit stream), and the cycles at which Strober captured snapshots are
 * marked, showing samples landing across program phases.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace strober;

int
main()
{
    bench::banner("Figure 10: CPI timeline with snapshot timestamps "
                  "(gcc-like on rocket)");
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::gccLike(60);

    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 30;
    cfg.replayLength = 128;
    core::EnergySimulator strober(soc, cfg);

    // Run manually so we can sample CPI per window.
    const uint64_t window = 4000;
    cores::SocDriver driver(soc, wl.program);
    fame::TokenSimulator &tsim = strober.harness().tokenSim();
    std::vector<double> cpi;
    uint64_t lastCommits = 0;
    uint64_t nextWindow = window;
    while (!driver.done() && tsim.targetCycles() < wl.maxCycles) {
        driver.drive(strober.harness());
        strober.harness().clock();
        if (tsim.targetCycles() >= nextWindow) {
            uint64_t commits = driver.commitsSeen() - lastCommits;
            cpi.push_back(commits
                              ? static_cast<double>(window) /
                                    static_cast<double>(commits)
                              : 99.0);
            lastCommits = driver.commitsSeen();
            nextWindow += window;
        }
    }

    std::vector<const fame::ReplayableSnapshot *> snaps =
        strober.sampler().snapshots();
    std::vector<uint64_t> snapCycles;
    for (const auto *s : snaps)
        snapCycles.push_back(s->cycle());

    double maxCpi = 0;
    for (double c : cpi)
        maxCpi = std::max(maxCpi, c);
    std::printf("total %llu cycles, %zu CPI windows of %llu cycles, "
                "%zu snapshots\n\n",
                (unsigned long long)tsim.targetCycles(), cpi.size(),
                (unsigned long long)window, snaps.size());
    for (size_t i = 0; i < cpi.size(); ++i) {
        uint64_t wStart = i * window, wEnd = (i + 1) * window;
        bool snapped = false;
        for (uint64_t c : snapCycles)
            snapped |= (c >= wStart && c < wEnd);
        int bar = static_cast<int>(cpi[i] / maxCpi * 46);
        std::printf("%9llu %5.2f %c|%-46.*s\n",
                    (unsigned long long)wStart, cpi[i],
                    snapped ? '*' : ' ', bar,
                    "##############################################");
    }
    std::printf("\n('*' marks windows containing a Strober snapshot; the "
                "paper's grey vertical lines)\n");
    return 0;
}
