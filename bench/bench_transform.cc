/**
 * @file
 * Figures 3/4 (paper Section IV-B): the FAME1 + scan-chain
 * instrumentation that Strober adds around an arbitrary design — token
 * channels per I/O port, the global host-enable gating every state
 * element, register/RAM scan chains and their read-out cost. Reported
 * for all three target SoCs, including the area overhead of the
 * instrumentation versus the raw target (the paper's "minimal FPGA
 * resource overhead" point).
 */

#include <cstdio>

#include "bench_common.h"
#include "fame/fame1.h"
#include "fame/scan_chain.h"
#include "gate/synthesis.h"

using namespace strober;

int
main()
{
    bench::banner("Figures 3/4: FAME1 transform and scan-chain "
                  "instrumentation");
    std::printf("%-8s %8s %8s %9s %10s %11s %12s %9s\n", "design",
                "in-chan", "out-chan", "regchain", "ramchain",
                "capture(cy)", "extra-gates", "overhead");

    for (const cores::SocConfig &cfg :
         {cores::SocConfig::rocket(), cores::SocConfig::boom1w(),
          cores::SocConfig::boom2w()}) {
        rtl::Design target = cores::buildSoc(cfg);
        fame::Fame1Design fd = fame::fame1Transform(target);
        fame::ScanChains chains(fd.design);

        // Instrumentation cost: synthesize target vs transformed design.
        gate::SynthesisResult raw = gate::synthesize(target);
        gate::SynthesisResult inst = gate::synthesize(fd.design);
        uint64_t extra =
            inst.netlist.liveGateCount() - raw.netlist.liveGateCount();

        std::printf("%-8s %8zu %8zu %9llu %10llu %11llu %12llu %8.2f%%\n",
                    cfg.name.c_str(), fd.targetInputs.size(),
                    fd.targetOutputs.size(),
                    (unsigned long long)chains.regChainBits(),
                    (unsigned long long)chains.ramChainBits(),
                    (unsigned long long)chains.captureHostCycles(),
                    (unsigned long long)extra,
                    100.0 * static_cast<double>(extra) /
                        static_cast<double>(raw.netlist.liveGateCount()));
    }
    std::printf("\n(regchain/ramchain in bits; capture = host cycles to "
                "shift one snapshot out; extra-gates = host-enable gating "
                "logic, the moral equivalent of the paper's FPGA "
                "instrumentation overhead)\n");
    return 0;
}
