/**
 * @file
 * Table IV + Figure 8 (paper Section V-D): power validation. Each of the
 * six microbenchmarks runs to completion on a full gate-level simulation
 * of the in-order SoC to obtain the exact ("true") average power. Then,
 * five independent samplings of 30 random 128-cycle snapshots are taken
 * from the fast simulation and replayed at gate level; for each we
 * report the theoretical 99% error bound (from the CI) next to the
 * actual error against ground truth, plus the Table-IV coverage numbers.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/harness.h"
#include "stats/sampling.h"

using namespace strober;

int
main()
{
    bench::banner("Table IV + Figure 8: power validation (rocket, "
                  "n=30, L=128, 99% confidence)");
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());

    // One EnergySimulator per seed would re-synthesize; share the ASIC
    // flow by reusing a single instance and re-arming sampling.
    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 30;
    cfg.replayLength = 128;
    cfg.confidence = 0.99;
    core::EnergySimulator strober(soc, cfg);
    strober.synthesis(); // build the ASIC flow once up front

    std::printf("%-10s %12s %9s %10s | per-sampling: bound%% / actual%%\n",
                "benchmark", "cycles", "replayed", "coverage");

    int outsideBound = 0, totalRuns = 0;
    double worstError = 0;
    for (const workloads::Workload &wl : workloads::microbenchmarks()) {
        // Ground truth: full gate-level run of the entire benchmark.
        cores::SocDriver truthDriver(soc, wl.program);
        core::GateHarness gateHarness(strober.synthesis().netlist);
        gateHarness.simulator().clearActivity();
        core::runLoop(gateHarness, truthDriver, wl.maxCycles);
        if (!truthDriver.done())
            fatal("%s did not finish at gate level", wl.name.c_str());
        gate::ActivityReport truthAct{
            gateHarness.simulator().toggleCounts(),
            gateHarness.simulator().macroStats(),
            gateHarness.simulator().activityCycles()};
        power::PowerReport truth = power::analyzePower(
            strober.synthesis().netlist, strober.placement(), truthAct,
            cfg.clockHz);
        double trueWatts = truth.totalWatts();
        uint64_t cycles = gateHarness.cycles();

        uint64_t replayed = 30ull * cfg.replayLength;
        std::printf("%-10s %12llu %9llu %9.2f%% |", wl.name.c_str(),
                    (unsigned long long)cycles,
                    (unsigned long long)replayed,
                    100.0 * static_cast<double>(replayed) /
                        static_cast<double>(cycles));

        // Five independent samplings (paper Figure 8 repeats 5x).
        for (int rep = 0; rep < 5; ++rep) {
            cfg.seed = 0x1000 + 77 * rep;
            core::EnergySimulator est(soc, cfg);
            bench::runFastPhase(est, soc, wl);
            core::EnergyReport report = est.estimate();
            if (report.replayMismatches != 0)
                fatal("replay verification failed for %s",
                      wl.name.c_str());
            double bound = report.averagePower.relativeError();
            double actual =
                std::abs(report.averagePower.mean - trueWatts) /
                trueWatts;
            std::printf(" %.2f/%.2f", bound * 100, actual * 100);
            ++totalRuns;
            if (actual > bound)
                ++outsideBound;
            worstError = std::max(worstError, actual);
        }
        std::printf("\n");
    }

    std::printf("\n%d of %d samplings fell outside their 99%% bound "
                "(paper: 2 of 30, expected probabilistically); worst "
                "actual error %.2f%% (paper: all < 2%%, bound < 3%%)\n",
                outsideBound, totalRuns, worstError * 100);
    std::printf("paper Table IV coverage: 0.21%%-2.05%% of cycles "
                "replayed; errors independent of execution length.\n");

    // ------------------------------------------------------------------
    // Coverage at scale (the abstract's guarantee): many independent
    // samplings of one workload; the 99% and 99.9% intervals must cover
    // the gate-level truth at (at least) their nominal rates.
    // ------------------------------------------------------------------
    bench::banner("CI coverage at scale (towers, 30 independent "
                  "samplings)");
    workloads::Workload tw = workloads::towers();
    cores::SocDriver truthDriver(soc, tw.program);
    core::GateHarness truthHarness(strober.synthesis().netlist);
    truthHarness.simulator().clearActivity();
    core::runLoop(truthHarness, truthDriver, tw.maxCycles);
    gate::ActivityReport act{truthHarness.simulator().toggleCounts(),
                             truthHarness.simulator().macroStats(),
                             truthHarness.simulator().activityCycles()};
    double trueWatts =
        power::analyzePower(strober.synthesis().netlist,
                            strober.placement(), act, cfg.clockHz)
            .totalWatts();

    int cover99 = 0, cover999 = 0;
    const int reps = 30;
    for (int rep = 0; rep < reps; ++rep) {
        cfg.seed = 0xc0ffee + 131 * rep;
        cfg.confidence = 0.99;
        core::EnergySimulator est(soc, cfg);
        bench::runFastPhase(est, soc, tw);
        core::EnergyReport r99 = est.estimate();
        double err = std::abs(r99.averagePower.mean - trueWatts);
        if (err <= r99.averagePower.halfWidth)
            ++cover99;
        // Same sample, wider interval for 99.9%.
        double z999 = stats::zForConfidence(0.999) /
                      stats::zForConfidence(0.99);
        if (err <= r99.averagePower.halfWidth * z999)
            ++cover999;
    }
    std::printf("99%%   CI covered the truth in %d/%d samplings\n",
                cover99, reps);
    std::printf("99.9%% CI covered the truth in %d/%d samplings "
                "(the abstract's 'within bound with 99%%+ confidence' "
                "guarantee)\n",
                cover999, reps);
    return 0;
}
