/**
 * @file
 * Figure 1 + Table I + Eq. 8 (paper Section III-A): demonstrate that the
 * sampling distribution of the mean is Gaussian, that the computed
 * confidence intervals achieve their nominal coverage, and how the
 * minimum sample size of Eq. 8 behaves — on a synthetic per-interval
 * power population resembling a real workload (bimodal: idle + active
 * phases).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "stats/rng.h"
#include "stats/sampling.h"

using namespace strober;

int
main()
{
    bench::banner("Figure 1 / Table I: sampling distribution and "
                  "confidence intervals");

    // Synthetic population: per-interval average power of a program with
    // busier and quieter phases around ~300 mW (clock+leakage dominate a
    // real chip's floor, so per-interval power varies ~10%, which is the
    // regime where the paper's 30 snapshots give tight intervals).
    stats::Rng rng(1234);
    const size_t N = 100000;
    std::vector<double> population(N);
    for (size_t i = 0; i < N; ++i) {
        bool active = rng.nextDouble() < 0.35;
        double base = active ? 330.0 : 285.0;
        population[i] = base + 12.0 * rng.nextGaussian();
    }
    double trueMean = 0;
    for (double v : population)
        trueMean += v;
    trueMean /= static_cast<double>(N);
    std::printf("population: N = %zu intervals, true mean = %.2f mW\n\n",
                N, trueMean);

    // Sampling distribution of the mean for n = 30 (paper's sample size).
    const size_t n = 30;
    const int reps = 4000;
    std::vector<double> means;
    int covered99 = 0;
    double meanHalfWidth = 0;
    for (int r = 0; r < reps; ++r) {
        stats::SampleStats s;
        for (size_t k = 0; k < n; ++k)
            s.add(population[rng.nextBounded(N)]);
        stats::Estimate e = s.estimate(0.99, N);
        means.push_back(e.mean);
        meanHalfWidth += e.halfWidth;
        if (trueMean >= e.lower() && trueMean <= e.upper())
            ++covered99;
    }
    meanHalfWidth /= reps;

    // Histogram (the "theoretical sampling distribution" picture).
    double lo = *std::min_element(means.begin(), means.end());
    double hi = *std::max_element(means.begin(), means.end());
    const int bins = 15;
    std::vector<int> hist(bins, 0);
    for (double m : means) {
        int idx = static_cast<int>((m - lo) / (hi - lo) * bins);
        hist[std::min(bins - 1, std::max(0, idx))]++;
    }
    std::printf("sampling distribution of the mean (n = %zu, %d samples):\n",
                n, reps);
    int peak = *std::max_element(hist.begin(), hist.end());
    for (int bitIdx = 0; bitIdx < bins; ++bitIdx) {
        double center = lo + (bitIdx + 0.5) * (hi - lo) / bins;
        int bar = hist[bitIdx] * 50 / peak;
        std::printf("  %7.1f mW |%-50.*s| %d\n", center, bar,
                    "##################################################",
                    hist[bitIdx]);
    }

    std::printf("\n99%% CI coverage over %d repetitions: %.2f%% "
                "(nominal 99%%)\n",
                reps, 100.0 * covered99 / reps);
    std::printf("mean 99%% CI half-width: %.2f mW (%.2f%% of the mean)\n",
                meanHalfWidth, 100.0 * meanHalfWidth / trueMean);

    // Eq. 8: minimum sample size for 5% / 1% error at 99% / 99.9%.
    stats::SampleStats pilot;
    for (size_t k = 0; k < 200; ++k)
        pilot.add(population[rng.nextBounded(N)]);
    std::printf("\nEq. 8 minimum sample sizes (pilot n = 200):\n");
    for (double conf : {0.99, 0.999}) {
        for (double eps : {0.05, 0.02, 0.01}) {
            std::printf("  confidence %.1f%%, error %.0f%%: n >= %llu\n",
                        conf * 100, eps * 100,
                        (unsigned long long)pilot.minimumSampleSize(conf,
                                                                    eps));
        }
    }
    std::printf("\npaper claim: <5%% error at 99%% confidence needs ~30 "
                "snapshots for typical power populations.\n");
    return 0;
}
