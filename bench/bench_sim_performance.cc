/**
 * @file
 * Table III (paper Section V-B): simulation-performance evaluation on
 * the two-way BOOM-like core — target cycles, reservoir record counts,
 * and fast-simulation time with and without snapshot sampling, for the
 * three case-study workloads. The paper's point: reservoir sampling's
 * record count grows only logarithmically, so the sampling overhead
 * fades for long runs. (Paper runs 0.5-73 B cycles on an FPGA; these
 * runs are scaled down, but the record-count law and the
 * with/without-sampling contrast are cycle-count independent.)
 *
 * A second section contrasts the fast simulator's four backends (the
 * full interpreted reference sweep, activity-driven change propagation,
 * the compiled backend that lowers the design to specialized C++, and
 * the compiled-parallel backend that adds chunk-granular activity
 * gating over a worker pool) on the same workloads: node evaluations per cycle, activity factor
 * and wall-clock speedup. The backends are observationally equivalent
 * (tests/test_differential.cc), so the only difference is the rate.
 * JIT compilation happens at harness construction, outside the timed
 * region — the records measure steady-state simulation rate.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench_common.h"
#include "rtl/opt.h"
#include "sim/vcd.h"
#include "stats/sampling.h"
#include "trace/stimulus.h"
#include "trace/vcd_reader.h"

using namespace strober;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/**
 * Median-of-3 wall clock. A single timed run on a shared host is noisy
 * enough to swamp the few-percent sampling-overhead contrast, so every
 * timed leg in the sampling and backend sections runs three times; the
 * median is reported together with its relative spread
 * ((max - min) / median) so a trend dashboard can down-weight noisy
 * points instead of chasing phantom regressions.
 */
struct Timed3
{
    double median = 0;
    double spread = 0; //!< (max - min) / median
};

template <typename F>
Timed3
timed3(F &&leg)
{
    double t[3];
    for (double &v : t)
        v = leg();
    std::sort(std::begin(t), std::end(t));
    Timed3 r;
    r.median = t[1];
    r.spread = t[1] > 0 ? (t[2] - t[0]) / t[1] : 0;
    return r;
}

/** One fast-phase run on a bare RtlHarness under one backend. */
struct BackendRun
{
    uint64_t cycles = 0;
    double evalsPerCycle = 0;
    double activity = 0;
    double wallSeconds = 0;
    sim::Backend effective = sim::Backend::InterpretedFull;

    double cyclesPerSec() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(cycles) / wallSeconds
                   : 0;
    }
};

BackendRun
runBackend(const rtl::Design &soc, const workloads::Workload &wl,
           sim::Backend backend)
{
    cores::SocDriver driver(soc, wl.program);
    // Harness construction includes JIT compilation for the compiled
    // backend; the clock starts after it, measuring simulation only.
    core::RtlHarness harness(soc, backend);
    double start = nowSeconds();
    core::runLoop(harness, driver, wl.maxCycles);
    BackendRun r;
    r.wallSeconds = nowSeconds() - start;
    r.cycles = harness.cycles();
    sim::Simulator &s = harness.simulator();
    r.evalsPerCycle = r.cycles ? static_cast<double>(s.nodeEvals()) /
                                     static_cast<double>(r.cycles)
                               : 0;
    r.activity = s.activityFactor();
    r.effective = s.backend();
    return r;
}

void
backendContrast(const rtl::Design &soc, bench::JsonSink &json)
{
    bench::banner(
        "backends: full vs activity vs compiled vs compiled-parallel");
    std::printf("%-12s %-9s %12s %13s %9s %10s %8s\n", "benchmark",
                "backend", "cycles", "evals/cycle", "activity", "wall(s)",
                "speedup");
    workloads::Workload wls[] = {
        workloads::linuxbootLike(24),
        workloads::coremarkLite(40),
        workloads::gccLike(40),
    };
    const sim::Backend backends[] = {sim::Backend::InterpretedFull,
                                     sim::Backend::InterpretedActivity,
                                     sim::Backend::Compiled,
                                     sim::Backend::CompiledParallel};
    for (const workloads::Workload &wl : wls) {
        BackendRun full;
        for (sim::Backend backend : backends) {
            BackendRun r;
            Timed3 t3 = timed3([&] {
                r = runBackend(soc, wl, backend);
                return r.wallSeconds;
            });
            r.wallSeconds = t3.median;
            if (backend == sim::Backend::InterpretedFull)
                full = r;
            double speedup = r.wallSeconds > 0
                                 ? full.wallSeconds / r.wallSeconds
                                 : 0;
            std::printf("%-12s %-9s %12llu %13.1f %8.1f%% %10.3f %7.2fx\n",
                        wl.name.c_str(), sim::backendName(backend),
                        (unsigned long long)r.cycles, r.evalsPerCycle,
                        100.0 * r.activity, r.wallSeconds, speedup);
            json.row(std::string("backend_") + wl.name + "_" +
                     sim::backendName(backend))
                .str("design", "boom2w")
                .str("workload", wl.name)
                .str("backend", sim::backendName(backend))
                .str("effective_backend", sim::backendName(r.effective))
                .num("cycles", static_cast<double>(r.cycles))
                .num("wall_seconds", r.wallSeconds)
                .num("wall_spread", t3.spread)
                .num("cycles_per_sec", r.cyclesPerSec())
                .num("speedup", speedup)
                .num("evals_per_cycle", r.evalsPerCycle)
                .num("activity", r.activity)
                .num("threads",
                     backend == sim::Backend::CompiledParallel
                         ? static_cast<double>(sim::simThreads())
                         : 1.0);
        }
    }
}

/**
 * EvalPlan optimization accounting: how much of each core's netlist
 * the shared plan optimizer removes from the per-cycle hot path, and
 * how much of that the known-bits dataflow pass (rtl/dataflow) adds on
 * top of structural folding/CSE. The contrast rebuilds each plan with
 * the dataflow strengthening disabled, so the "hot_base" →
 * "hot_strengthened" delta is attributable to the facts alone.
 */
void
planStatsContrast(bench::JsonSink &json)
{
    bench::banner("EvalPlan optimization statistics (per design)");
    std::printf("%-8s %8s %8s %8s %8s %8s %8s %8s %8s\n", "design",
                "hot0", "hot", "folded", "cse", "cold", "df_fold",
                "df_mux", "df_alias");
    const struct
    {
        const char *name;
        cores::SocConfig config;
    } socs[] = {
        {"rocket", cores::SocConfig::rocket()},
        {"boom1w", cores::SocConfig::boom1w()},
        {"boom2w", cores::SocConfig::boom2w()},
    };
    for (const auto &s : socs) {
        rtl::Design d = cores::buildSoc(s.config);
        rtl::EvalPlanOptions off;
        off.dataflow = false;
        rtl::EvalPlan base = rtl::buildEvalPlan(d, off);
        rtl::EvalPlan plan = rtl::buildEvalPlan(d);
        const rtl::EvalPlanStats &st = plan.stats;
        std::printf("%-8s %8zu %8zu %8u %8u %8u %8u %8u %8u\n", s.name,
                    base.hotProgram.size(), plan.hotProgram.size(),
                    st.folded, st.aliased, st.cold, st.dfFolded,
                    st.dfMuxPruned, st.dfAliased);
        json.row(std::string("evalplan_") + s.name)
            .str("design", s.name)
            .num("hot_base", static_cast<double>(base.hotProgram.size()))
            .num("hot_strengthened",
                 static_cast<double>(plan.hotProgram.size()))
            .num("folded", st.folded)
            .num("cse_aliased", st.aliased)
            .num("dead_cone_cold", st.cold)
            .num("const_slots", st.constSlots)
            .num("df_folded", st.dfFolded)
            .num("df_mux_pruned", st.dfMuxPruned)
            .num("df_aliased", st.dfAliased);
    }
}

/**
 * Trace-interchange ingest rates (src/trace): dump each workload's
 * fast-phase run as a ports-only VCD, then measure (a) the raw parser
 * streaming rate over the file and (b) the end-to-end simulation rate
 * when the same harness is driven from the trace instead of the
 * instruction-level generator. The gap between (b) and the generated
 * run is the stimulus-delivery overhead a `--stimulus` user pays.
 */
void
traceIngestContrast(const rtl::Design &soc, bench::JsonSink &json)
{
    bench::banner("trace interchange: VCD ingest vs generated stimulus");
    std::printf("%-12s %9s %10s %12s %14s %14s\n", "benchmark", "MiB",
                "parse(s)", "parse MiB/s", "gen cyc/s", "trace cyc/s");
    workloads::Workload wls[] = {
        workloads::linuxbootLike(24),
        workloads::coremarkLite(40),
    };
    for (const workloads::Workload &wl : wls) {
        std::string path = "BENCH_trace_" + wl.name + ".vcd";
        {
            std::ofstream out(path, std::ios::binary);
            core::RtlHarness harness(soc);
            sim::VcdWriter::Options vopts;
            vopts.portsOnly = true;
            sim::VcdWriter vcd(out, harness.simulator(), vopts);
            cores::SocDriver driver(soc, wl.program);
            while (!driver.done() && harness.cycles() < wl.maxCycles) {
                driver.drive(harness);
                vcd.sample();
                harness.clock();
            }
        }
        double mib = 0;
        {
            std::ifstream in(path, std::ios::binary | std::ios::ate);
            mib = static_cast<double>(in.tellg()) / (1024.0 * 1024.0);
        }

        // (a) Raw streaming-parser rate, no simulation attached.
        double parseStart = nowSeconds();
        uint64_t parsedSteps = 0;
        {
            std::ifstream in(path, std::ios::binary);
            util::Result<trace::VcdHeader> hdr = trace::parseVcdHeader(in);
            if (!hdr.isOk())
                fatal("trace parse failed: %s",
                           hdr.status().toString().c_str());
            trace::VcdCursor cur(in, hdr.value());
            for (;;) {
                util::Result<bool> r = cur.advance();
                if (!r.isOk())
                    fatal("trace walk failed: %s",
                               r.status().toString().c_str());
                if (!r.value())
                    break;
            }
            parsedSteps = cur.stepsDelivered();
        }
        double parseSec = nowSeconds() - parseStart;

        // (b) Generated vs trace-driven fast-phase rate on a bare
        // harness (default backend, no sampling — stimulus rate only).
        cores::SocDriver genDriver(soc, wl.program);
        core::RtlHarness genHarness(soc);
        double genStart = nowSeconds();
        core::runLoop(genHarness, genDriver, wl.maxCycles);
        double genSec = nowSeconds() - genStart;

        util::Result<std::unique_ptr<trace::TraceDriver>> trc =
            trace::TraceDriver::open(path, soc);
        if (!trc.isOk())
            fatal("trace bind failed: %s",
                       trc.status().toString().c_str());
        core::RtlHarness trcHarness(soc);
        double trcStart = nowSeconds();
        core::runLoop(trcHarness, *trc.value(), UINT64_MAX);
        double trcSec = nowSeconds() - trcStart;
        if (!trc.value()->status().isOk())
            fatal("trace stream failed: %s",
                       trc.value()->status().toString().c_str());

        double genRate =
            genSec > 0 ? static_cast<double>(genHarness.cycles()) / genSec
                       : 0;
        double trcRate =
            trcSec > 0 ? static_cast<double>(trcHarness.cycles()) / trcSec
                       : 0;
        std::printf("%-12s %9.1f %10.3f %12.1f %14.0f %14.0f\n",
                    wl.name.c_str(), mib, parseSec,
                    parseSec > 0 ? mib / parseSec : 0, genRate, trcRate);
        json.row("trace_ingest_" + wl.name)
            .str("design", "boom2w")
            .str("workload", wl.name)
            .num("cycles", static_cast<double>(trcHarness.cycles()))
            .num("timesteps", static_cast<double>(parsedSteps))
            .num("file_mib", mib)
            .num("parse_seconds", parseSec)
            .num("parse_mib_per_sec", parseSec > 0 ? mib / parseSec : 0)
            .num("gen_wall_seconds", genSec)
            .num("gen_cycles_per_sec", genRate)
            .num("trace_wall_seconds", trcSec)
            .num("trace_cycles_per_sec", trcRate)
            .num("trace_vs_gen", genRate > 0 ? trcRate / genRate : 0);
        std::remove(path.c_str());
    }
}

/**
 * Streaming pipeline (src/core/streaming.h): the phased run() +
 * estimate() flow against estimateStreaming() on a replay-bound
 * workload (fast sim and replay walls roughly balanced, so overlap has
 * something to hide), plus an adaptive --ci-bound run. The streamed
 * end-to-end span should land well under the phased fast+replay sum,
 * and the ci-bound run should terminate with measurably fewer replays
 * than the configured reservoir.
 *
 * The overlap win is physical parallelism: replay workers need spare
 * cores to hide behind the fast sim. On a single-core host the
 * streamed span degenerates to the total CPU work (and exceeds the
 * phased sum by the replays that reservoir eviction later supersedes),
 * so every row records host_cores and trend consumers must condition
 * the vs_phased ratio on it.
 */
void
pipelineContrast(const rtl::Design &soc, bench::JsonSink &json)
{
    bench::banner("streaming pipeline: phased vs streamed vs ci-bound");
    workloads::Workload wl = workloads::vvadd();
    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 30;
    cfg.replayLength = 128;
    cfg.parallelReplays = 4;

    // Phased: fast sim, then replay (same worker count — the contrast
    // isolates overlap, not parallelism).
    core::EnergySimulator ph(soc, cfg);
    bench::runFastPhase(ph, soc, wl);
    core::EnergyReport phRep = ph.estimate();
    double phasedSum = phRep.fastSimWallSeconds + phRep.replayWallSeconds;

    // Streamed: identical config; replay overlaps the fast sim. The
    // end-to-end span comes from the report's own phase clocks
    // (fast + replay - overlap), which excludes the one-time ASIC-flow
    // build both paths share.
    core::EnergySimulator st(soc, cfg);
    cores::SocDriver stDriver(soc, wl.program);
    core::EnergyReport stRep = st.estimateStreaming(stDriver, wl.maxCycles);
    double stSpan = stRep.fastSimWallSeconds + stRep.replayWallSeconds -
                    stRep.overlapWallSeconds;
    double minPhase =
        std::min(stRep.fastSimWallSeconds, stRep.replayWallSeconds);
    double overlapEff =
        minPhase > 0 ? stRep.overlapWallSeconds / minPhase : 0;
    double vsPhased = phasedSum > 0 ? stSpan / phasedSum : 0;

    // Adaptive termination: a reservoir larger than the Eq. 8 floor and
    // a 5% bound; the run should stop with a fraction of the reservoir
    // replayed.
    core::EnergySimulator::Config ci = cfg;
    ci.sampleSize = 60;
    ci.ciBound = 0.05;
    core::EnergySimulator cs(soc, ci);
    cores::SocDriver ciDriver(soc, wl.program);
    core::EnergyReport ciRep = cs.estimateStreaming(ciDriver, wl.maxCycles);

    std::printf("%-22s %10s %10s %10s %10s %9s\n", "mode", "fast(s)",
                "replay(s)", "overlap(s)", "total(s)", "snapshots");
    std::printf("%-22s %10.3f %10.3f %10.3f %10.3f %9zu\n", "phased",
                phRep.fastSimWallSeconds, phRep.replayWallSeconds, 0.0,
                phasedSum, phRep.snapshots);
    std::printf("%-22s %10.3f %10.3f %10.3f %10.3f %9zu  (%.2fx phased, "
                "overlap eff %.0f%%)\n",
                "streamed", stRep.fastSimWallSeconds,
                stRep.replayWallSeconds, stRep.overlapWallSeconds, stSpan,
                stRep.snapshots, vsPhased, 100.0 * overlapEff);
    std::printf("%-22s %10.3f %10.3f %10.3f %10s %9zu  (reservoir %zu, "
                "early-stopped %d)\n",
                "streamed --ci-bound", ciRep.fastSimWallSeconds,
                ciRep.replayWallSeconds, ciRep.overlapWallSeconds, "-",
                ciRep.snapshots, ci.sampleSize, ciRep.earlyStopped ? 1 : 0);

    double cores =
        static_cast<double>(std::thread::hardware_concurrency());
    json.row("pipeline_boom2w_phased")
        .str("design", "boom2w")
        .str("workload", wl.name)
        .num("fast_sim_seconds", phRep.fastSimWallSeconds)
        .num("replay_seconds", phRep.replayWallSeconds)
        .num("total_seconds", phasedSum)
        .num("snapshots", static_cast<double>(phRep.snapshots))
        .num("workers", cfg.parallelReplays)
        .num("host_cores", cores);
    json.row("pipeline_boom2w_streamed")
        .str("design", "boom2w")
        .str("workload", wl.name)
        .num("fast_sim_seconds", stRep.fastSimWallSeconds)
        .num("replay_seconds", stRep.replayWallSeconds)
        .num("overlap_seconds", stRep.overlapWallSeconds)
        .num("total_seconds", stSpan)
        .num("vs_phased", vsPhased)
        .num("overlap_efficiency", overlapEff)
        .num("superseded_replays",
             static_cast<double>(stRep.supersededReplays))
        .num("snapshots", static_cast<double>(stRep.snapshots))
        .num("early_stopped", stRep.earlyStopped ? 1 : 0)
        .num("workers", cfg.parallelReplays)
        .num("host_cores", cores);
    json.row("pipeline_boom2w_cibound")
        .str("design", "boom2w")
        .str("workload", wl.name)
        .num("ci_bound", ci.ciBound)
        .num("reservoir", static_cast<double>(ci.sampleSize))
        .num("snapshots", static_cast<double>(ciRep.snapshots))
        .num("replays_saved",
             static_cast<double>(ci.sampleSize > ciRep.snapshots
                                     ? ci.sampleSize - ciRep.snapshots
                                     : 0))
        .num("early_stopped", ciRep.earlyStopped ? 1 : 0)
        .num("relative_error", ciRep.averagePower.relativeError())
        .num("workers", ci.parallelReplays)
        .num("host_cores", cores);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonSink json = bench::JsonSink::fromArgs(
        &argc, argv, "BENCH_sim_performance.json");
    bench::banner("Table III: simulation performance (BOOM-2w)");
    rtl::Design soc = cores::buildSoc(cores::SocConfig::boom2w());

    workloads::Workload wls[] = {
        workloads::linuxbootLike(24),
        workloads::coremarkLite(40),
        workloads::gccLike(40),
    };

    std::printf("%-12s %14s %9s %9s %12s %13s %10s %8s\n", "benchmark",
                "cycles", "records", "expected", "t_sample(s)",
                "t_nosample(s)", "overhead", "spread");

    for (const workloads::Workload &wl : wls) {
        core::EnergySimulator::Config cfg;
        cfg.sampleSize = 30;
        cfg.replayLength = 128;

        // With sampling (median-of-3; cycle/record counts are
        // deterministic across repeats, only the wall clock moves).
        bench::StroberRun a;
        Timed3 ts = timed3([&] {
            core::EnergySimulator withS(soc, cfg);
            a = bench::runFastPhase(withS, soc, wl);
            return a.run.wallSeconds;
        });

        // Without sampling.
        cfg.samplingEnabled = false;
        Timed3 tn = timed3([&] {
            core::EnergySimulator withoutS(soc, cfg);
            return bench::runFastPhase(withoutS, soc, wl).run.wallSeconds;
        });

        double expected = stats::ReservoirSampler<int>::expectedRecords(
            30, a.run.targetCycles / 128);
        std::printf("%-12s %14llu %9llu %9.0f %12.2f %13.2f %9.1f%% %7.1f%%\n",
                    wl.name.c_str(),
                    (unsigned long long)a.run.targetCycles,
                    (unsigned long long)a.run.recordCount, expected,
                    ts.median, tn.median,
                    100.0 * (ts.median - tn.median) / tn.median,
                    100.0 * std::max(ts.spread, tn.spread));
        json.row("sampling_" + wl.name)
            .str("design", "boom2w")
            .num("cycles", static_cast<double>(a.run.targetCycles))
            .num("wall_seconds", ts.median)
            .num("wall_spread", ts.spread)
            .num("nosampling_wall_seconds", tn.median)
            .num("nosampling_wall_spread", tn.spread)
            .num("records", static_cast<double>(a.run.recordCount));
    }

    std::printf("\nhost-cycle accounting with sampling (scan read-out + "
                "I/O service stalls):\n");
    {
        workloads::Workload wl = workloads::linuxbootLike(24);
        core::EnergySimulator::Config cfg;
        core::EnergySimulator es(soc, cfg);
        bench::StroberRun r = bench::runFastPhase(es, soc, wl);
        std::printf("  linuxboot: %llu target cycles -> %llu host cycles "
                    "(%.2fx)\n",
                    (unsigned long long)r.run.targetCycles,
                    (unsigned long long)r.run.hostCycles,
                    static_cast<double>(r.run.hostCycles) /
                        static_cast<double>(r.run.targetCycles));
    }
    std::printf("\npaper Table III (for reference): 0.5-73 B cycles, "
                "980-1497 records, sampling overhead shrinking with run "
                "length (gcc: 344 vs 312 min).\n\n");

    planStatsContrast(json);
    backendContrast(soc, json);
    traceIngestContrast(soc, json);
    pipelineContrast(soc, json);
    json.write();
    return 0;
}
