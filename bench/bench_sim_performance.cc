/**
 * @file
 * Table III (paper Section V-B): simulation-performance evaluation on
 * the two-way BOOM-like core — target cycles, reservoir record counts,
 * and fast-simulation time with and without snapshot sampling, for the
 * three case-study workloads. The paper's point: reservoir sampling's
 * record count grows only logarithmically, so the sampling overhead
 * fades for long runs. (Paper runs 0.5-73 B cycles on an FPGA; these
 * runs are scaled down, but the record-count law and the
 * with/without-sampling contrast are cycle-count independent.)
 *
 * A second section contrasts the fast simulator's two evaluation modes
 * (Full reference sweep vs ActivityDriven change propagation) on the
 * same workloads: node evaluations per cycle, activity factor and
 * wall-clock speedup. The modes are observationally equivalent
 * (tests/test_differential.cc), so the only difference is the rate.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "stats/sampling.h"

using namespace strober;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/** One fast-phase run on a bare RtlHarness in @p mode. */
struct ModeRun
{
    uint64_t cycles = 0;
    double evalsPerCycle = 0;
    double activity = 0;
    double wallSeconds = 0;
};

ModeRun
runMode(const rtl::Design &soc, const workloads::Workload &wl,
        sim::SimulatorMode mode)
{
    cores::SocDriver driver(soc, wl.program);
    core::RtlHarness harness(soc, mode);
    double start = nowSeconds();
    core::runLoop(harness, driver, wl.maxCycles);
    ModeRun r;
    r.wallSeconds = nowSeconds() - start;
    r.cycles = harness.cycles();
    sim::Simulator &s = harness.simulator();
    r.evalsPerCycle = r.cycles ? static_cast<double>(s.nodeEvals()) /
                                     static_cast<double>(r.cycles)
                               : 0;
    r.activity = s.activityFactor();
    return r;
}

void
modeContrast(const rtl::Design &soc, bench::JsonSink &json)
{
    bench::banner("evaluation modes: full sweep vs activity-driven");
    std::printf("%-12s %-9s %12s %13s %9s %10s %8s\n", "benchmark",
                "mode", "cycles", "evals/cycle", "activity", "wall(s)",
                "speedup");
    workloads::Workload wls[] = {
        workloads::linuxbootLike(24),
        workloads::coremarkLite(40),
        workloads::gccLike(40),
    };
    for (const workloads::Workload &wl : wls) {
        ModeRun full = runMode(soc, wl, sim::SimulatorMode::Full);
        ModeRun act = runMode(soc, wl, sim::SimulatorMode::ActivityDriven);
        std::printf("%-12s %-9s %12llu %13.1f %8.1f%% %10.3f %8s\n",
                    wl.name.c_str(),
                    sim::simulatorModeName(sim::SimulatorMode::Full),
                    (unsigned long long)full.cycles, full.evalsPerCycle,
                    100.0 * full.activity, full.wallSeconds, "1.0x");
        std::printf("%-12s %-9s %12llu %13.1f %8.1f%% %10.3f %7.2fx\n",
                    wl.name.c_str(),
                    sim::simulatorModeName(sim::SimulatorMode::ActivityDriven),
                    (unsigned long long)act.cycles, act.evalsPerCycle,
                    100.0 * act.activity, act.wallSeconds,
                    act.wallSeconds > 0 ? full.wallSeconds / act.wallSeconds
                                        : 0.0);
        json.row("mode_contrast_" + wl.name)
            .str("design", "boom2w")
            .num("cycles", static_cast<double>(act.cycles))
            .num("wall_seconds", act.wallSeconds)
            .num("speedup", act.wallSeconds > 0
                                ? full.wallSeconds / act.wallSeconds
                                : 0)
            .num("full_wall_seconds", full.wallSeconds)
            .num("activity", act.activity);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonSink json = bench::JsonSink::fromArgs(&argc, argv);
    bench::banner("Table III: simulation performance (BOOM-2w)");
    rtl::Design soc = cores::buildSoc(cores::SocConfig::boom2w());

    workloads::Workload wls[] = {
        workloads::linuxbootLike(24),
        workloads::coremarkLite(40),
        workloads::gccLike(40),
    };

    std::printf("%-12s %14s %9s %9s %12s %12s %10s\n", "benchmark",
                "cycles", "records", "expected", "t_sample(s)",
                "t_nosample(s)", "overhead");

    for (const workloads::Workload &wl : wls) {
        core::EnergySimulator::Config cfg;
        cfg.sampleSize = 30;
        cfg.replayLength = 128;

        // With sampling.
        core::EnergySimulator withS(soc, cfg);
        bench::StroberRun a = bench::runFastPhase(withS, soc, wl);

        // Without sampling.
        cfg.samplingEnabled = false;
        core::EnergySimulator withoutS(soc, cfg);
        bench::StroberRun b = bench::runFastPhase(withoutS, soc, wl);

        double expected = stats::ReservoirSampler<int>::expectedRecords(
            30, a.run.targetCycles / 128);
        std::printf("%-12s %14llu %9llu %9.0f %12.2f %12.2f %9.1f%%\n",
                    wl.name.c_str(),
                    (unsigned long long)a.run.targetCycles,
                    (unsigned long long)a.run.recordCount, expected,
                    a.run.wallSeconds, b.run.wallSeconds,
                    100.0 * (a.run.wallSeconds - b.run.wallSeconds) /
                        b.run.wallSeconds);
        json.row("sampling_" + wl.name)
            .str("design", "boom2w")
            .num("cycles", static_cast<double>(a.run.targetCycles))
            .num("wall_seconds", a.run.wallSeconds)
            .num("nosampling_wall_seconds", b.run.wallSeconds)
            .num("records", static_cast<double>(a.run.recordCount));
    }

    std::printf("\nhost-cycle accounting with sampling (scan read-out + "
                "I/O service stalls):\n");
    {
        workloads::Workload wl = workloads::linuxbootLike(24);
        core::EnergySimulator::Config cfg;
        core::EnergySimulator es(soc, cfg);
        bench::StroberRun r = bench::runFastPhase(es, soc, wl);
        std::printf("  linuxboot: %llu target cycles -> %llu host cycles "
                    "(%.2fx)\n",
                    (unsigned long long)r.run.targetCycles,
                    (unsigned long long)r.run.hostCycles,
                    static_cast<double>(r.run.hostCycles) /
                        static_cast<double>(r.run.targetCycles));
    }
    std::printf("\npaper Table III (for reference): 0.5-73 B cycles, "
                "980-1497 records, sampling overhead shrinking with run "
                "length (gcc: 344 vs 312 min).\n\n");

    modeContrast(soc, json);
    json.write();
    return 0;
}
