/**
 * @file
 * Table III (paper Section V-B): simulation-performance evaluation on
 * the two-way BOOM-like core — target cycles, reservoir record counts,
 * and fast-simulation time with and without snapshot sampling, for the
 * three case-study workloads. The paper's point: reservoir sampling's
 * record count grows only logarithmically, so the sampling overhead
 * fades for long runs. (Paper runs 0.5-73 B cycles on an FPGA; these
 * runs are scaled down, but the record-count law and the
 * with/without-sampling contrast are cycle-count independent.)
 */

#include <cstdio>

#include "bench_common.h"
#include "stats/sampling.h"

using namespace strober;

int
main()
{
    bench::banner("Table III: simulation performance (BOOM-2w)");
    rtl::Design soc = cores::buildSoc(cores::SocConfig::boom2w());

    workloads::Workload wls[] = {
        workloads::linuxbootLike(24),
        workloads::coremarkLite(40),
        workloads::gccLike(40),
    };

    std::printf("%-12s %14s %9s %9s %12s %12s %10s\n", "benchmark",
                "cycles", "records", "expected", "t_sample(s)",
                "t_nosample(s)", "overhead");

    for (const workloads::Workload &wl : wls) {
        core::EnergySimulator::Config cfg;
        cfg.sampleSize = 30;
        cfg.replayLength = 128;

        // With sampling.
        core::EnergySimulator withS(soc, cfg);
        bench::StroberRun a = bench::runFastPhase(withS, soc, wl);

        // Without sampling.
        cfg.samplingEnabled = false;
        core::EnergySimulator withoutS(soc, cfg);
        bench::StroberRun b = bench::runFastPhase(withoutS, soc, wl);

        double expected = stats::ReservoirSampler<int>::expectedRecords(
            30, a.run.targetCycles / 128);
        std::printf("%-12s %14llu %9llu %9.0f %12.2f %12.2f %9.1f%%\n",
                    wl.name.c_str(),
                    (unsigned long long)a.run.targetCycles,
                    (unsigned long long)a.run.recordCount, expected,
                    a.run.wallSeconds, b.run.wallSeconds,
                    100.0 * (a.run.wallSeconds - b.run.wallSeconds) /
                        b.run.wallSeconds);
    }

    std::printf("\nhost-cycle accounting with sampling (scan read-out + "
                "I/O service stalls):\n");
    {
        workloads::Workload wl = workloads::linuxbootLike(24);
        core::EnergySimulator::Config cfg;
        core::EnergySimulator es(soc, cfg);
        bench::StroberRun r = bench::runFastPhase(es, soc, wl);
        std::printf("  linuxboot: %llu target cycles -> %llu host cycles "
                    "(%.2fx)\n",
                    (unsigned long long)r.run.targetCycles,
                    (unsigned long long)r.run.hostCycles,
                    static_cast<double>(r.run.hostCycles) /
                        static_cast<double>(r.run.targetCycles));
    }
    std::printf("\npaper Table III (for reference): 0.5-73 B cycles, "
                "980-1497 records, sampling overhead shrinking with run "
                "length (gcc: 344 vs 312 min).\n");
    return 0;
}
