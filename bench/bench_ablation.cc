/**
 * @file
 * Ablations of the methodology's design parameters (DESIGN.md design
 * choices; the paper fixes n=30, L=128 for validation and n=100, L=1000
 * for the case study):
 *
 *  - sample size n: CI half-width should shrink ~1/sqrt(n) while replay
 *    cost grows linearly;
 *  - replay length L: longer snapshots average over more cycles (lower
 *    per-element variance) but cost more gate-level time and make the
 *    population coarser;
 *  - scan daisy width: read-out cost of one snapshot (Section IV-B2).
 */

#include <cstdio>

#include "bench_common.h"
#include "fame/scan_chain.h"

using namespace strober;

int
main()
{
    bench::banner("Ablation: sample size n and replay length L "
                  "(towers on rocket, 99% confidence)");
    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::towers();

    std::printf("%6s %6s %10s %12s %12s %14s\n", "n", "L", "bound(%)",
                "replay(cyc)", "records", "load(model s)");
    for (unsigned n : {10u, 30u, 60u}) {
        for (unsigned L : {32u, 128u, 512u}) {
            core::EnergySimulator::Config cfg;
            cfg.sampleSize = n;
            cfg.replayLength = L;
            cfg.seed = 42;
            core::EnergySimulator es(soc, cfg);
            bench::StroberRun r = bench::runFastPhase(es, soc, wl);
            core::EnergyReport rep = es.estimate();
            if (rep.replayMismatches)
                fatal("replay mismatch at n=%u L=%u", n, L);
            std::printf("%6u %6u %10.2f %12llu %12llu %14.1f\n", n, L,
                        rep.averagePower.relativeError() * 100,
                        (unsigned long long)(static_cast<uint64_t>(n) * L),
                        (unsigned long long)r.run.recordCount,
                        rep.modeledLoadSeconds);
        }
    }
    std::printf("\nexpected: bound ~1/sqrt(n); larger L also tightens "
                "the bound (per-interval variance falls) at linearly "
                "more gate-level cycles.\n");

    bench::banner("Ablation: scan daisy width vs capture cost");
    fame::Fame1Design fd = fame::fame1Transform(soc);
    fame::ScanChains chains(fd.design);
    std::printf("%12s %16s\n", "daisy width", "capture cycles");
    for (unsigned width : {1u, 8u, 32u, 64u}) {
        std::printf("%12u %16llu\n", width,
                    (unsigned long long)chains.captureHostCycles(width));
    }
    std::printf("\n(total state: %llu chain bits; the paper reads "
                "chains out through the host interface, so wider daisy "
                "chains trade FPGA routing for read-out time)\n",
                (unsigned long long)chains.totalBits());
    return 0;
}
